// Vendored code is not held to the workspace lint bar.
#![allow(clippy::all)]
//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API this workspace's benches use
//! — `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId::from_parameter` — over a simple
//! wall-clock measurement loop. No statistical analysis, plots, or
//! saved baselines: each benchmark reports mean / min / max time per
//! iteration. Command-line behaviour follows cargo's conventions:
//! positional args filter benchmarks by substring, `--test` runs each
//! routine once for smoke-testing.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (measurement hint only here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one batch per sample.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named by a function + parameter pair.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark named by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Total measured time across recorded iterations.
    elapsed: Duration,
    /// Recorded iteration count.
    iterations: u64,
    /// Fastest / slowest single iteration.
    min: Duration,
    max: Duration,
    /// Iterations to record (0 = smoke mode: run once, don't record).
    target_iterations: u64,
}

impl Bencher {
    fn new(target_iterations: u64) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
            min: Duration::MAX,
            max: Duration::ZERO,
            target_iterations,
        }
    }

    fn record(&mut self, d: Duration) {
        self.elapsed += d;
        self.iterations += 1;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let runs = self.target_iterations.max(1);
        for _ in 0..runs {
            let start = Instant::now();
            let out = routine();
            let d = start.elapsed();
            drop(out);
            self.record(d);
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let runs = self.target_iterations.max(1);
        for _ in 0..runs {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let d = start.elapsed();
            drop(out);
            self.record(d);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    smoke_test: bool,
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            smoke_test: false,
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration: positional args filter by
    /// substring; `--test` switches to run-once smoke mode (used by
    /// `cargo test --benches`).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.smoke_test = true,
                "--bench" => {}
                // Flags with a value we accept-and-ignore.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.run(name, f);
        group.finish();
        self
    }

    fn should_run(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of recorded iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let full_name = if id == self.name {
            id.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.should_run(&full_name) {
            return;
        }
        let samples = if self.criterion.smoke_test {
            1
        } else {
            self.sample_size
                .unwrap_or(self.criterion.default_sample_size)
        };
        let mut b = Bencher::new(samples);
        f(&mut b);
        if b.iterations == 0 {
            println!("{full_name:<40} (no iterations recorded)");
            return;
        }
        let mean = b.elapsed / u32::try_from(b.iterations).unwrap_or(u32::MAX).max(1);
        println!(
            "{full_name:<40} time: [{} {} {}]  ({} iterations)",
            format_duration(b.min),
            format_duration(mean),
            format_duration(b.max),
            b.iterations,
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.id.clone(), |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target composed of `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("trivial");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| std::hint::black_box(1u64 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter("x10"), &10u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion {
            smoke_test: true,
            ..Criterion::default()
        };
        trivial(&mut c);
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }
}