// Vendored code is not held to the workspace lint bar.
#![allow(clippy::all)]
//! Offline stand-in for the `bytes` crate.
//!
//! The serving layer only needs a cheaply clonable, immutable byte
//! container with `From<String>` / `From<Vec<u8>>` / `from_static` and
//! slice deref. An `Arc<[u8]>` (with a borrowed variant for statics)
//! covers that without the real crate's vtable machinery.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable slice of memory.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Creates `Bytes` from a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// The number of bytes contained.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(v.into()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let b = Bytes::from(String::from("hello"));
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.len(), 5);
        let s = Bytes::from_static(b"static");
        assert_eq!(s.clone(), s);
        assert!(Bytes::new().is_empty());
    }
}