// Vendored code is not held to the workspace lint bar.
#![allow(clippy::all)]
//! Offline stand-in for `crossbeam`.
//!
//! The collector only uses `crossbeam::thread::scope` for scoped fan-out.
//! Since Rust 1.63 the standard library provides `std::thread::scope`,
//! so this shim adapts crossbeam's API (closure receives `&Scope`,
//! `scope()` returns a `Result` capturing panics) onto std.

#![forbid(unsafe_code)]

/// Scoped thread utilities mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result type from [`scope`]: `Err` carries a child panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope for spawning threads that may borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so that
        /// nested spawns are possible, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which threads borrowing the environment can be
    /// spawned. Returns `Err` if any unjoined child (or the closure
    /// itself) panicked, mirroring crossbeam's contract closely enough
    /// for this workspace: std's scope re-raises child panics at scope
    /// exit, which `catch_unwind` converts back into an `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| s.spawn(move |_| x * 2))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 12);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}