// Vendored code is not held to the workspace lint bar.
#![allow(clippy::all)]
//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The workspace
//! never calls serde's data model (it has its own binary archive codec),
//! so empty traits are sufficient. Replace with upstream serde if real
//! serialization is ever wired up.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}