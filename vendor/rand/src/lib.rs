// Vendored code is not held to the workspace lint bar.
#![allow(clippy::all)]
//! Offline stand-in for `rand` 0.8.
//!
//! The build container has no access to crates.io, so this crate
//! reimplements the (small) slice of the `rand` 0.8 API the workspace
//! uses, with the same algorithms as upstream so that seeded streams
//! match the real crate bit for bit:
//!
//! * `StdRng` is ChaCha12 (djb variant: 64-bit block counter in words
//!   12–13), buffered four blocks at a time exactly like `rand_chacha`'s
//!   software backend, with `rand_core`'s `BlockRng` word-pairing rules
//!   for `next_u64`.
//! * `SeedableRng::seed_from_u64` expands the seed through the same PCG32
//!   stepping as `rand_core` 0.6.
//! * `Standard` floats use the 53-bit multiply method; `gen_range` uses
//!   the widening-multiply rejection method for integers and the
//!   `[1, 2)` mantissa trick for floats.
//! * `SliceRandom::{shuffle, choose}` sample indices through `u32` for
//!   bounds that fit, as upstream's `gen_index` does.
//!
//! Only the API surface used by this workspace is provided.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Seed type, typically `[u8; N]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with the same PCG32
    /// stepping as `rand_core` 0.6 so streams match the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside range [0.0, 1.0]");
        // Scaled-integer comparison, as upstream's Bernoulli distribution.
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (1u128 << 64) as f64) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random distributions.
pub mod distributions {
    use super::RngCore;

    /// Types that can produce values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: full-range ints, `[0, 1)` floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // Sign test on the most significant bit, as upstream.
            (rng.next_u32() as i32) < 0
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // Multiply-based method: 53 random mantissa bits.
            let value = rng.next_u64() >> (64 - 53);
            value as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            let value = rng.next_u32() >> (32 - 24);
            value as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Uniform range sampling.
    pub mod uniform {
        use super::super::{Range, RangeInclusive, RngCore};

        /// Types samplable by `Rng::gen_range`.
        pub trait SampleUniform: Sized + PartialOrd {
            /// Uniform sample from `[low, high)`.
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
            /// Uniform sample from `[low, high]`.
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self;
        }

        /// Range types usable with `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Samples from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
            /// Whether the range contains no values.
            fn is_empty(&self) -> bool;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_single(self.start, self.end, rng)
            }
            fn is_empty(&self) -> bool {
                !(self.start < self.end)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                T::sample_single_inclusive(low, high, rng)
            }
            fn is_empty(&self) -> bool {
                RangeInclusive::is_empty(self)
            }
        }

        macro_rules! uniform_int_impl {
            ($ty:ty, $large:ty, $wide:ty, $large_bits:expr, $sample:ident) => {
                impl SampleUniform for $ty {
                    fn sample_single<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        let range = high.wrapping_sub(low) as $large;
                        // Widening-multiply rejection, as upstream
                        // UniformInt::sample_single.
                        let zone = (range << range.leading_zeros()).wrapping_sub(1);
                        loop {
                            let v: $large = rng.$sample() as $large;
                            let m = (v as $wide).wrapping_mul(range as $wide);
                            let hi = (m >> $large_bits) as $large;
                            let lo = m as $large;
                            if lo <= zone {
                                return low.wrapping_add(hi as $ty);
                            }
                        }
                    }

                    fn sample_single_inclusive<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        let range = (high.wrapping_sub(low) as $large).wrapping_add(1);
                        if range == 0 {
                            // The full integer span: every value is valid.
                            return rng.$sample() as $ty;
                        }
                        let zone = (range << range.leading_zeros()).wrapping_sub(1);
                        loop {
                            let v: $large = rng.$sample() as $large;
                            let m = (v as $wide).wrapping_mul(range as $wide);
                            let hi = (m >> $large_bits) as $large;
                            let lo = m as $large;
                            if lo <= zone {
                                return low.wrapping_add(hi as $ty);
                            }
                        }
                    }
                }
            };
        }

        uniform_int_impl!(u32, u32, u64, 32, next_u32);
        uniform_int_impl!(u64, u64, u128, 64, next_u64);
        uniform_int_impl!(usize, u64, u128, 64, next_u64);
        uniform_int_impl!(i64, u64, u128, 64, next_u64);

        macro_rules! uniform_float_impl {
            ($ty:ty, $uty:ty, $bits_to_discard:expr, $exp_bias:expr, $frac_bits:expr, $sample:ident) => {
                impl SampleUniform for $ty {
                    fn sample_single<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        // Generate a value in [1, 2), then scale/offset —
                        // upstream UniformFloat::sample_single.
                        let frac = rng.$sample() >> $bits_to_discard;
                        let value1_2 =
                            <$ty>::from_bits(frac | (($exp_bias as $uty) << $frac_bits));
                        let scale = high - low;
                        let offset = low - scale;
                        value1_2 * scale + offset
                    }

                    fn sample_single_inclusive<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        rng: &mut R,
                    ) -> Self {
                        // Matches upstream: the inclusive float sampler
                        // uses the same scale method.
                        let frac = rng.$sample() >> $bits_to_discard;
                        let value1_2 =
                            <$ty>::from_bits(frac | (($exp_bias as $uty) << $frac_bits));
                        let scale = high - low;
                        let offset = low - scale;
                        value1_2 * scale + offset
                    }
                }
            };
        }

        uniform_float_impl!(f64, u64, 12, 1023u64, 52, next_u64);
        uniform_float_impl!(f32, u32, 9, 127u32, 23, next_u32);
    }

    pub use uniform::{SampleRange, SampleUniform};
}

pub use distributions::{Distribution, Standard};

/// Random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_BLOCK_WORDS: usize = 16;
    /// `rand_chacha` buffers four ChaCha blocks per refill.
    const BUFFER_WORDS: usize = 4 * CHACHA_BLOCK_WORDS;

    /// The standard RNG: ChaCha with 12 rounds, as `rand` 0.8.
    #[derive(Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        results: [u32; BUFFER_WORDS],
        index: usize,
    }

    impl std::fmt::Debug for StdRng {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "StdRng {{ .. }}")
        }
    }

    #[inline(always)]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    impl StdRng {
        /// Refills the four-block buffer and resets the cursor to `index`.
        fn generate_and_set(&mut self, index: usize) {
            for block in 0..4 {
                let mut state: [u32; 16] = [
                    0x6170_7865,
                    0x3320_646e,
                    0x7962_2d32,
                    0x6b20_6574,
                    self.key[0],
                    self.key[1],
                    self.key[2],
                    self.key[3],
                    self.key[4],
                    self.key[5],
                    self.key[6],
                    self.key[7],
                    self.counter as u32,
                    (self.counter >> 32) as u32,
                    0,
                    0,
                ];
                let initial = state;
                // 12 rounds = 6 double rounds.
                for _ in 0..6 {
                    quarter_round(&mut state, 0, 4, 8, 12);
                    quarter_round(&mut state, 1, 5, 9, 13);
                    quarter_round(&mut state, 2, 6, 10, 14);
                    quarter_round(&mut state, 3, 7, 11, 15);
                    quarter_round(&mut state, 0, 5, 10, 15);
                    quarter_round(&mut state, 1, 6, 11, 12);
                    quarter_round(&mut state, 2, 7, 8, 13);
                    quarter_round(&mut state, 3, 4, 9, 14);
                }
                for (i, out) in state.iter().enumerate() {
                    self.results[block * CHACHA_BLOCK_WORDS + i] =
                        out.wrapping_add(initial[i]);
                }
                self.counter = self.counter.wrapping_add(1);
            }
            self.index = index;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            StdRng {
                key,
                counter: 0,
                results: [0; BUFFER_WORDS],
                index: BUFFER_WORDS, // empty: refill on first use
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUFFER_WORDS {
                self.generate_and_set(0);
            }
            let value = self.results[self.index];
            self.index += 1;
            value
        }

        fn next_u64(&mut self) -> u64 {
            // BlockRng's exact word-pairing rules, including the buffer
            // boundary case.
            let index = self.index;
            if index < BUFFER_WORDS - 1 {
                self.index += 2;
                (u64::from(self.results[index + 1]) << 32) | u64::from(self.results[index])
            } else if index >= BUFFER_WORDS {
                self.generate_and_set(2);
                (u64::from(self.results[1]) << 32) | u64::from(self.results[0])
            } else {
                let x = u64::from(self.results[BUFFER_WORDS - 1]);
                self.generate_and_set(1);
                (u64::from(self.results[0]) << 32) | x
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(4);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u32().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let word = self.next_u32().to_le_bytes();
                rem.copy_from_slice(&word[..rem.len()]);
            }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Uniform index in `[0, ubound)`, sampling through `u32` when the
    /// bound fits — upstream's `gen_index`, which keeps shuffles
    /// bit-compatible with the real crate.
    fn gen_index<R: RngCore>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Slice element type.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(gen_index(rng, self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn different_seeds_give_different_streams() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    /// The u32 and u64 views of the stream interleave through one shared
    /// word buffer: two u32 pulls equal one u64 pull (lo then hi word).
    #[test]
    fn word_pairing_is_consistent() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let lo = a.next_u32() as u64;
        let hi = a.next_u32() as u64;
        assert_eq!(b.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = StdRng::seed_from_u64(20_220_901);
        let mut b = a.clone();
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0u32..=9);
            assert!(b <= 9);
            let c = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&c));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}