// Vendored code is not held to the workspace lint bar.
#![allow(clippy::all)]
//! Offline stand-in for `serde_derive`.
//!
//! This workspace uses serde derives only as metadata on domain types — no
//! code actually serializes through serde (the archive has its own binary
//! codec). The container that builds this repo has no network access to
//! crates.io, so instead of the real 40k-line proc macro we ship no-op
//! derives: `#[derive(Serialize)]` and `#[derive(Deserialize)]` parse and
//! expand to nothing. If real serialization is ever needed, swap this
//! vendor crate for the upstream one; no source changes required.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}