// Vendored code is not held to the workspace lint bar.
#![allow(clippy::all)]
//! Offline stand-in for `proptest`.
//!
//! The build container cannot reach crates.io, so this crate provides a
//! compatible subset of proptest's API: the [`strategy::Strategy`] trait
//! with `prop_map` / `prop_recursive` / `boxed`, range and string-pattern
//! strategies, tuple composition, [`collection::vec`] /
//! [`collection::btree_set`], `any::<T>()`, and the `proptest!` /
//! `prop_assert*!` / `prop_oneof!` macros.
//!
//! Differences from the real crate, deliberate for a hermetic test
//! environment:
//!
//! * **No shrinking.** A failing case reports its case number and
//!   message; since the RNG seed is derived from the test's module path
//!   and name, failures reproduce exactly on re-run.
//! * **String patterns** support the subset of regex syntax used in this
//!   workspace: literal characters, `.`, character classes with ranges
//!   (`[a-z0-9.]`, `[ -~]`), and `{m,n}` / `{n}` repetition.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic test driving: RNG, config, and case errors.

    use std::fmt;

    /// A deterministic RNG for strategy sampling (SplitMix64). This is
    /// intentionally independent of the workspace `rand` stand-in so the
    /// test framework has zero dependencies.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// An RNG seeded from an arbitrary label (e.g. the test name), so
        /// every test gets a distinct but reproducible stream.
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                // Modulo bias is irrelevant at test-sampling quality.
                self.next_u64() % n
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Fair coin.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Configuration accepted by `proptest!`'s `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds a recursive strategy: `self` is the leaf, and `recurse`
        /// wraps the strategy-so-far into branches, applied `depth`
        /// times. (The real crate grows probabilistically against
        /// `desired_size`; bounded nesting is equivalent for our tests.)
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(strat.clone()).boxed();
                strat = OneOf(vec![leaf.clone(), branch]).boxed();
            }
            strat
        }
    }

    /// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives; built by `prop_oneof!`.
    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + rng.below(span as u64) as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128) - (lo as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    if span > u64::MAX as i128 {
                        return rng.next_u64() as $ty;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (self.start as f64, self.end as f64);
                    assert!(lo < hi, "empty range strategy");
                    (lo + rng.unit_f64() * (hi - lo)) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                    assert!(lo <= hi, "empty range strategy");
                    (lo + rng.unit_f64() * (hi - lo)) as $ty
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// String patterns: a `&str` is a strategy producing matching strings.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Produces an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Arbitrary bit patterns: exercises negatives, subnormals,
            // infinities and NaN, like the real crate's full-range f64.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size drawn from
    /// `size` (best-effort when the element domain is small).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of values from `element`, size in `size`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            // Bounded attempts: small element domains may not reach the
            // target size, as with the real crate.
            for _ in 0..(target * 10 + 20) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod string {
    //! Generation from the supported string-pattern subset.

    use crate::test_runner::TestRng;

    /// Parses one character-class body (after `[`, up to `]`), returning
    /// the set of candidate characters and the index past `]`.
    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "invalid range {lo}-{hi} in pattern class");
                for c in lo..=hi {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(chars[i]);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated character class in pattern");
        (set, i + 1)
    }

    /// Parses a `{m,n}` or `{n}` quantifier, returning `(min, max)` and
    /// the index past `}`; `(1, 1)` with unchanged index if absent.
    fn parse_quantifier(chars: &[char], i: usize) -> (usize, usize, usize) {
        if i >= chars.len() || chars[i] != '{' {
            return (1, 1, i);
        }
        let close = chars[i..]
            .iter()
            .position(|&c| c == '}')
            .expect("unterminated quantifier in pattern")
            + i;
        let body: String = chars[i + 1..close].iter().collect();
        let (min, max) = match body.split_once(',') {
            Some((lo, hi)) => (
                lo.parse().expect("bad quantifier lower bound"),
                hi.parse().expect("bad quantifier upper bound"),
            ),
            None => {
                let n = body.parse().expect("bad quantifier count");
                (n, n)
            }
        };
        (min, max, close + 1)
    }

    /// Generates a string matching `pattern` (literals, `.`, classes,
    /// `{m,n}` repetition).
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (set, next) = match chars[i] {
                // `.`: any printable ASCII, like the real crate minus
                // newline.
                '.' => ((' '..='~').collect(), i + 1),
                '[' => parse_class(&chars, i + 1),
                c => (vec![c], i + 1),
            };
            let (min, max, next) = parse_quantifier(&chars, next);
            let n = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..n {
                let idx = rng.below(set.len() as u64) as usize;
                out.push(set[idx]);
            }
            i = next;
        }
        out
    }
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice among alternative strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_matches_shape() {
        let mut rng = crate::test_runner::TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[a-z0-9.]{1,16}", &mut rng);
            assert!((1..=16).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'));
            let t = crate::string::generate_from_pattern("[ -~]{0,80}", &mut rng);
            assert!(t.chars().count() <= 80);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let u = crate::string::generate_from_pattern("ab{2,3}c", &mut rng);
            assert!(u == "abbc" || u == "abbbc", "{u:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_collections(
            v in prop::collection::vec(0u32..10, 1..20),
            s in prop::collection::btree_set(0usize..8, 1..6),
            x in -1.5f64..1.5,
            t in (0u64..100, any::<bool>()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!(!s.is_empty() && s.len() < 6);
            prop_assert!((-1.5..1.5).contains(&x));
            prop_assert!(t.0 < 100);
        }

        #[test]
        fn oneof_and_map(n in prop_oneof![Just(1usize), (10usize..20).prop_map(|v| v * 2)]) {
            prop_assert!(n == 1 || (20..40).contains(&n), "n = {n}");
        }
    }
}