//! GPU hunt: find the most reliable GPU spot pools across regions.
//!
//! ```text
//! cargo run --release --example gpu_hunt
//! ```
//!
//! The paper's motivation cites DeepSpotCloud-style workloads: DNN training
//! on GPU spot instances "located globally". This example uses the SpotLake
//! archive the way such a system would — rank every (GPU type, region) pair
//! by a blend of the archived placement-score history and the advisor's
//! interruption-free score, then print the best launch targets.

use spotlake::{CollectorConfig, SimConfig, SpotLake};
use spotlake_timestream::{Aggregate, Query};
use spotlake_types::{Catalog, InstanceGroup, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::aws_2022();
    // Every accelerated-computing type with a GPU-ish profile.
    let gpu_types: Vec<String> = catalog
        .instance_types()
        .iter()
        .filter(|t| t.family().group() == InstanceGroup::AcceleratedComputing)
        .map(|t| t.name())
        .collect();
    println!("tracking {} accelerated-computing types", gpu_types.len());

    let sim = SimConfig {
        tick: SimDuration::from_hours(2),
        ..SimConfig::default()
    };
    let mut lake = SpotLake::builder()
        .catalog(catalog)
        .sim_config(sim)
        .collector_config(CollectorConfig {
            type_filter: Some(gpu_types.clone()),
            ..CollectorConfig::default()
        })
        .build()?;

    // A simulated week of history.
    lake.run_rounds(7 * 12)?;
    let db = lake.archive();
    let catalog = lake.cloud().catalog();

    // Rank (type, region): mean archived SPS (weight 2) + current
    // interruption-free score + savings as tie-breaker.
    let mut ranking: Vec<(f64, String, String, f64, f64, f64)> = Vec::new();
    for ty in &gpu_types {
        for region in catalog.regions() {
            let sps = db.query_window(
                "sps",
                &Query::measure("sps")
                    .filter("instance_type", ty)
                    .filter("region", region.code()),
                u64::MAX / 2,
                Aggregate::Mean,
            )?;
            let Some(sps_mean) = sps.first().map(|w| w.value) else {
                continue; // not offered here
            };
            let if_now = db
                .latest(
                    "advisor",
                    &Query::measure("if_score")
                        .filter("instance_type", ty)
                        .filter("region", region.code()),
                )?
                .first()
                .map(|r| r.value)
                .unwrap_or(1.0);
            let savings = db
                .latest(
                    "advisor",
                    &Query::measure("savings")
                        .filter("instance_type", ty)
                        .filter("region", region.code()),
                )?
                .first()
                .map(|r| r.value)
                .unwrap_or(0.0);
            let score = 2.0 * sps_mean + if_now + savings / 100.0;
            ranking.push((
                score,
                ty.clone(),
                region.code().to_owned(),
                sps_mean,
                if_now,
                savings,
            ));
        }
    }
    ranking.sort_by(|a, b| b.0.total_cmp(&a.0));

    println!("\ntop 10 GPU spot launch targets (blended reliability score):");
    println!(
        "  {:<14} {:<16} {:>8} {:>6} {:>8} {:>7}",
        "type", "region", "SPS(7d)", "IF", "savings", "score"
    );
    for (score, ty, region, sps, ifs, savings) in ranking.iter().take(10) {
        println!("  {ty:<14} {region:<16} {sps:>8.2} {ifs:>6.1} {savings:>7.0}% {score:>7.2}");
    }

    println!("\nbottom 5 (avoid):");
    for (score, ty, region, sps, ifs, savings) in ranking.iter().rev().take(5) {
        println!("  {ty:<14} {region:<16} {sps:>8.2} {ifs:>6.1} {savings:>7.0}% {score:>7.2}");
    }
    Ok(())
}
