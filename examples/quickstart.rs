//! Quickstart: stand up the whole SpotLake pipeline and query the archive.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the full AWS-2022 catalog, runs the simulated cloud + collector
//! for a simulated day, then queries the archive the way a SpotLake user
//! would: over the HTTP gateway.

use spotlake::{CollectorConfig, SimConfig, SpotLake};
use spotlake_types::{Catalog, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A slice of the catalog keeps the demo fast; drop the filter to
    // collect all 547 types.
    let catalog = Catalog::aws_2022();
    let watchlist: Vec<String> = ["m5.large", "c5.xlarge", "p3.2xlarge", "g4dn.xlarge"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    let sim = SimConfig {
        tick: SimDuration::from_mins(30),
        ..SimConfig::default()
    };
    let mut lake = SpotLake::builder()
        .catalog(catalog)
        .sim_config(sim)
        .collector_config(CollectorConfig {
            type_filter: Some(watchlist.clone()),
            ..CollectorConfig::default()
        })
        .build()?;

    println!(
        "query plan: {} placement-score queries per round (naive would need {})",
        lake.plan_stats().planned_queries,
        lake.plan_stats().naive_queries
    );

    // One simulated day of 30-minute collection rounds.
    let stats = lake.run_rounds(48)?;
    println!(
        "collected {} rounds: {} sps records, {} advisor records, {} price records",
        stats.rounds, stats.sps_records, stats.advisor_records, stats.price_records
    );

    // Query the archive over the gateway, exactly like the web service.
    for path in [
        "/tables",
        "/latest?table=sps&instance_type=p3.2xlarge&region=us-east-1",
        "/query?table=advisor&instance_type=g4dn.xlarge&region=us-east-1",
        "/window?table=sps&instance_type=m5.large&window=21600&agg=mean",
    ] {
        let response = lake.http_get(path)?;
        println!(
            "\nGET {path}\n  -> {} {}",
            response.status,
            response.body_text()
        );
    }

    // And export a CSV slice, as the website's download button would.
    let csv = lake.http_get("/query?table=sps&instance_type=c5.xlarge&format=csv&limit=5")?;
    println!("\nCSV export (first rows):\n{}", csv.body_text());
    Ok(())
}
