//! Interruption prediction: the paper's Section 5.4 + 5.5 pipeline, small.
//!
//! ```text
//! cargo run --release --example interruption_prediction
//! ```
//!
//! Runs a scaled-down fulfillment/interruption experiment (stratified
//! sampling → archived history → persistent 24-hour requests), then trains
//! the Table 4 predictors and shows that the random forest over archived
//! history beats every current-value heuristic.

use spotlake::experiment::{ExperimentConfig, FulfillmentExperiment, Stratum};
use spotlake::prediction;
use spotlake::{SimCloud, SimConfig};
use spotlake_types::{Catalog, SimDuration};

fn main() {
    let config = SimConfig {
        tick: SimDuration::from_mins(20),
        shock_day: None,
        ..SimConfig::default()
    };
    let mut cloud = SimCloud::new(Catalog::aws_2022(), config);

    println!("warming up the advisor window (16 simulated days)...");
    cloud.run_days(16);

    let experiment = FulfillmentExperiment::new(ExperimentConfig {
        cases_per_stratum: 40,
        history: SimDuration::from_days(14),
        ..ExperimentConfig::default()
    });
    println!("recording history and running the 24h experiment...");
    let (report, _archive) = experiment.run(&mut cloud);
    println!("{} cases completed\n", report.cases.len());

    println!("outcome by score combination (Table 3 shape):");
    for row in report.table3() {
        println!(
            "  {}  n={:<4} not-fulfilled {:>6.2}%  interrupted {:>6.2}%",
            row.stratum.label(),
            row.cases,
            row.not_fulfilled_pct,
            row.interrupted_pct
        );
    }

    let hh = report.fulfillment_latencies(Stratum::HH);
    if !hh.is_empty() {
        let within_1s = hh.iter().filter(|&&l| l <= 1.0).count() as f64 / hh.len() as f64;
        println!(
            "\nH-H fulfillment: {:.1}% within one second (paper: 28.07%)",
            100.0 * within_1s
        );
    }

    println!("\npredictor comparison (Table 4 shape):");
    let table4 = prediction::evaluate(&report.cases, 42);
    for row in &table4.rows {
        println!(
            "  {:<10} accuracy {:.2}  F1 {:.2}",
            row.method, row.accuracy, row.f1
        );
    }
    let rf = table4.row("RF").expect("RF always evaluated");
    let sps = table4.row("SPS").expect("SPS always evaluated");
    if rf.accuracy > sps.accuracy {
        println!(
            "\nthe archived history gives the forest its edge: RF {:.2} vs SPS heuristic {:.2}",
            rf.accuracy, sps.accuracy
        );
    } else {
        println!(
            "\nat this demo scale ({} cases, {}-sample histories) the forest ties or trails the \
             SPS heuristic (RF {:.2} vs {:.2}); run the full-scale version with\n  cargo run --release -p spotlake-bench --bin table04",
            report.cases.len(),
            report.cases.first().map_or(0, |c| c.history.sps.len()),
            rf.accuracy,
            sps.accuracy
        );
    }
}
