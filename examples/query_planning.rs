//! Query planning: how SpotLake fits 9,299 scans into the API limits.
//!
//! ```text
//! cargo run --release --example query_planning
//! ```
//!
//! Walks through Section 3 of the paper interactively: the naive cost of
//! scanning every (type, region) pair, the bin-packed plan, the unique-query
//! rate limit, and how many accounts the collector needs — then actually
//! issues one packed query through the rate-limited API client.

use spotlake_cloud_api::{AccountId, SpsClient, SpsRequest, UNIQUE_QUERY_LIMIT};
use spotlake_cloud_sim::{SimCloud, SimConfig};
use spotlake_collector::{AccountPool, PlannerStrategy, QueryPlanner};
use spotlake_types::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::aws_2022();
    println!(
        "catalog: {} types x {} regions = {} all-pairs queries; {} (type, region) pairs actually offered",
        catalog.instance_types().len(),
        catalog.regions().len(),
        catalog.instance_types().len() * catalog.regions().len(),
        catalog
            .type_ids()
            .map(|t| catalog.support_map(t).len())
            .sum::<usize>(),
    );

    for strategy in PlannerStrategy::ALL {
        let (plan, stats) = QueryPlanner::new(strategy).plan_with_stats(&catalog, None);
        println!(
            "  {:<6} -> {:>5} queries ({:.2}x fewer than all-pairs), {} accounts at {} unique queries/day",
            strategy.name(),
            stats.planned_queries,
            9_299.0 / stats.planned_queries as f64,
            AccountPool::required_accounts(plan.len()),
            UNIQUE_QUERY_LIMIT
        );
    }

    // Show one packed query end to end.
    let plan =
        QueryPlanner::new(PlannerStrategy::Exact).plan(&catalog, Some(&["p3.2xlarge".to_string()]));
    let mut cloud = SimCloud::new(catalog, SimConfig::default());
    cloud.run_days(1);
    let mut client = SpsClient::new();
    let account = AccountId::new("demo");
    println!("\np3.2xlarge packed plan and live responses:");
    for q in &plan {
        let request = SpsRequest::new(vec![q.instance_type.clone()], q.regions.clone(), 1)?
            .single_availability_zone(true);
        let scores = client.get_spot_placement_scores(&cloud, &account, &request)?;
        println!("  query over [{}]:", q.regions.join(", "));
        for s in scores {
            println!(
                "    {:<16} {:<14} score {}",
                s.region,
                s.availability_zone.unwrap_or_default(),
                s.score
            );
        }
    }
    println!(
        "\nunique queries consumed on this account: {} of {}",
        client.unique_queries_used(&account, cloud.now()),
        UNIQUE_QUERY_LIMIT
    );
    Ok(())
}
