//! Multi-vendor archive: Section 7 of the paper, running.
//!
//! ```text
//! cargo run --release --example multicloud
//! ```
//!
//! Collects spot datasets from the simulated AWS, Azure, and GCP clouds on
//! a shared clock — each vendor contributing only what it actually
//! publishes (GCP: current price via portal only; Azure: price via API,
//! availability/eviction via portal; AWS: everything) — then joins the
//! unified archive on the hardware-shape global key and ranks vendors.

use spotlake_multicloud::{common_demo_shape, MultiCloudCollector, Vendor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("dataset access per vendor (paper Section 7):");
    for vendor in Vendor::ALL {
        let a = vendor.dataset_access();
        println!(
            "  {:<6} price {:<7} availability {:<7} interruption {:?}",
            vendor.tag(),
            format!("{:?}", a.price),
            format!("{:?}", a.availability),
            a.interruption
        );
    }

    let mut collector = MultiCloudCollector::demo_scale()?;
    println!(
        "\ncollecting {} vendors for a simulated day (shared timestamp clock)...",
        collector.vendors().len()
    );
    let totals = collector.run_rounds(48)?;
    for s in &totals {
        println!(
            "  {:<6} price {:>6}  availability {:>6}  eviction {:>6}",
            s.vendor.tag(),
            s.price_records,
            s.availability_records,
            s.eviction_records
        );
    }

    let report = collector.compare_vendors()?;
    println!(
        "\nshapes offered by 2+ vendors: {:?}",
        report.contested_shapes()
    );

    println!("\ncross-vendor comparison on the 4c-16g shape:");
    for row in report.rows.iter().filter(|r| r.shape == "4c-16g") {
        println!(
            "  {:<6} savings {:>5.1}%  availability {}",
            row.vendor.tag(),
            row.mean_savings_pct,
            row.mean_availability
                .map_or("(not published)".to_owned(), |v| format!("{v:.2}")),
        );
    }
    if let Some(best) = report.best_savings_for(&common_demo_shape()) {
        println!(
            "\nbest 4 vCPU / 16 GiB spot deal right now: {} at {:.1}% off on-demand",
            best.vendor, best.mean_savings_pct
        );
    }
    Ok(())
}
