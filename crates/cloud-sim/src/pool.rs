//! Capacity pools: one per supported (instance type × availability zone).
//!
//! A pool models the surplus capacity the provider can sell as spot. Its
//! free *margin* (fraction of capacity not consumed by on-demand/reserved
//! load) follows a mean-reverting stochastic process; everything the cloud
//! publishes is derived from it:
//!
//! * the placement score is a thresholded function of the pool's headroom
//!   relative to the requested target capacity,
//! * the interruption hazard rises sharply when the margin falls below the
//!   stress cut (capacity crunch → reclaim events), and
//! * the advisor's trailing-month statistics integrate the stress history.
//!
//! All per-pool parameters are deterministic functions of the pool's name
//! (via [`spotlake_types::hash`]) and the [`SimConfig`] seed, so the fleet
//! is identical across runs.

use crate::config::SimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spotlake_types::hash::{hash01, hash_u64};
use spotlake_types::{AzId, Catalog, InstanceFamily, InstanceTypeId, SimDuration, SpotPrice};

/// Compact index of a pool within a [`crate::SimCloud`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(pub u32);

/// Immutable per-pool parameters, derived deterministically from the pool's
/// identity.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolParams {
    /// The instance type this pool serves.
    pub ty: InstanceTypeId,
    /// The availability zone this pool lives in.
    pub az: AzId,
    /// Pool capacity, in instances of this type.
    pub capacity: f64,
    /// Long-run mean of the free-margin fraction.
    pub margin_mean: f64,
    /// Mean-reversion rate of the margin process, per hour.
    pub ou_theta: f64,
    /// Volatility of the margin process, per √hour.
    pub ou_sigma: f64,
    /// Margin below which the pool is *stressed* (reclaim events likely).
    pub stress_cut: f64,
    /// Baseline interruption hazard when calm, per hour.
    pub hazard_base: f64,
    /// Additional hazard at full stress, per hour.
    pub hazard_peak: f64,
    /// Additive bias of the advisor's reported interruption ratio for this
    /// pool (the advisor is a biased, damped estimator — Section 5.3's
    /// dataset contradictions come from this).
    pub advisor_bias: f64,
    /// Multiplier the advisor bias applies to the pool's whole hazard:
    /// pairs the advisor reports as interruption-heavy genuinely are
    /// (Table 3's H-L row), while the time-series correlation with the
    /// placement score stays near zero (Figure 8).
    pub hazard_mult: f64,
    /// Margin below which the pool may fall into a capacity *outage* — a
    /// long stretch with no sellable headroom. Outages are what keep the
    /// paper's low-score requests unfulfilled for a whole day (Table 3)
    /// while the fulfilled ones place within minutes (Figure 11a).
    pub outage_enter_cut: f64,
    /// Rate of entering an outage while below the cut, per hour.
    pub outage_rate: f64,
    /// Median outage dwell time, hours.
    pub outage_dwell_h: f64,
    /// Long-run mean of the spot savings fraction over on-demand.
    pub savings_mean: f64,
    /// On-demand price of the type in this pool's region, micro-USD/hour.
    pub od_micros: u64,
}

/// Mutable per-pool state.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolState {
    /// Current free-margin fraction (before any global shock factor).
    pub margin: f64,
    /// Free-margin fraction after the global shock factor, as seen by all
    /// published datasets this tick.
    pub effective_margin: f64,
    /// Current savings fraction of the smoothed spot price.
    pub savings: f64,
    /// Current spot price.
    pub price: SpotPrice,
    /// Hours spent stressed since the advisor last rolled its daily bucket.
    pub stress_hours_today: f64,
    /// Remaining hours of the current capacity outage (0 = none).
    pub outage_hours_left: f64,
    /// Effective margin without the per-tick flicker: the slow component
    /// used for stress/hazard accounting, so one tick of flicker does not
    /// register as a capacity crunch.
    pub slow_margin: f64,
    /// Exponentially decaying memory of recent stress (12 h half-life-ish):
    /// a pool that was starved this morning stays fragile all day, which is
    /// why nearly every fulfilled low-score request in the paper's Table 3
    /// got interrupted within its 24-hour window.
    pub recent_stress: f64,
}

/// A capacity pool: parameters, state, and a private RNG stream.
#[derive(Debug, Clone)]
pub struct Pool {
    params: PoolParams,
    state: PoolState,
    rng: StdRng,
}

/// Per-family base capacity, in `xlarge`-equivalents per pool (before the
/// region factor). Accelerated and specialty hardware is far scarcer than
/// general-purpose fleets.
fn family_capacity(f: InstanceFamily) -> f64 {
    use InstanceFamily::*;
    match f {
        T => 520.0,
        M => 440.0,
        A => 180.0,
        C => 420.0,
        R => 360.0,
        X => 64.0,
        Z => 56.0,
        P => 26.0,
        G => 88.0,
        Dl => 150.0,
        Inf => 60.0,
        F => 30.0,
        Vt => 32.0,
        I => 130.0,
        D => 110.0,
        H => 64.0,
    }
}

/// Per-family long-run mean free margin. The ordering encodes the paper's
/// Figure 3/4 findings: accelerated GPU families (P, G) scarcest; the
/// recently released Gaudi (DL) underused and therefore plentiful; general
/// families comfortable.
fn family_margin(f: InstanceFamily) -> f64 {
    use InstanceFamily::*;
    match f {
        T => 0.32,
        M => 0.28,
        A => 0.27,
        C => 0.26,
        R => 0.22,
        X => 0.15,
        Z => 0.15,
        P => 0.07,
        G => 0.11,
        Dl => 0.24,
        Inf => 0.11,
        F => 0.09,
        Vt => 0.19,
        I => 0.18,
        D => 0.13,
        H => 0.14,
    }
}

/// Per-family long-run mean savings fraction over on-demand.
fn family_savings(f: InstanceFamily) -> f64 {
    use InstanceFamily::*;
    match f {
        T => 0.70,
        M => 0.62,
        A => 0.62,
        C => 0.60,
        R => 0.60,
        X => 0.50,
        Z => 0.50,
        P => 0.33,
        G => 0.45,
        Dl => 0.60,
        Inf => 0.50,
        F => 0.40,
        Vt => 0.50,
        I => 0.55,
        D => 0.55,
        H => 0.50,
    }
}

impl Pool {
    /// Builds the pool for `(ty, az)` with parameters derived from the
    /// catalog and the configuration seed.
    pub fn new(catalog: &Catalog, config: &SimConfig, ty: InstanceTypeId, az: AzId) -> Pool {
        let it = catalog.ty(ty);
        let region = catalog.az(az).region();
        let pool_name = format!("{}@{}", it.name(), catalog.az(az).name());
        let seed_str = config.seed.to_string();
        let h = |salt: &str| hash01(&[salt, &pool_name, &seed_str]);

        let family = it.family();
        let weight = it.size().weight();
        let region_factor = if catalog.region(region).code() == "us-east-1" {
            2.0
        } else {
            0.5 + 1.5 * h("region-capacity")
        };
        let capacity =
            (family_capacity(family) * region_factor * config.capacity_scale / weight).max(10.0);

        // Long-run margin: family base × size penalty × per-pool jitter.
        let size_penalty = 1.0 - 0.15 * (weight / 32.0).min(1.0);
        let margin_mean =
            (family_margin(family) * size_penalty * (0.5 + 1.0 * h("margin"))).clamp(0.02, 0.60);

        // Hazard and dynamics scale with pool quality (long-run margin).
        let quality = ((margin_mean - 0.05) / 0.30).clamp(0.0, 1.0);

        // Mean reversion: comfortable pools drift slowly (up to three
        // days); tight specialty pools churn within hours as reclaim and
        // re-release cycles pass through. Stationary std 30–80% of mean.
        let tau_hours = 6.0 + (26.0 + 40.0 * quality) * h("tau");
        let ou_theta = 1.0 / tau_hours;
        let stationary_std = margin_mean * (0.30 + 0.50 * h("vol"));
        let ou_sigma = stationary_std * (2.0 * ou_theta).sqrt();

        let hazard_base = 10f64.powf(-2.2 - 1.1 * quality);
        let hazard_peak = (0.27 + 0.45 * h("hazard-peak")) * (1.0 + 1.4 * (1.0 - quality));

        // Advisor bias is shared by every AZ pool of a (type, region) pair
        // — the advisor reports at region granularity, so a per-AZ bias
        // would average away. The distribution is bimodal: most pairs are
        // reported as reliable, a minority as heavily interrupted,
        // reproducing Table 2's interruption-free score spread.
        let region_code = catalog.region(region).code();
        let type_name = it.name();
        let hb = |salt: &str| hash01(&[salt, &type_name, region_code, &seed_str]);
        // The advisor skews worse for accelerated/specialty hardware and
        // for larger sizes (Figures 3b, 4b, 5): shift the bucket draw
        // toward higher interruption ranges for those pairs.
        let family_shift = match family {
            InstanceFamily::P | InstanceFamily::G | InstanceFamily::Inf | InstanceFamily::F => 0.26,
            InstanceFamily::Vt => 0.12,
            InstanceFamily::X | InstanceFamily::Z => 0.10,
            InstanceFamily::I | InstanceFamily::D | InstanceFamily::H => 0.08,
            InstanceFamily::Dl => -0.10,
            _ => 0.0,
        };
        let size_shift = 0.08 * (weight / 16.0).min(1.0);
        let mode = (hb("advisor-mode") + family_shift + size_shift).clamp(0.0, 0.999);
        let advisor_bias = advisor_bias_from(mode, hb("advisor-level"));
        let hazard_mult = 1.0 + 16.0 * advisor_bias.max(0.0);
        let savings_mean =
            (family_savings(family) * (0.85 + 0.30 * h("savings"))).clamp(0.05, 0.85);

        let od_micros = catalog.od_price_in(ty, region).micros();
        let price = initial_price(od_micros, savings_mean);

        let rng_seed = config.seed ^ hash_u64(&["pool-rng", &pool_name]);
        let mut rng = StdRng::seed_from_u64(rng_seed);

        // Start the margin at a random draw from (roughly) its stationary
        // distribution so day 0 is already in steady state.
        let margin = (margin_mean + stationary_std * normal(&mut rng)).clamp(0.001, 0.97);

        // A pool is stressed when its headroom shrinks to about one
        // instance of its own type — for small pools (specialty hardware)
        // that happens at much higher margin fractions, which is exactly
        // why their spot instances are reclaimed more (Figures 3, 7;
        // Table 3's L rows).
        let stress_cut = (1.1 / capacity).max(0.003);

        Pool {
            params: PoolParams {
                ty,
                az,
                capacity,
                margin_mean,
                ou_theta,
                ou_sigma,
                stress_cut,
                hazard_base,
                hazard_peak,
                advisor_bias,
                hazard_mult,
                outage_enter_cut: 0.55 / capacity,
                outage_rate: 0.02 + 0.05 * h("outage-rate"),
                // Churny pools (high advisor bias) see short outages and
                // frequent reclaims; shortage pools (score 1 despite a
                // clean advisor record) stay out for much longer — the
                // paper's L-H row goes unfulfilled more than L-L.
                outage_dwell_h: (18.0 + 42.0 * h("outage-dwell"))
                    * (1.0 + 3.0 * (0.25 - advisor_bias).clamp(0.0, 0.25)),
                savings_mean,
                od_micros,
            },
            state: PoolState {
                margin,
                effective_margin: margin,
                savings: savings_mean,
                price,
                stress_hours_today: 0.0,
                outage_hours_left: 0.0,
                slow_margin: margin,
                recent_stress: 0.0,
            },
            rng,
        }
    }

    /// The pool's immutable parameters.
    pub fn params(&self) -> &PoolParams {
        &self.params
    }

    /// The pool's current state.
    pub fn state(&self) -> &PoolState {
        &self.state
    }

    /// Advances the margin process by `dt`. `shock_factor` is the global
    /// demand-shock multiplier (1.0 outside shock windows).
    pub fn step(&mut self, dt: SimDuration, shock_factor: f64) {
        let dt_h = dt.as_secs() as f64 / 3600.0;
        let eps = normal(&mut self.rng);
        let p = &self.params;
        let m = self.state.margin;
        let next = m + p.ou_theta * (p.margin_mean - m) * dt_h + p.ou_sigma * dt_h.sqrt() * eps;
        self.state.margin = next.clamp(0.001, 0.97);
        // Fast per-tick flicker on top of the slow OU component: real pools
        // gain and lose a few instances between collection ticks, so a pool
        // scored 1 can fulfill minutes later (Figure 11a's fast L-side
        // fulfillments) and the placement score updates far more often than
        // the advisor (Figure 10).
        let jitter = (0.18 * normal(&mut self.rng)).exp();
        self.state.slow_margin = (self.state.margin * shock_factor).clamp(0.001, 0.97);
        self.state.effective_margin =
            (self.state.margin * jitter * shock_factor).clamp(0.001, 0.97);

        // Capacity outages: while headroom is thin the pool may fall into a
        // long stretch with no sellable capacity at all.
        if self.state.outage_hours_left > 0.0 {
            self.state.outage_hours_left = (self.state.outage_hours_left - dt_h).max(0.0);
        } else if self.state.slow_margin < self.params.outage_enter_cut {
            let enter = self.rng.gen::<f64>() < self.params.outage_rate * dt_h;
            if enter {
                let z = normal(&mut self.rng);
                self.state.outage_hours_left =
                    (self.params.outage_dwell_h * (0.8 * z).exp()).clamp(6.0, 240.0);
            }
        }
        if self.state.outage_hours_left > 0.0 {
            let pinned = 0.3 / self.params.capacity;
            self.state.effective_margin = self.state.effective_margin.min(pinned);
            self.state.slow_margin = self.state.slow_margin.min(pinned);
        }

        let p = &self.params;
        let stress_now = ((p.stress_cut - self.state.slow_margin) / p.stress_cut).clamp(0.0, 1.0);
        self.state.recent_stress = stress_now.max(self.state.recent_stress * (-dt_h / 6.0).exp());
        if self.is_stressed() {
            self.state.stress_hours_today += dt_h;
        }
    }

    /// Free capacity, in instances of this pool's type.
    pub fn headroom(&self) -> f64 {
        self.state.effective_margin * self.params.capacity
    }

    /// Headroom divided by the requested instance count — the quantity the
    /// placement score thresholds.
    pub fn fulfillment_ratio(&self, count: u32) -> f64 {
        debug_assert!(
            count > 0,
            "a spot request must ask for at least one instance"
        );
        self.headroom() / f64::from(count.max(1))
    }

    /// The ground-truth single-type placement score for a request of
    /// `count` instances: 3 / 2 / 1 by headroom ratio (the paper observed
    /// single-type queries never exceed 3 — Section 5.2).
    pub fn score_for(&self, count: u32) -> u8 {
        let r = self.fulfillment_ratio(count);
        if r >= 1.6 {
            3
        } else if r >= 1.0 {
            2
        } else {
            1
        }
    }

    /// Whether the pool is currently in a capacity crunch.
    pub fn is_stressed(&self) -> bool {
        self.state.slow_margin < self.params.stress_cut
    }

    /// Current interruption hazard, per hour of running time.
    pub fn hazard_per_hour(&self) -> f64 {
        let p = &self.params;
        let stress_now = ((p.stress_cut - self.state.slow_margin) / p.stress_cut).clamp(0.0, 1.0);
        let stress = stress_now.max(0.75 * self.state.recent_stress);
        // Cubic in stress: shallow grazes below the cut barely matter, deep
        // starvation is lethal — this separates the paper's M-M row from
        // its L rows.
        (p.hazard_base + p.hazard_peak * stress * stress * stress) * p.hazard_mult
    }

    /// Probability that a running instance in this pool is interrupted
    /// within the next `dt`.
    pub fn interruption_prob(&self, dt: SimDuration) -> f64 {
        let dt_h = dt.as_secs() as f64 / 3600.0;
        1.0 - (-self.hazard_per_hour() * dt_h).exp()
    }

    /// Samples a fulfillment latency, in seconds, for a request whose
    /// current headroom ratio is `ratio` (must be ≥ 1.0: callers hold the
    /// request otherwise). Richer pools fulfill almost immediately; tight
    /// pools take minutes (Figure 11a).
    pub fn sample_fulfillment_latency(&mut self, ratio: f64) -> f64 {
        debug_assert!(ratio >= 1.0);
        let median = (2.0 * (3.0 / ratio.min(3.0)).powf(2.8)).clamp(0.4, 600.0);
        let z = normal(&mut self.rng);
        (median * (1.0_f64 * z).exp()).clamp(0.2, 7200.0)
    }

    /// Draws a uniform value in `[0, 1)` from the pool's RNG stream.
    pub fn draw(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Takes (and resets) the stress-hours accumulator; the advisor calls
    /// this when rolling its daily window.
    pub fn take_stress_hours(&mut self) -> f64 {
        std::mem::take(&mut self.state.stress_hours_today)
    }

    /// Updates the smoothed spot price process. Returns the new price if it
    /// changed enough to be recorded as a price-change event.
    pub fn step_price(&mut self) -> Option<SpotPrice> {
        let p = &self.params;
        // Slow mean-reverting walk of the savings fraction; deliberately
        // driven by its own noise, not the margin, reproducing the paper's
        // finding that the post-2017 price carries little availability
        // information (Figure 8).
        let eps = normal(&mut self.rng);
        let s = self.state.savings;
        let next = (s + 0.02 * (p.savings_mean - s) + 0.004 * eps).clamp(0.05, 0.85);
        self.state.savings = next;
        let new_price = initial_price(p.od_micros, next);
        let old = self.state.price.micros() as f64;
        if (new_price.micros() as f64 - old).abs() / old > 0.02 {
            self.state.price = new_price;
            Some(new_price)
        } else {
            None
        }
    }
}

/// Inverse-CDF draw of the advisor's base reported interruption ratio for a
/// (type, region) pair, matched to Table 2's interruption-free score
/// distribution (33.05 / 25.92 / 13.86 / 6.33 / 20.84% for buckets
/// `<5%` .. `>20%`). `mode` selects the bucket, `level` the position within
/// it; the small trailing stress term added at report time shifts a share of
/// pairs one bucket up, which the slightly lowered bucket shares below
/// pre-compensate.
fn advisor_bias_from(mode: f64, level: f64) -> f64 {
    let (lo, hi) = if mode < 0.36 {
        (-0.01, 0.045)
    } else if mode < 0.62 {
        (0.05, 0.095)
    } else if mode < 0.75 {
        (0.10, 0.145)
    } else if mode < 0.81 {
        (0.15, 0.195)
    } else {
        (0.20, 0.30)
    };
    lo + (hi - lo) * level
}

fn initial_price(od_micros: u64, savings: f64) -> SpotPrice {
    let micros = ((od_micros as f64) * (1.0 - savings)).round().max(1.0) as u64;
    SpotPrice::from_micros(micros).expect("derived spot price is positive")
}

/// Standard normal draw via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_types::Catalog;

    fn test_pool(type_name: &str) -> (Catalog, Pool) {
        let catalog = Catalog::aws_2022();
        let ty = catalog.instance_type_id(type_name).unwrap();
        let az = catalog.az_id("us-east-1a").unwrap();
        let pool = Pool::new(&catalog, &SimConfig::default(), ty, az);
        (catalog, pool)
    }

    #[test]
    fn pool_construction_is_deterministic() {
        let (_, a) = test_pool("m5.large");
        let (_, b) = test_pool("m5.large");
        assert_eq!(a.params(), b.params());
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn different_seeds_give_different_pools() {
        let catalog = Catalog::aws_2022();
        let ty = catalog.instance_type_id("m5.large").unwrap();
        let az = catalog.az_id("us-east-1a").unwrap();
        let a = Pool::new(&catalog, &SimConfig::with_seed(1), ty, az);
        let b = Pool::new(&catalog, &SimConfig::with_seed(2), ty, az);
        assert_ne!(a.state().margin, b.state().margin);
    }

    #[test]
    fn margin_stays_in_bounds_over_long_run() {
        let (_, mut pool) = test_pool("p3.2xlarge");
        for _ in 0..5000 {
            pool.step(SimDuration::from_mins(10), 1.0);
            let m = pool.state().margin;
            assert!((0.001..=0.97).contains(&m), "margin {m} escaped bounds");
        }
    }

    #[test]
    fn margin_mean_reverts() {
        let (_, mut pool) = test_pool("m5.large");
        let target = pool.params().margin_mean;
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            pool.step(SimDuration::from_mins(10), 1.0);
            sum += pool.state().margin;
        }
        let mean = sum / f64::from(n);
        assert!(
            (mean - target).abs() < target * 0.35,
            "long-run mean {mean:.3} too far from target {target:.3}"
        );
    }

    #[test]
    fn accelerated_pools_are_scarcer() {
        let (_, gpu) = test_pool("p3.2xlarge");
        let (_, general) = test_pool("m5.2xlarge");
        assert!(gpu.params().capacity < general.params().capacity);
    }

    #[test]
    fn score_thresholds() {
        // A scarce GPU pool: crushing its margin leaves headroom below one
        // instance → score 1. (A general-purpose m5 pool is so large that
        // even a crushed margin still covers single-instance requests —
        // which is why Table 2 sees score 1 mostly on specialty hardware.)
        let (_, mut pool) = test_pool("p3.2xlarge");
        pool.step(SimDuration::from_mins(10), 0.0001);
        assert_eq!(pool.score_for(1), 1);

        let (_, mut pool) = test_pool("m5.large");
        pool.step(SimDuration::from_mins(10), 1.0);
        assert_eq!(pool.score_for(1), 3);
        // Requesting absurd capacity pushes any pool to score 1.
        assert_eq!(pool.score_for(1_000_000), 1);
    }

    #[test]
    fn score_is_monotone_in_count() {
        let (_, mut pool) = test_pool("g4dn.xlarge");
        pool.step(SimDuration::from_mins(10), 1.0);
        let mut prev = 3;
        for count in [1u32, 2, 5, 10, 20, 50, 100, 1000] {
            let s = pool.score_for(count);
            assert!(s <= prev, "score must not increase with count");
            prev = s;
        }
    }

    #[test]
    fn hazard_rises_under_stress() {
        let (_, mut pool) = test_pool("m5.large");
        pool.step(SimDuration::from_mins(10), 1.0);
        let calm = pool.hazard_per_hour();
        pool.step(SimDuration::from_mins(10), 0.0001);
        let stressed = pool.hazard_per_hour();
        assert!(
            stressed > calm * 10.0,
            "stressed hazard {stressed} should dwarf calm hazard {calm}"
        );
        assert!(pool.is_stressed());
    }

    #[test]
    fn interruption_prob_scales_with_dt() {
        let (_, mut pool) = test_pool("m5.large");
        pool.step(SimDuration::from_mins(10), 1.0);
        let p1 = pool.interruption_prob(SimDuration::from_hours(1));
        let p24 = pool.interruption_prob(SimDuration::from_hours(24));
        assert!(p24 > p1);
        assert!((0.0..1.0).contains(&p1));
    }

    #[test]
    fn fulfillment_latency_shorter_for_richer_pools() {
        let (_, mut pool) = test_pool("m5.large");
        let rich: f64 = (0..200).map(|_| pool.sample_fulfillment_latency(3.0)).sum();
        let tight: f64 = (0..200).map(|_| pool.sample_fulfillment_latency(1.0)).sum();
        assert!(tight > rich * 2.0, "tight {tight:.0}s vs rich {rich:.0}s");
    }

    #[test]
    fn price_process_stays_bounded_and_changes_occasionally() {
        let (_, mut pool) = test_pool("m5.large");
        let od = pool.params().od_micros;
        let mut changes = 0;
        for _ in 0..1000 {
            if pool.step_price().is_some() {
                changes += 1;
            }
            let price = pool.state().price.micros();
            assert!(price < od, "spot stays below on-demand");
            assert!(price > od / 20, "spot does not collapse to zero");
        }
        assert!(changes > 10, "price should change sometimes ({changes})");
        assert!(
            changes < 800,
            "post-2017 price must be sticky ({changes} changes in 1000 steps)"
        );
    }

    #[test]
    fn stress_hours_accumulate_and_reset() {
        let (_, mut pool) = test_pool("m5.large");
        pool.step(SimDuration::from_hours(1), 0.0001);
        assert!(pool.state().stress_hours_today > 0.9);
        let taken = pool.take_stress_hours();
        assert!(taken > 0.9);
        assert_eq!(pool.state().stress_hours_today, 0.0);
    }
}
