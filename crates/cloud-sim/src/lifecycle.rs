//! Spot request lifecycle management (paper Table 1, Section 5.4).
//!
//! Requests live in the [`Lifecycle`] registry. Once per simulation tick the
//! registry re-evaluates every request against its pool:
//!
//! * `PendingEvaluation` / `Holding` requests fulfill when the pool's
//!   headroom covers the requested count, with a latency sampled from the
//!   pool (richer pools fulfill in seconds — Figure 11a); otherwise they
//!   (remain in) `Holding`.
//! * `Fulfilled` requests face the pool's interruption hazard each tick
//!   (Figure 11b); *persistent* requests re-enter evaluation right after an
//!   interruption, as in the paper's 24-hour experiments.

use crate::pool::{Pool, PoolId};
use spotlake_types::{RequestState, SimDuration, SimTime, SpotRequest, SpotRequestConfig};

/// Final classification of an experiment request, the target classes of the
/// paper's prediction task (Section 5.5): `NoFulfill`, `Interrupted`, or
/// `NoInterrupt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RequestOutcome {
    /// The request was never fulfilled during the observation window.
    NoFulfill,
    /// The request was fulfilled and interrupted at least once.
    Interrupted,
    /// The request was fulfilled and never interrupted.
    NoInterrupt,
}

impl RequestOutcome {
    /// Classifies a request's observed history.
    pub fn of(request: &SpotRequest) -> RequestOutcome {
        if !request.was_fulfilled() {
            RequestOutcome::NoFulfill
        } else if request.was_interrupted() {
            RequestOutcome::Interrupted
        } else {
            RequestOutcome::NoInterrupt
        }
    }

    /// Short label used in experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            RequestOutcome::NoFulfill => "NoFulfill",
            RequestOutcome::Interrupted => "Interrupted",
            RequestOutcome::NoInterrupt => "NoInterrupt",
        }
    }
}

impl std::fmt::Display for RequestOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ActiveRequest {
    pub(crate) request: SpotRequest,
    pub(crate) pool: PoolId,
    pub(crate) cancelled: bool,
    /// Headroom ratio this particular request needs to place. Most
    /// requests place at ratio 1.0; a minority lands on fragmented hosts
    /// and needs up to 1.5x (the paper cites resource fragmentation [13] as
    /// the reason larger/tighter placements fail) — this is what leaves a
    /// share of medium-score requests unfulfilled for a whole day
    /// (Table 3's M-M row).
    pub(crate) required_ratio: f64,
}

/// Registry of all spot requests in the cloud.
#[derive(Debug, Clone, Default)]
pub(crate) struct Lifecycle {
    requests: Vec<ActiveRequest>,
}

impl Lifecycle {
    pub(crate) fn submit(
        &mut self,
        config: SpotRequestConfig,
        pool: PoolId,
        at: SimTime,
        required_ratio: f64,
    ) -> usize {
        let id = self.requests.len();
        self.requests.push(ActiveRequest {
            request: SpotRequest::submit(config, at),
            pool,
            cancelled: false,
            required_ratio,
        });
        id
    }

    pub(crate) fn request(&self, id: usize) -> Option<&SpotRequest> {
        self.requests.get(id).map(|a| &a.request)
    }

    pub(crate) fn len(&self) -> usize {
        self.requests.len()
    }

    /// Cancels a request: it transitions to `Terminal` (if not already) and
    /// will not be resubmitted even if persistent.
    pub(crate) fn cancel(&mut self, id: usize, at: SimTime) -> bool {
        let Some(active) = self.requests.get_mut(id) else {
            return false;
        };
        active.cancelled = true;
        if active.request.state() != RequestState::Terminal {
            active
                .request
                .transition(RequestState::Terminal, at)
                .expect("every non-terminal state may terminate");
        }
        true
    }

    /// Advances every live request by one tick. `now` is the tick start and
    /// `dt` the tick length; event timestamps fall inside `[now, now + dt)`.
    pub(crate) fn step(&mut self, pools: &mut [Pool], now: SimTime, dt: SimDuration) {
        for active in &mut self.requests {
            if active.cancelled {
                continue;
            }
            let pool = &mut pools[active.pool.0 as usize];
            let count = active.request.config().count;
            match active.request.state() {
                RequestState::PendingEvaluation | RequestState::Holding => {
                    let ratio = pool.fulfillment_ratio(count);
                    if ratio >= active.required_ratio {
                        let latency = pool
                            .sample_fulfillment_latency(ratio)
                            .min(dt.as_secs().saturating_sub(1) as f64);
                        let at = now + SimDuration::from_secs(latency.round() as u64);
                        active
                            .request
                            .transition(RequestState::Fulfilled, at)
                            .expect("pending/holding -> fulfilled is legal");
                    } else if active.request.state() == RequestState::PendingEvaluation {
                        let at = now + SimDuration::from_secs(1);
                        active
                            .request
                            .transition(RequestState::Holding, at)
                            .expect("pending -> holding is legal");
                    }
                }
                RequestState::Fulfilled => {
                    // Newest-first reclaim: freshly placed instances face a
                    // multiple of the pool hazard that decays over the
                    // first hours (this is what clusters the paper's
                    // Figure 11b interruptions early in the run).
                    let age_h = active
                        .request
                        .history()
                        .iter()
                        .rev()
                        .find(|e| e.state == RequestState::Fulfilled)
                        .map(|e| now.checked_since(e.at).map_or(0.0, |d| d.as_hours_f64()))
                        .unwrap_or(0.0);
                    let age_mult = 1.0 + 3.0 * (-age_h / 4.0).exp();
                    let dt_h = dt.as_secs() as f64 / 3600.0;
                    let q = 1.0 - (-pool.hazard_per_hour() * age_mult * dt_h).exp();
                    if pool.draw() < q {
                        let offset = (pool.draw() * dt.as_secs() as f64) as u64;
                        let at = now + SimDuration::from_secs(offset.max(1));
                        active
                            .request
                            .transition(RequestState::Terminal, at)
                            .expect("fulfilled -> terminal is legal");
                        if active.request.config().persistent {
                            active.request.resubmit(at + SimDuration::from_secs(2));
                        }
                    }
                }
                RequestState::Terminal => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use spotlake_types::{AzId, Catalog, SpotPrice};

    fn setup(type_name: &str) -> (Catalog, Vec<Pool>) {
        let catalog = Catalog::aws_2022();
        let config = SimConfig::default();
        let ty = catalog.instance_type_id(type_name).unwrap();
        let az = catalog.az_id("us-east-1a").unwrap();
        let pools = vec![Pool::new(&catalog, &config, ty, az)];
        (catalog, pools)
    }

    fn request_config(catalog: &Catalog, type_name: &str, persistent: bool) -> SpotRequestConfig {
        SpotRequestConfig {
            instance_type: catalog.instance_type_id(type_name).unwrap(),
            az: AzId(0),
            bid: SpotPrice::from_usd(1.0).unwrap(),
            count: 1,
            persistent,
        }
    }

    #[test]
    fn healthy_pool_fulfills_quickly() {
        let (catalog, mut pools) = setup("m5.large");
        let mut lc = Lifecycle::default();
        let id = lc.submit(
            request_config(&catalog, "m5.large", false),
            PoolId(0),
            SimTime::EPOCH,
            1.0,
        );
        pools[0].step(SimDuration::from_mins(10), 1.0);
        lc.step(&mut pools, SimTime::EPOCH, SimDuration::from_mins(10));
        let req = lc.request(id).unwrap();
        assert_eq!(req.state(), RequestState::Fulfilled);
        let latency = req.fulfillment_latency().unwrap();
        assert!(latency < SimDuration::from_mins(10));
    }

    #[test]
    fn crushed_pool_holds() {
        // A scarce GPU pool: crushed margin leaves headroom below one
        // instance, so the request must hold.
        let (catalog, mut pools) = setup("g4dn.xlarge");
        let mut lc = Lifecycle::default();
        let id = lc.submit(
            request_config(&catalog, "g4dn.xlarge", false),
            PoolId(0),
            SimTime::EPOCH,
            1.0,
        );
        pools[0].step(SimDuration::from_mins(10), 0.00001);
        lc.step(&mut pools, SimTime::EPOCH, SimDuration::from_mins(10));
        assert_eq!(lc.request(id).unwrap().state(), RequestState::Holding);
        // Capacity recovers -> fulfilled on a later tick.
        pools[0].step(SimDuration::from_mins(10), 1.0);
        lc.step(
            &mut pools,
            SimTime::EPOCH + SimDuration::from_mins(10),
            SimDuration::from_mins(10),
        );
        assert_eq!(lc.request(id).unwrap().state(), RequestState::Fulfilled);
    }

    #[test]
    fn stressed_pool_interrupts_and_persistent_resubmits() {
        let (catalog, mut pools) = setup("m5.large");
        let mut lc = Lifecycle::default();
        let id = lc.submit(
            request_config(&catalog, "m5.large", true),
            PoolId(0),
            SimTime::EPOCH,
            1.0,
        );
        pools[0].step(SimDuration::from_mins(10), 1.0);
        lc.step(&mut pools, SimTime::EPOCH, SimDuration::from_mins(10));
        assert_eq!(lc.request(id).unwrap().state(), RequestState::Fulfilled);

        // Crush the pool; with the hazard near its peak an interruption
        // should land within a simulated day.
        let mut t = SimTime::EPOCH + SimDuration::from_mins(10);
        for _ in 0..144 {
            pools[0].step(SimDuration::from_mins(10), 0.00001);
            lc.step(&mut pools, t, SimDuration::from_mins(10));
            t += SimDuration::from_mins(10);
        }
        let req = lc.request(id).unwrap();
        assert!(
            req.was_interrupted(),
            "no interruption in 24h of full stress"
        );
        // Persistent: after the interruption the request re-entered the
        // lifecycle rather than staying terminal.
        assert_ne!(req.state(), RequestState::Terminal);
    }

    #[test]
    fn cancel_terminates_and_sticks() {
        let (catalog, mut pools) = setup("m5.large");
        let mut lc = Lifecycle::default();
        let id = lc.submit(
            request_config(&catalog, "m5.large", true),
            PoolId(0),
            SimTime::EPOCH,
            1.0,
        );
        assert!(lc.cancel(id, SimTime::from_secs(5)));
        assert_eq!(lc.request(id).unwrap().state(), RequestState::Terminal);
        pools[0].step(SimDuration::from_mins(10), 1.0);
        lc.step(&mut pools, SimTime::EPOCH, SimDuration::from_mins(10));
        assert_eq!(
            lc.request(id).unwrap().state(),
            RequestState::Terminal,
            "cancelled request must not resubmit"
        );
        assert!(!lc.cancel(999, SimTime::EPOCH));
    }

    #[test]
    fn outcome_classification() {
        let (catalog, _) = setup("m5.large");
        let mut req =
            SpotRequest::submit(request_config(&catalog, "m5.large", false), SimTime::EPOCH);
        assert_eq!(RequestOutcome::of(&req), RequestOutcome::NoFulfill);
        req.transition(RequestState::Fulfilled, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(RequestOutcome::of(&req), RequestOutcome::NoInterrupt);
        req.transition(RequestState::Terminal, SimTime::from_secs(20))
            .unwrap();
        assert_eq!(RequestOutcome::of(&req), RequestOutcome::Interrupted);
        assert_eq!(RequestOutcome::Interrupted.to_string(), "Interrupted");
    }
}
