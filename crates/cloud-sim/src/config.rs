//! Simulation configuration.

use spotlake_types::{SimDuration, COLLECTION_TICK};

/// Tunable parameters of the simulated cloud.
///
/// The defaults are the calibration used throughout the experiment harness;
/// they reproduce the shapes of the paper's Tables 2–4 and Figures 3–11.
/// Every stochastic process is keyed off [`SimConfig::seed`], so two clouds
/// built with the same catalog and configuration evolve identically.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Master seed for all stochastic processes.
    pub seed: u64,
    /// Simulation step. Defaults to the paper's ten-minute collection tick;
    /// long-horizon sweeps may use a coarser tick.
    pub tick: SimDuration,
    /// Day index at which a global demand shock begins (the paper observed
    /// "a sudden decrease ... around June 2, 2022", i.e. day 152 of the
    /// measurement). `None` disables the shock.
    pub shock_day: Option<u64>,
    /// Length of the demand shock, in days.
    pub shock_duration: SimDuration,
    /// Multiplier applied to every pool's free margin during the shock
    /// (lower = tighter capacity).
    pub shock_margin_factor: f64,
    /// Global scale applied to pool capacities. 1.0 is the calibrated
    /// default; tests can lower it to make scarcity effects stronger.
    pub capacity_scale: f64,
    /// Length of the advisor's trailing observation window (the advisor
    /// reports "the rate at which spot instances have been interrupted in
    /// the preceding month").
    pub advisor_window: SimDuration,
    /// How often the advisor re-publishes its statistics. The paper's
    /// Figure 10 shows the interruption-free score updating the least
    /// frequently of the three datasets.
    pub advisor_refresh: SimDuration,
    /// How often the spot price process re-evaluates (price changes are
    /// recorded only when the smoothed price actually moves).
    pub price_refresh: SimDuration,
}

impl SimConfig {
    /// Configuration with everything at its calibrated default but a
    /// caller-chosen seed.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            // The paper's artifact was archived on Zenodo in September 2022.
            seed: 20_220_901,
            tick: COLLECTION_TICK,
            shock_day: Some(152),
            shock_duration: SimDuration::from_days(2),
            shock_margin_factor: 0.45,
            capacity_scale: 1.0,
            advisor_window: SimDuration::from_days(30),
            advisor_refresh: SimDuration::from_days(7),
            price_refresh: SimDuration::from_hours(6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tick_is_collection_tick() {
        assert_eq!(SimConfig::default().tick, COLLECTION_TICK);
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let a = SimConfig::with_seed(7);
        let b = SimConfig::default();
        assert_eq!(a.seed, 7);
        assert_eq!(a.tick, b.tick);
        assert_eq!(a.shock_day, b.shock_day);
    }
}
