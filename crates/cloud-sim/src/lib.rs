//! A simulated multi-region public cloud with a spot market.
//!
//! SpotLake (the paper) collects spot datasets from the *live* AWS cloud.
//! This crate is the reproduction's stand-in for that cloud: a deterministic,
//! seedable simulator that maintains one capacity pool per supported
//! (instance type × availability zone) pair and derives from the pools'
//! state everything the real cloud publishes:
//!
//! * the **ground-truth placement score** (single-type, composite, and
//!   capacity-dependent — Sections 2.3 and 5.2 of the paper),
//! * the **spot instance advisor** statistics (interruption-frequency
//!   bucket and savings over on-demand — Section 2.2),
//! * the **spot price** under the post-2017 smoothed pricing policy
//!   (Section 2.1), and
//! * the full **spot request lifecycle** of Table 1, with
//!   capacity-driven fulfillment latency and interruption hazard
//!   (Section 5.4's real-world experiments run against this).
//!
//! The simulator is calibrated so the *shapes* the paper reports hold: the
//! placement score sits at 3.0 for the vast majority of pool-ticks
//! (Table 2), accelerated-computing pools are scarce (Figures 3, 4, 7),
//! larger sizes are scarcer (Figure 5), the advisor is a damped, lagged,
//! biased view of true interruption risk (so it decorrelates from the
//! placement score, Figures 8 and 9), and the smoothed price decorrelates
//! from both (Figure 8).
//!
//! # Example
//!
//! ```
//! use spotlake_cloud_sim::{SimCloud, SimConfig};
//! use spotlake_types::Catalog;
//!
//! let catalog = Catalog::aws_2022();
//! let mut cloud = SimCloud::new(catalog, SimConfig::default());
//! cloud.step(); // advance one collection tick
//! let ty = cloud.catalog().instance_type_id("m5.large").unwrap();
//! let az = cloud.catalog().az_id("us-east-1a").unwrap();
//! let score = cloud.placement_score(ty, az, 1).unwrap();
//! assert!((1..=3).contains(&score.value()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advisor;
mod cloud;
mod config;
mod lifecycle;
mod pool;
mod price;

pub use advisor::AdvisorEntry;
pub use cloud::{RequestId, SimCloud};
pub use config::SimConfig;
pub use lifecycle::RequestOutcome;
pub use pool::{Pool, PoolId, PoolParams, PoolState};
