//! The simulated cloud: pools + datasets + request lifecycle under one
//! clock.

use crate::advisor::{AdvisorBoard, AdvisorEntry};
use crate::config::SimConfig;
use crate::lifecycle::Lifecycle;
use crate::pool::{Pool, PoolId};
use crate::price::PriceBook;
use spotlake_types::{
    AzId, Catalog, InstanceTypeId, InterruptionBucket, PlacementScore, RegionId, Savings,
    SimDuration, SimTime, SpotPrice, SpotRequest, SpotRequestConfig, TypesError,
};
use std::collections::BTreeMap;

/// Handle to a submitted spot request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(pub u64);

/// The simulated multi-region cloud.
///
/// One `SimCloud` owns a [`Catalog`], one capacity [`Pool`] per supported
/// (instance type × availability zone) pair, the advisor board, the price
/// book, and the request registry. [`SimCloud::step`] advances everything by
/// one tick.
#[derive(Debug)]
pub struct SimCloud {
    catalog: Catalog,
    config: SimConfig,
    now: SimTime,
    pools: Vec<Pool>,
    pool_index: BTreeMap<(InstanceTypeId, AzId), PoolId>,
    /// Pools grouped per (type, region), for advisor aggregation.
    region_groups: BTreeMap<(InstanceTypeId, RegionId), Vec<PoolId>>,
    advisor: AdvisorBoard,
    prices: PriceBook,
    lifecycle: Lifecycle,
    last_price_refresh: SimTime,
    ticks: u64,
}

impl SimCloud {
    /// Builds the cloud: one pool per supported pair, initial prices
    /// recorded, and an initial advisor table published.
    pub fn new(catalog: Catalog, config: SimConfig) -> SimCloud {
        let pairs = catalog.supported_pools();
        let mut pools = Vec::with_capacity(pairs.len());
        let mut pool_index = BTreeMap::new();
        let mut region_groups: BTreeMap<(InstanceTypeId, RegionId), Vec<PoolId>> = BTreeMap::new();
        for (ty, az) in pairs {
            let id = PoolId(pools.len() as u32);
            pools.push(Pool::new(&catalog, &config, ty, az));
            pool_index.insert((ty, az), id);
            let region = catalog.az(az).region();
            region_groups.entry((ty, region)).or_default().push(id);
        }

        let window_days = (config.advisor_window.as_secs() / 86_400).max(1) as usize;
        let advisor = AdvisorBoard::new(pools.len(), window_days);

        let mut prices = PriceBook::new(pools.len());
        for (i, pool) in pools.iter().enumerate() {
            prices.record(PoolId(i as u32), SimTime::EPOCH, pool.state().price);
        }

        let mut cloud = SimCloud {
            catalog,
            config,
            now: SimTime::EPOCH,
            pools,
            pool_index,
            region_groups,
            advisor,
            prices,
            lifecycle: Lifecycle::default(),
            last_price_refresh: SimTime::EPOCH,
            ticks: 0,
        };
        cloud.publish_advisor();
        cloud
    }

    /// The catalog this cloud serves.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of ticks stepped since construction. Fault injection and
    /// retry backoff are denominated in ticks, so clients read this to key
    /// deterministic per-tick decisions.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Number of capacity pools (supported type × AZ pairs).
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// The pool handle for `(ty, az)`, if that pair is supported.
    pub fn pool_id(&self, ty: InstanceTypeId, az: AzId) -> Option<PoolId> {
        self.pool_index.get(&(ty, az)).copied()
    }

    /// The pool with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pool(&self, id: PoolId) -> &Pool {
        &self.pools[id.0 as usize]
    }

    /// Iterates over all pool ids.
    pub fn pool_ids(&self) -> impl Iterator<Item = PoolId> + '_ {
        (0..self.pools.len() as u32).map(PoolId)
    }

    /// The global demand-shock factor in effect at `t`.
    pub fn shock_factor_at(&self, t: SimTime) -> f64 {
        let Some(day) = self.config.shock_day else {
            return 1.0;
        };
        let start = SimTime::EPOCH + SimDuration::from_days(day);
        let end = start + self.config.shock_duration;
        if t >= start && t < end {
            self.config.shock_margin_factor
        } else {
            1.0
        }
    }

    /// Advances the simulation by one tick: pool margins, the smoothed
    /// price process, the advisor's daily roll and periodic republish, and
    /// every live spot request.
    pub fn step(&mut self) {
        let dt = self.config.tick;
        let tick_start = self.now;
        self.now += dt;
        let shock = self.shock_factor_at(self.now);

        for pool in &mut self.pools {
            pool.step(dt, shock);
        }

        // Smoothed price process, on its own slower cadence.
        if self.now.since(self.last_price_refresh) >= self.config.price_refresh {
            self.last_price_refresh = self.now;
            for i in 0..self.pools.len() {
                if let Some(price) = self.pools[i].step_price() {
                    self.prices.record(PoolId(i as u32), self.now, price);
                }
            }
        }

        // Advisor: roll daily stress buckets, republish on its refresh
        // cadence (the least frequently updated dataset — Figure 10).
        if self.now.since(self.advisor.last_day_roll()) >= SimDuration::from_days(1) {
            let at = self.now;
            self.advisor.roll_day(&mut self.pools, at);
        }
        if self.now.since(self.advisor.last_publish()) >= self.config.advisor_refresh {
            self.publish_advisor();
        }

        self.lifecycle.step(&mut self.pools, tick_start, dt);

        self.ticks += 1;
        if self.ticks.is_multiple_of(1024) {
            self.prices.prune(self.now);
        }
    }

    /// Runs `n` ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs whole days of simulation (`days × 86400 / tick` ticks).
    pub fn run_days(&mut self, days: u64) {
        let ticks = SimDuration::from_days(days).div_duration(self.config.tick);
        self.run_ticks(ticks);
    }

    fn publish_advisor(&mut self) {
        let at = self.now;
        let keys: Vec<(InstanceTypeId, RegionId)> = self.region_groups.keys().copied().collect();
        for key in keys {
            let group = &self.region_groups[&key];
            let mut ratio_sum = 0.0;
            let mut savings_sum = 0.0;
            for &pid in group {
                let i = pid.0 as usize;
                ratio_sum += self.advisor.reported_ratio(i, &self.pools[i]);
                savings_sum += self.pools[i].state().savings;
            }
            let n = group.len() as f64;
            let bucket = InterruptionBucket::from_ratio(ratio_sum / n);
            let savings = Savings::from_percent(((savings_sum / n) * 100.0).round() as u8)
                .unwrap_or_else(|_| Savings::from_percent(99).expect("99 is valid"));
            self.advisor.publish(
                key,
                AdvisorEntry {
                    bucket,
                    savings,
                    published_at: at,
                },
            );
        }
        self.advisor.set_last_publish(at);
    }

    /// Ground-truth single-type placement score in one availability zone for
    /// a request of `count` instances. `None` if the pair is unsupported.
    pub fn placement_score(
        &self,
        ty: InstanceTypeId,
        az: AzId,
        count: u32,
    ) -> Option<PlacementScore> {
        let pool = self.pool(self.pool_id(ty, az)?);
        Some(PlacementScore::new(pool.score_for(count)).expect("pool scores are 1..=3"))
    }

    /// Ground-truth single-type placement score at region granularity: the
    /// best availability zone's score (the chance of success *somewhere* in
    /// the region). `None` if the region does not offer the type.
    pub fn placement_score_region(
        &self,
        ty: InstanceTypeId,
        region: RegionId,
        count: u32,
    ) -> Option<PlacementScore> {
        let group = self.region_groups.get(&(ty, region))?;
        let best = group
            .iter()
            .map(|&pid| self.pool(pid).score_for(count))
            .max()?;
        Some(PlacementScore::new(best).expect("pool scores are 1..=3"))
    }

    /// Composite placement score for several instance types in one
    /// availability zone (Section 5.2, Figure 6). The sum of the individual
    /// scores is the floor; types with abundant headroom add a flexibility
    /// bonus, and the result is capped at the API maximum of 10.
    ///
    /// Returns `None` when none of the types is offered in `az`.
    pub fn composite_score(
        &self,
        types: &[InstanceTypeId],
        az: AzId,
        count: u32,
    ) -> Option<PlacementScore> {
        let mut sum = 0u32;
        let mut flex = 0u32;
        let mut margin_mix = 0.0f64;
        let mut any = false;
        let mut matched = 0u32;
        for &ty in types {
            let Some(pid) = self.pool_id(ty, az) else {
                continue;
            };
            any = true;
            matched += 1;
            let pool = self.pool(pid);
            sum += u32::from(pool.score_for(count));
            if pool.fulfillment_ratio(count) >= 12.0 {
                flex += 1;
            }
            margin_mix += pool.state().effective_margin;
        }
        if !any {
            return None;
        }
        // The flexibility bonus only exists for multi-type queries: a
        // single-type query never exceeds 3 (Section 5.2).
        let flex = if matched >= 2 { flex.min(2) } else { 0 };
        // Rare sub-additive exceptions (the paper observed two such cases).
        let deficit = u32::from(margin_mix.fract() < 0.006 && sum > 1);
        let value = (sum + flex).saturating_sub(deficit).clamp(1, 10);
        Some(PlacementScore::new(value as u8).expect("clamped to 1..=10"))
    }

    /// Composite placement score for several instance types at region
    /// granularity: the per-type regional scores summed (floor), plus the
    /// flexibility bonus, capped at 10.
    ///
    /// Returns `None` when none of the types is offered in `region`.
    pub fn composite_score_region(
        &self,
        types: &[InstanceTypeId],
        region: RegionId,
        count: u32,
    ) -> Option<PlacementScore> {
        let mut sum = 0u32;
        let mut flex = 0u32;
        let mut margin_mix = 0.0f64;
        let mut any = false;
        let mut matched = 0u32;
        for &ty in types {
            let Some(group) = self.region_groups.get(&(ty, region)) else {
                continue;
            };
            any = true;
            matched += 1;
            let best = group
                .iter()
                .map(|&pid| self.pool(pid))
                .max_by(|a, b| {
                    a.fulfillment_ratio(count)
                        .total_cmp(&b.fulfillment_ratio(count))
                })
                .expect("region groups are non-empty");
            sum += u32::from(best.score_for(count));
            if best.fulfillment_ratio(count) >= 12.0 {
                flex += 1;
            }
            margin_mix += best.state().effective_margin;
        }
        if !any {
            return None;
        }
        let flex = if matched >= 2 { flex.min(2) } else { 0 };
        let deficit = u32::from(margin_mix.fract() < 0.006 && sum > 1);
        let value = (sum + flex).saturating_sub(deficit).clamp(1, 10);
        Some(PlacementScore::new(value as u8).expect("clamped to 1..=10"))
    }

    /// Latest advisor row for `(ty, region)`, if published.
    pub fn advisor_entry(&self, ty: InstanceTypeId, region: RegionId) -> Option<AdvisorEntry> {
        self.advisor.entry(ty, region)
    }

    /// Snapshot of the full advisor table.
    pub fn advisor_table(&self) -> Vec<((InstanceTypeId, RegionId), AdvisorEntry)> {
        self.advisor.entries().map(|(k, v)| (*k, *v)).collect()
    }

    /// Current spot price in a pool. `None` if the pair is unsupported.
    pub fn spot_price(&self, ty: InstanceTypeId, az: AzId) -> Option<SpotPrice> {
        Some(self.pool(self.pool_id(ty, az)?).state().price)
    }

    /// Spot price-change history for a pool over `[from, to]`, including the
    /// change in effect at `from`, subject to the 90-day retention.
    pub fn price_history(
        &self,
        ty: InstanceTypeId,
        az: AzId,
        from: SimTime,
        to: SimTime,
    ) -> Vec<(SimTime, SpotPrice)> {
        match self.pool_id(ty, az) {
            Some(pid) => self.prices.history(pid, from, to),
            None => Vec::new(),
        }
    }

    /// Submits a spot request.
    ///
    /// Submission consumes draws from the target pool's RNG stream (the
    /// fragmentation lottery), so two runs are bit-identical only when they
    /// submit the same requests at the same ticks — determinism is
    /// conditional on the full request schedule.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::UnknownEntity`] when the requested (type, AZ)
    /// pair is not offered.
    pub fn submit_request(&mut self, config: SpotRequestConfig) -> Result<RequestId, TypesError> {
        let pool = self
            .pool_id(config.instance_type, config.az)
            .ok_or_else(|| TypesError::UnknownEntity {
                kind: "capacity pool",
                name: format!(
                    "{}@{}",
                    self.catalog.ty(config.instance_type),
                    self.catalog.az(config.az)
                ),
            })?;
        // Fragmentation draw: most requests place at the nominal ratio,
        // a minority needs extra headroom (never beyond the score-3 band,
        // so high-score pools always place eventually).
        let (d1, d2, ratio) = {
            let p = &mut self.pools[pool.0 as usize];
            (p.draw(), p.draw(), p.fulfillment_ratio(config.count))
        };
        let required_ratio = if d1 < 0.40 && ratio < 1.6 {
            // Contended pool: the request joins a deep queue and needs the
            // pool to grow well past its current headroom (never below the
            // physical floor of 1.0).
            (ratio.max(0.2) * (1.5 + d2)).max(1.0)
        } else if d1 < 0.45 {
            1.0 + 0.5 * d2
        } else {
            1.0
        };
        let id = self
            .lifecycle
            .submit(config, pool, self.now, required_ratio);
        Ok(RequestId(id as u64))
    }

    /// A submitted request's current state and history.
    pub fn request(&self, id: RequestId) -> Option<&SpotRequest> {
        self.lifecycle.request(id.0 as usize)
    }

    /// Cancels a request (it terminates and never resubmits). Returns
    /// `false` for unknown ids.
    pub fn cancel_request(&mut self, id: RequestId) -> bool {
        self.lifecycle.cancel(id.0 as usize, self.now)
    }

    /// Total number of requests ever submitted.
    pub fn request_count(&self) -> usize {
        self.lifecycle.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_types::CatalogBuilder;

    fn small_cloud() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 2)
            .region("eu-test-1", 3)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06)
            .instance_type("g4dn.xlarge", 0.526);
        SimCloud::new(b.build().unwrap(), SimConfig::default())
    }

    #[test]
    fn pool_per_supported_pair() {
        let cloud = small_cloud();
        // Full support in the builder default: 3 types × 5 AZs.
        assert_eq!(cloud.pool_count(), 15);
    }

    #[test]
    fn step_advances_clock() {
        let mut cloud = small_cloud();
        assert_eq!(cloud.now(), SimTime::EPOCH);
        cloud.step();
        assert_eq!(cloud.now().as_secs(), 600);
        cloud.run_days(1);
        assert_eq!(cloud.now().as_secs(), 600 + 86_400);
    }

    #[test]
    fn scores_are_valid_and_region_score_dominates_az_scores() {
        let mut cloud = small_cloud();
        cloud.run_ticks(10);
        let catalog = cloud.catalog().clone();
        let ty = catalog.instance_type_id("m5.large").unwrap();
        let region = catalog.region_id("eu-test-1").unwrap();
        let region_score = cloud.placement_score_region(ty, region, 1).unwrap();
        for &az in catalog.azs_of_region(region) {
            let s = cloud.placement_score(ty, az, 1).unwrap();
            assert!(s <= region_score);
        }
    }

    #[test]
    fn composite_score_at_least_sum_floor_mostly() {
        let mut cloud = small_cloud();
        cloud.run_ticks(5);
        let catalog = cloud.catalog().clone();
        let types: Vec<InstanceTypeId> = ["m5.large", "p3.2xlarge", "g4dn.xlarge"]
            .iter()
            .map(|n| catalog.instance_type_id(n).unwrap())
            .collect();
        let az = catalog.az_id("us-test-1a").unwrap();
        let composite = cloud.composite_score(&types, az, 1).unwrap();
        let sum: u32 = types
            .iter()
            .map(|&t| u32::from(cloud.placement_score(t, az, 1).unwrap().value()))
            .sum();
        // Allow the rare deliberate sub-additive exception of at most 1.
        assert!(u32::from(composite.value()) + 1 >= sum);
        assert!(composite.value() <= 10);
    }

    #[test]
    fn composite_none_when_nothing_supported() {
        let cloud = small_cloud();
        let az = cloud.catalog().az_id("us-test-1a").unwrap();
        assert!(cloud.composite_score(&[], az, 1).is_none());
    }

    #[test]
    fn advisor_published_at_epoch_and_refreshes() {
        let mut cloud = small_cloud();
        let catalog = cloud.catalog().clone();
        let ty = catalog.instance_type_id("m5.large").unwrap();
        let region = catalog.region_id("us-test-1").unwrap();
        let before = cloud.advisor_entry(ty, region).expect("published at build");
        assert_eq!(before.published_at, SimTime::EPOCH);
        cloud.run_days(8);
        let after = cloud.advisor_entry(ty, region).unwrap();
        assert!(after.published_at > before.published_at);
    }

    #[test]
    fn price_history_starts_with_initial_price() {
        let mut cloud = small_cloud();
        let catalog = cloud.catalog().clone();
        let ty = catalog.instance_type_id("m5.large").unwrap();
        let az = catalog.az_id("us-test-1a").unwrap();
        let h0 = cloud.price_history(ty, az, SimTime::EPOCH, SimTime::EPOCH);
        assert_eq!(h0.len(), 1, "initial price recorded at epoch");
        cloud.run_days(30);
        let h = cloud.price_history(ty, az, SimTime::EPOCH, cloud.now());
        assert!(h.len() > 1, "price should change over a month");
        assert!(h.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by time");
        assert!(
            h.windows(2).all(|w| w[0].1 != w[1].1),
            "only change events are recorded"
        );
    }

    #[test]
    fn request_roundtrip() {
        let mut cloud = small_cloud();
        let catalog = cloud.catalog().clone();
        let config = SpotRequestConfig {
            instance_type: catalog.instance_type_id("m5.large").unwrap(),
            az: catalog.az_id("us-test-1a").unwrap(),
            bid: SpotPrice::from_usd(0.096).unwrap(),
            count: 1,
            persistent: false,
        };
        let id = cloud.submit_request(config).unwrap();
        assert_eq!(cloud.request_count(), 1);
        cloud.run_ticks(3);
        let req = cloud.request(id).unwrap();
        assert!(req.was_fulfilled(), "healthy m5 pool fulfills fast");
        assert!(cloud.cancel_request(id));
        assert!(cloud.request(RequestId(99)).is_none());
    }

    #[test]
    fn submit_rejects_unsupported_pair() {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 1)
            .instance_type("dl1.24xlarge", 13.1)
            .hashed_support(true);
        // dl1 has a 15% region fraction; if the hash drops us-test-1 the
        // pool will not exist... but us-east-1 is forced. Use a type/AZ pair
        // that cannot exist instead: an AZ out of range of support.
        let catalog = b.build().unwrap();
        let ty = catalog.instance_type_id("dl1.24xlarge").unwrap();
        let supported = catalog.supported_pools();
        let mut cloud = SimCloud::new(catalog, SimConfig::default());
        // Find an unsupported AZ if any; otherwise skip (full support).
        let unsupported_az = cloud
            .catalog()
            .az_ids()
            .find(|&az| !supported.contains(&(ty, az)));
        if let Some(az) = unsupported_az {
            let config = SpotRequestConfig {
                instance_type: ty,
                az,
                bid: SpotPrice::from_usd(1.0).unwrap(),
                count: 1,
                persistent: false,
            };
            assert!(cloud.submit_request(config).is_err());
        }
    }

    #[test]
    fn shock_factor_window() {
        let config = SimConfig {
            shock_day: Some(2),
            shock_duration: SimDuration::from_days(1),
            ..SimConfig::default()
        };
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 1).instance_type("m5.large", 0.096);
        let cloud = SimCloud::new(b.build().unwrap(), config);
        assert_eq!(cloud.shock_factor_at(SimTime::EPOCH), 1.0);
        let in_shock = SimTime::EPOCH + SimDuration::from_days(2) + SimDuration::from_hours(1);
        assert!(cloud.shock_factor_at(in_shock) < 1.0);
        let after = SimTime::EPOCH + SimDuration::from_days(3) + SimDuration::from_hours(1);
        assert_eq!(cloud.shock_factor_at(after), 1.0);
    }

    #[test]
    fn deterministic_evolution() {
        let run = || {
            let mut cloud = small_cloud();
            cloud.run_days(3);
            let catalog = cloud.catalog().clone();
            let ty = catalog.instance_type_id("p3.2xlarge").unwrap();
            let az = catalog.az_id("eu-test-1b").unwrap();
            (
                cloud.pool(cloud.pool_id(ty, az).unwrap()).state().margin,
                cloud.spot_price(ty, az).unwrap(),
            )
        };
        assert_eq!(run(), run());
    }
}
