//! Spot price-change history.
//!
//! The real cloud keeps "up to three months of spot price history"
//! (Section 3.1). [`PriceBook`] stores, per pool, only the *change events*
//! (timestamp, new price) — the same representation the
//! `describe-spot-price-history` API exposes — and prunes anything older
//! than the retention window.

use crate::pool::PoolId;
use spotlake_types::{SimDuration, SimTime, SpotPrice};

/// Retention of the price history: three months, as on AWS.
pub(crate) const PRICE_RETENTION: SimDuration = SimDuration::from_days(90);

/// Per-pool price-change history with AWS-like 90-day retention.
#[derive(Debug, Clone, Default)]
pub(crate) struct PriceBook {
    // One Vec of (time, price) change events per pool, oldest first.
    changes: Vec<Vec<(SimTime, SpotPrice)>>,
}

impl PriceBook {
    pub(crate) fn new(pools: usize) -> Self {
        PriceBook {
            changes: vec![Vec::new(); pools],
        }
    }

    /// Records a price change for `pool` at `at`.
    pub(crate) fn record(&mut self, pool: PoolId, at: SimTime, price: SpotPrice) {
        self.changes[pool.0 as usize].push((at, price));
    }

    /// All change events for `pool` in `[from, to]`, oldest first, plus the
    /// last change *before* `from` (so callers know the price in effect at
    /// the start of the window), subject to retention.
    pub(crate) fn history(
        &self,
        pool: PoolId,
        from: SimTime,
        to: SimTime,
    ) -> Vec<(SimTime, SpotPrice)> {
        let all = &self.changes[pool.0 as usize];
        let start = all.partition_point(|(t, _)| *t < from);
        let mut out = Vec::new();
        if start > 0 {
            out.push(all[start - 1]);
        }
        out.extend(all[start..].iter().take_while(|(t, _)| *t <= to).copied());
        out
    }

    /// Drops events older than the retention window relative to `now`,
    /// always keeping the most recent event per pool.
    pub(crate) fn prune(&mut self, now: SimTime) {
        let Some(cutoff) = now.checked_since(SimTime::EPOCH + PRICE_RETENTION) else {
            return;
        };
        let cutoff = SimTime::EPOCH + cutoff;
        for v in &mut self.changes {
            if v.len() <= 1 {
                continue;
            }
            let keep_from = v.partition_point(|(t, _)| *t < cutoff);
            let keep_from = keep_from.min(v.len() - 1);
            v.drain(..keep_from);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn price(usd: f64) -> SpotPrice {
        SpotPrice::from_usd(usd).unwrap()
    }

    #[test]
    fn history_includes_preceding_change() {
        let mut book = PriceBook::new(1);
        let p = PoolId(0);
        book.record(p, SimTime::from_secs(100), price(0.10));
        book.record(p, SimTime::from_secs(200), price(0.11));
        book.record(p, SimTime::from_secs(300), price(0.12));
        let h = book.history(p, SimTime::from_secs(250), SimTime::from_secs(400));
        assert_eq!(h.len(), 2);
        assert_eq!(
            h[0].0,
            SimTime::from_secs(200),
            "price in effect at window start"
        );
        assert_eq!(h[1].0, SimTime::from_secs(300));
    }

    #[test]
    fn history_empty_pool() {
        let book = PriceBook::new(1);
        assert!(book
            .history(PoolId(0), SimTime::EPOCH, SimTime::from_secs(1000))
            .is_empty());
    }

    #[test]
    fn prune_respects_retention_and_keeps_latest() {
        let mut book = PriceBook::new(1);
        let p = PoolId(0);
        book.record(p, SimTime::from_secs(0), price(0.10));
        book.record(p, SimTime::from_secs(10), price(0.11));
        // Far beyond retention.
        let now = SimTime::EPOCH + SimDuration::from_days(365);
        book.prune(now);
        let h = book.history(p, SimTime::EPOCH, now);
        assert_eq!(h.len(), 1, "latest change survives pruning");
        assert_eq!(h[0].1, price(0.11));
    }

    #[test]
    fn prune_noop_before_retention_elapses() {
        let mut book = PriceBook::new(1);
        let p = PoolId(0);
        book.record(p, SimTime::from_secs(0), price(0.10));
        book.prune(SimTime::from_secs(1000));
        assert_eq!(
            book.history(p, SimTime::EPOCH, SimTime::from_secs(2000))
                .len(),
            1
        );
    }
}
