//! The spot instance advisor's statistics engine.
//!
//! The advisor publishes, per (instance type, region), the interruption
//! frequency of "the preceding month" as a five-way bucket plus the savings
//! over on-demand (Section 2.2). It is deliberately modeled as a *damped,
//! lagged, biased* estimator of true interruption risk: it integrates each
//! pool's trailing stress history over a 30-day window, republishes only
//! every [`crate::SimConfig::advisor_refresh`], and adds a per-pool bias.
//! That is what makes the advisor's interruption-free score decorrelate
//! from the instantaneous placement score (paper Figures 8 and 9) while
//! still carrying usable signal for a learned predictor (Table 4).

use crate::pool::Pool;
use spotlake_types::{InstanceTypeId, InterruptionBucket, RegionId, Savings, SimTime};
use std::collections::BTreeMap;

/// One published advisor row: interruption bucket and savings for an
/// (instance type, region) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdvisorEntry {
    /// Interruption frequency over the preceding month.
    pub bucket: InterruptionBucket,
    /// Savings of the current spot price over on-demand.
    pub savings: Savings,
    /// When this row was last (re)published.
    pub published_at: SimTime,
}

/// Trailing per-pool stress windows plus the published advisor table.
#[derive(Debug, Clone)]
pub(crate) struct AdvisorBoard {
    /// Ring buffer of daily stress-hours per pool; stride = `window_days`.
    daily: Vec<f64>,
    window_days: usize,
    cursor: usize,
    published: BTreeMap<(InstanceTypeId, RegionId), AdvisorEntry>,
    last_day_roll: SimTime,
    last_publish: SimTime,
}

impl AdvisorBoard {
    pub(crate) fn new(pools: usize, window_days: usize) -> Self {
        AdvisorBoard {
            daily: vec![0.0; pools * window_days],
            window_days,
            cursor: 0,
            published: BTreeMap::new(),
            last_day_roll: SimTime::EPOCH,
            last_publish: SimTime::EPOCH,
        }
    }

    pub(crate) fn last_publish(&self) -> SimTime {
        self.last_publish
    }

    pub(crate) fn set_last_publish(&mut self, at: SimTime) {
        self.last_publish = at;
    }

    pub(crate) fn last_day_roll(&self) -> SimTime {
        self.last_day_roll
    }

    /// Rolls the daily window: harvests each pool's stress-hours
    /// accumulator into the current day slot and advances the cursor.
    pub(crate) fn roll_day(&mut self, pools: &mut [Pool], at: SimTime) {
        self.cursor = (self.cursor + 1) % self.window_days;
        for (i, pool) in pools.iter_mut().enumerate() {
            self.daily[i * self.window_days + self.cursor] = pool.take_stress_hours();
        }
        self.last_day_roll = at;
    }

    /// Fraction of the trailing window pool `i` spent stressed.
    pub(crate) fn stress_fraction(&self, i: usize) -> f64 {
        let total: f64 = self.daily[i * self.window_days..(i + 1) * self.window_days]
            .iter()
            .sum();
        total / (self.window_days as f64 * 24.0)
    }

    /// The reported (biased, damped) monthly interruption ratio for pool
    /// `i`.
    pub(crate) fn reported_ratio(&self, i: usize, pool: &Pool) -> f64 {
        let f = self.stress_fraction(i);
        (0.05 * f.powf(0.7) + pool.params().advisor_bias).clamp(0.0, 0.33)
    }

    pub(crate) fn publish(&mut self, key: (InstanceTypeId, RegionId), entry: AdvisorEntry) {
        self.published.insert(key, entry);
    }

    pub(crate) fn entry(&self, ty: InstanceTypeId, region: RegionId) -> Option<AdvisorEntry> {
        self.published.get(&(ty, region)).copied()
    }

    /// Iterates over all published rows.
    pub(crate) fn entries(
        &self,
    ) -> impl Iterator<Item = (&(InstanceTypeId, RegionId), &AdvisorEntry)> {
        self.published.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use spotlake_types::{Catalog, SimDuration};

    #[test]
    fn stress_fraction_integrates_daily_rolls() {
        let catalog = Catalog::aws_2022();
        let config = SimConfig::default();
        let ty = catalog.instance_type_id("m5.large").unwrap();
        let az = catalog.az_id("us-east-1a").unwrap();
        let mut pools = vec![Pool::new(&catalog, &config, ty, az)];
        let mut board = AdvisorBoard::new(1, 30);

        // A fully stressed day: 24h under a crushing shock.
        for _ in 0..24 {
            pools[0].step(SimDuration::from_hours(1), 0.0001);
        }
        board.roll_day(&mut pools, SimTime::EPOCH + SimDuration::from_days(1));
        let f = board.stress_fraction(0);
        // One fully stressed day out of a 30-day window.
        assert!((f - 1.0 / 30.0).abs() < 0.005, "stress fraction {f}");
        let r = board.reported_ratio(0, &pools[0]);
        assert!(r > 0.0 && r <= 0.33);
    }

    #[test]
    fn window_rolls_over_and_forgets() {
        let catalog = Catalog::aws_2022();
        let config = SimConfig::default();
        let ty = catalog.instance_type_id("m5.large").unwrap();
        let az = catalog.az_id("us-east-1a").unwrap();
        let mut pools = vec![Pool::new(&catalog, &config, ty, az)];
        let mut board = AdvisorBoard::new(1, 3);

        for _ in 0..12 {
            pools[0].step(SimDuration::from_hours(1), 0.0001);
        }
        board.roll_day(&mut pools, SimTime::EPOCH + SimDuration::from_days(1));
        assert!(board.stress_fraction(0) > 0.0);
        // Three calm days push the stressed day out of the window.
        for day in 2..=4 {
            pools[0].step(SimDuration::from_hours(1), 1.0);
            pools[0].take_stress_hours();
            board.roll_day(&mut pools, SimTime::EPOCH + SimDuration::from_days(day));
        }
        assert_eq!(board.stress_fraction(0), 0.0);
    }

    #[test]
    fn publish_and_lookup() {
        let mut board = AdvisorBoard::new(0, 30);
        let key = (InstanceTypeId(1), RegionId(2));
        let entry = AdvisorEntry {
            bucket: InterruptionBucket::Lt5,
            savings: Savings::from_percent(70).unwrap(),
            published_at: SimTime::EPOCH,
        };
        board.publish(key, entry);
        assert_eq!(board.entry(InstanceTypeId(1), RegionId(2)), Some(entry));
        assert_eq!(board.entry(InstanceTypeId(9), RegionId(2)), None);
        assert_eq!(board.entries().count(), 1);
    }
}
