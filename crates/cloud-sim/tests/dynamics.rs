//! Behavioral tests for the simulator's dynamic mechanisms: capacity
//! outages, score flicker, stress memory, and the advisor-coupled hazard.

use spotlake_cloud_sim::{Pool, SimCloud, SimConfig};
use spotlake_types::{Catalog, CatalogBuilder, SimDuration};

fn full_catalog_pool(type_name: &str, az: &str, seed: u64) -> Pool {
    let catalog = Catalog::aws_2022();
    let ty = catalog.instance_type_id(type_name).expect("cataloged");
    let az = catalog.az_id(az).expect("cataloged");
    Pool::new(&catalog, &SimConfig::with_seed(seed), ty, az)
}

/// Outages happen on scarce pools, last at least their minimum dwell, and
/// pin the effective margin to (far) below one instance.
#[test]
fn outages_pin_scarce_pools() {
    // Sweep several scarce GPU pools; at least one must fall into an
    // outage within a simulated month, and during outages the pool must be
    // unfulfillable.
    let catalog = Catalog::aws_2022();
    let mut saw_outage = false;
    for az in ["us-east-1a", "us-east-1b", "eu-west-1a", "ap-south-1a"] {
        if catalog.az_id(az).is_none() {
            continue;
        }
        let mut pool = full_catalog_pool("p3.2xlarge", az, 9);
        for _ in 0..(30 * 144) {
            pool.step(SimDuration::from_mins(10), 1.0);
            if pool.state().outage_hours_left > 0.0 {
                saw_outage = true;
                assert!(
                    pool.fulfillment_ratio(1) < 1.0,
                    "an outage pool must not fulfill (ratio {})",
                    pool.fulfillment_ratio(1)
                );
                assert!(pool.is_stressed(), "outage implies stress");
            }
        }
    }
    assert!(saw_outage, "no scarce pool saw an outage in a month");
}

/// Comfortable general-purpose pools essentially never see outages.
#[test]
fn healthy_pools_avoid_outages() {
    let mut pool = full_catalog_pool("m5.large", "us-east-1a", 9);
    let mut outage_ticks = 0u32;
    for _ in 0..(30 * 144) {
        pool.step(SimDuration::from_mins(10), 1.0);
        if pool.state().outage_hours_left > 0.0 {
            outage_ticks += 1;
        }
    }
    assert_eq!(outage_ticks, 0, "an m5 pool fell into an outage");
}

/// The per-tick flicker moves the effective margin around the slow margin
/// but stays centered on it.
#[test]
fn flicker_is_centered_on_slow_margin() {
    let mut pool = full_catalog_pool("m5.large", "us-east-1a", 4);
    let mut ratio_sum = 0.0;
    let n = 5000;
    for _ in 0..n {
        pool.step(SimDuration::from_mins(10), 1.0);
        let s = pool.state();
        ratio_sum += s.effective_margin / s.slow_margin;
    }
    let mean_ratio = ratio_sum / f64::from(n);
    // E[exp(0.18 Z)] = exp(0.0162) ≈ 1.016.
    assert!(
        (0.95..1.10).contains(&mean_ratio),
        "flicker mean ratio {mean_ratio} is biased"
    );
}

/// Stress memory: hazard stays elevated for hours after a crunch passes.
#[test]
fn stress_memory_decays_slowly() {
    let mut pool = full_catalog_pool("g4dn.xlarge", "us-east-1a", 4);
    pool.step(SimDuration::from_mins(10), 1.0);
    let calm = pool.hazard_per_hour();
    // Crush for two hours.
    for _ in 0..12 {
        pool.step(SimDuration::from_mins(10), 0.0001);
    }
    let crushed = pool.hazard_per_hour();
    assert!(crushed > calm * 5.0);
    // One hour after recovery the memory still holds most of the hazard.
    for _ in 0..6 {
        pool.step(SimDuration::from_mins(10), 1.0);
    }
    let soon_after = pool.hazard_per_hour();
    assert!(
        soon_after > calm * 2.0,
        "hazard forgot the crunch too fast: calm {calm:.5}, 1h after {soon_after:.5}"
    );
    // A day later it is essentially calm again.
    for _ in 0..144 {
        pool.step(SimDuration::from_mins(10), 1.0);
    }
    let next_day = pool.hazard_per_hour();
    assert!(
        next_day < crushed / 5.0,
        "hazard never recovered: crushed {crushed:.4}, next day {next_day:.4}"
    );
}

/// The advisor-coupled hazard: among equal-margin pools, the ones the
/// advisor reports as interruption-heavy face a strictly larger multiplier.
#[test]
fn advisor_bias_multiplies_hazard() {
    let catalog = Catalog::aws_2022();
    let config = SimConfig::default();
    let mut low_bias: Option<f64> = None;
    let mut high_bias: Option<f64> = None;
    for ty in catalog.type_ids() {
        for az in catalog.az_ids() {
            if !catalog.supports(ty, az) {
                continue;
            }
            let pool = Pool::new(&catalog, &config, ty, az);
            let p = pool.params();
            if p.advisor_bias < 0.02 {
                low_bias.get_or_insert(p.hazard_mult);
            }
            if p.advisor_bias > 0.25 {
                high_bias.get_or_insert(p.hazard_mult);
            }
            if let (Some(lo), Some(hi)) = (low_bias, high_bias) {
                assert!(hi > lo * 2.0, "bias coupling too weak: {lo} vs {hi}");
                return;
            }
        }
    }
    panic!("catalog did not produce both low- and high-bias pools");
}

/// Determinism across the whole cloud: same seed, same trajectory; a
/// different seed diverges.
#[test]
fn cloud_trajectories_are_seed_determined() {
    let build = |seed| {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 2)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        let mut cloud = SimCloud::new(b.build().unwrap(), SimConfig::with_seed(seed));
        cloud.run_days(5);
        let catalog = cloud.catalog().clone();
        let ty = catalog.instance_type_id("p3.2xlarge").unwrap();
        let az = catalog.az_id("us-test-1a").unwrap();
        (
            cloud.pool(cloud.pool_id(ty, az).unwrap()).state().margin,
            cloud.spot_price(ty, az).unwrap(),
        )
    };
    assert_eq!(build(1), build(1));
    assert_ne!(build(1), build(2));
}
