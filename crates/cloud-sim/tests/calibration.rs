//! Calibration checks against the paper's published distributions.
//!
//! These run the full 547-type catalog for a simulated stretch and assert
//! the *shapes* of Table 2 and the family-level findings of Section 5.1.
//! They are `#[ignore]`d by default (they take tens of seconds in debug
//! builds); run them with `cargo test -p spotlake-cloud-sim --release -- --ignored`.

use spotlake_cloud_sim::{SimCloud, SimConfig};
use spotlake_types::{Catalog, InstanceGroup, InterruptionFreeScore, SimDuration};

fn full_cloud(days: u64) -> SimCloud {
    let config = SimConfig {
        tick: SimDuration::from_hours(2), // coarse tick for test speed
        ..SimConfig::default()
    };
    let mut cloud = SimCloud::new(Catalog::aws_2022(), config);
    cloud.run_days(days);
    cloud
}

/// Table 2 shape: the placement score is overwhelmingly 3.0, with a small
/// score-2 band and a high-single-digit score-1 share; the interruption-free
/// score is far more uniform.
#[test]
#[ignore = "full-catalog calibration sweep; run explicitly"]
fn table2_shape_placement_score_concentrated_if_score_spread() {
    let mut cloud = full_cloud(14);
    let catalog = cloud.catalog().clone();

    let mut sps_counts = [0u64; 3]; // index = score - 1
    let mut if_counts = [0u64; 5];

    // Sample over a further week of ticks.
    for _ in 0..(7 * 12) {
        cloud.step();
        for ty in catalog.type_ids() {
            for region in catalog.region_ids() {
                if let Some(s) = cloud.placement_score_region(ty, region, 1) {
                    sps_counts[(s.value() - 1) as usize] += 1;
                }
                if let Some(e) = cloud.advisor_entry(ty, region) {
                    let ifs = e.bucket.interruption_free_score();
                    let idx = InterruptionFreeScore::ALL
                        .iter()
                        .position(|x| *x == ifs)
                        .unwrap();
                    if_counts[idx] += 1;
                }
            }
        }
    }

    let sps_total: u64 = sps_counts.iter().sum();
    let sps_pct: Vec<f64> = sps_counts
        .iter()
        .map(|&c| 100.0 * c as f64 / sps_total as f64)
        .collect();
    eprintln!("SPS distribution (1.0, 2.0, 3.0): {sps_pct:?} (paper: 8.31, 3.81, 87.88)");

    let if_total: u64 = if_counts.iter().sum();
    let if_pct: Vec<f64> = if_counts
        .iter()
        .map(|&c| 100.0 * c as f64 / if_total as f64)
        .collect();
    eprintln!(
        "IF distribution (1.0, 1.5, 2.0, 2.5, 3.0): {if_pct:?} (paper: 20.84, 6.33, 13.86, 25.92, 33.05)"
    );

    // Placement score concentrated at 3.0.
    assert!(
        sps_pct[2] > 75.0,
        "score 3.0 share {:.1}% too low",
        sps_pct[2]
    );
    assert!(
        sps_pct[0] < 20.0,
        "score 1.0 share {:.1}% too high",
        sps_pct[0]
    );
    // Interruption-free score spread: no single bucket dominates like SPS.
    let max_if = if_pct.iter().cloned().fold(0.0, f64::max);
    assert!(max_if < 60.0, "IF score too concentrated: {if_pct:?}");
    // Both extreme buckets populated.
    assert!(if_pct[0] > 5.0, "IF 1.0 share {:.1}% too low", if_pct[0]);
    assert!(if_pct[4] > 15.0, "IF 3.0 share {:.1}% too low", if_pct[4]);
}

/// Section 5.1: the accelerated-computing family has noticeably lower
/// scores than the fleet average; DL (Gaudi) is the exception with high
/// scores.
#[test]
#[ignore = "full-catalog calibration sweep; run explicitly"]
fn family_ordering_matches_figure3() {
    let mut cloud = full_cloud(7);
    let catalog = cloud.catalog().clone();
    cloud.step();

    let mut group_sum = std::collections::HashMap::new();
    let mut group_n = std::collections::HashMap::new();
    for ty in catalog.type_ids() {
        let group = catalog.ty(ty).family().group();
        for region in catalog.region_ids() {
            if let Some(s) = cloud.placement_score_region(ty, region, 1) {
                *group_sum.entry(group).or_insert(0.0) += f64::from(s.value());
                *group_n.entry(group).or_insert(0u64) += 1;
            }
        }
    }
    let avg = |g: InstanceGroup| group_sum[&g] / group_n[&g] as f64;
    let accel = avg(InstanceGroup::AcceleratedComputing);
    let general = avg(InstanceGroup::General);
    eprintln!("avg SPS: general {general:.2}, accelerated {accel:.2}");
    assert!(
        accel < general - 0.15,
        "accelerated ({accel:.2}) must score clearly below general ({general:.2})"
    );
}
