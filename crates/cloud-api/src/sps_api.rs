//! The `get-spot-placement-scores` API.

use crate::error::ApiError;
use crate::fault::{Fault, FaultInjector, FaultSurface};
use spotlake_cloud_sim::SimCloud;
use spotlake_types::{PlacementScore, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Maximum number of placement scores returned by one query; when more
/// would match, only the highest-scoring 10 are returned (Section 3.1).
pub const MAX_RESULTS: usize = 10;

/// Maximum number of *unique* queries an account may issue in 24 hours.
/// Re-issuing an already-counted query is free.
pub const UNIQUE_QUERY_LIMIT: usize = 50;

/// A cloud account, the unit of API rate limiting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccountId(String);

impl AccountId {
    /// Creates an account id.
    pub fn new(name: impl Into<String>) -> Self {
        AccountId(name.into())
    }

    /// The account name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A placement-score request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpsRequest {
    instance_types: Vec<String>,
    regions: Vec<String>,
    target_capacity: u32,
    single_availability_zone: bool,
}

impl SpsRequest {
    /// Creates a request for the given instance type names and region
    /// codes, asking for `target_capacity` instances.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::InvalidParameter`] for empty type/region lists or
    /// a zero capacity.
    pub fn new(
        instance_types: Vec<String>,
        regions: Vec<String>,
        target_capacity: u32,
    ) -> Result<Self, ApiError> {
        if instance_types.is_empty() {
            return Err(ApiError::InvalidParameter {
                parameter: "instance_types",
                reason: "at least one instance type is required".into(),
            });
        }
        if regions.is_empty() {
            return Err(ApiError::InvalidParameter {
                parameter: "regions",
                reason: "at least one region is required".into(),
            });
        }
        if target_capacity == 0 {
            return Err(ApiError::InvalidParameter {
                parameter: "target_capacity",
                reason: "must be at least 1".into(),
            });
        }
        Ok(SpsRequest {
            instance_types,
            regions,
            target_capacity,
            single_availability_zone: false,
        })
    }

    /// Sets the `SingleAvailabilityZone` option: scores are returned per
    /// availability zone instead of per region.
    pub fn single_availability_zone(mut self, enabled: bool) -> Self {
        self.single_availability_zone = enabled;
        self
    }

    /// The requested instance type names.
    pub fn instance_types(&self) -> &[String] {
        &self.instance_types
    }

    /// The requested region codes.
    pub fn regions(&self) -> &[String] {
        &self.regions
    }

    /// The requested capacity.
    pub fn target_capacity(&self) -> u32 {
        self.target_capacity
    }

    /// The uniqueness fingerprint: "the combination of regions, instance
    /// types, and the number of desired instances" (Section 3.1). Order
    /// does not matter.
    pub fn fingerprint(&self) -> String {
        let mut types = self.instance_types.clone();
        types.sort();
        let mut regions = self.regions.clone();
        regions.sort();
        format!(
            "t={}/r={}/n={}/saz={}",
            types.join(","),
            regions.join(","),
            self.target_capacity,
            self.single_availability_zone
        )
    }
}

/// One returned placement score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpsScore {
    /// Region code.
    pub region: String,
    /// Availability-zone name, when `SingleAvailabilityZone` was set.
    pub availability_zone: Option<String>,
    /// The aggregated placement score.
    pub score: PlacementScore,
}

/// Sliding-window record of one account's unique queries.
#[derive(Debug, Clone, Default)]
struct AccountWindow {
    /// fingerprint → first time the query was counted inside the window.
    seen: BTreeMap<String, SimTime>,
}

impl AccountWindow {
    fn expire(&mut self, now: SimTime) {
        self.seen.retain(|_, &mut t| {
            now.checked_since(t)
                .is_none_or(|d| d < SimDuration::from_hours(24))
        });
    }
}

/// Client for the placement-score API. Holds per-account rate-limit state;
/// the cloud itself is passed per call.
#[derive(Debug, Clone, Default)]
pub struct SpsClient {
    windows: BTreeMap<AccountId, AccountWindow>,
    faults: Option<FaultInjector>,
}

impl SpsClient {
    /// Creates a client with no rate-limit history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a fault injector: each query rolls a deterministic fault
    /// decision keyed by (account, query fingerprint, tick, attempt).
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Fault injections rolled by this client so far, as
    /// `(surface, kind, count)`; empty without an injector.
    pub fn fault_counts(&self) -> Vec<(FaultSurface, &'static str, u64)> {
        self.faults
            .as_ref()
            .map(FaultInjector::fault_counts)
            .unwrap_or_default()
    }

    /// Number of unique queries `account` has counted in the trailing 24
    /// hours as of `now`.
    pub fn unique_queries_used(&mut self, account: &AccountId, now: SimTime) -> usize {
        match self.windows.get_mut(account) {
            Some(w) => {
                w.expire(now);
                w.seen.len()
            }
            None => 0,
        }
    }

    /// Issues a placement-score query.
    ///
    /// Results are one score per region (or per availability zone when
    /// `SingleAvailabilityZone` is set), sorted by descending score and
    /// truncated to [`MAX_RESULTS`]. Regions/zones that support none of the
    /// requested types are omitted (the website shows them as N/A).
    ///
    /// # Errors
    ///
    /// * [`ApiError::UnknownEntity`] for unknown type or region names.
    /// * [`ApiError::QueryLimitExceeded`] when the query is new to the
    ///   account's 24-hour window and the window already holds
    ///   [`UNIQUE_QUERY_LIMIT`] unique queries.
    pub fn get_spot_placement_scores(
        &mut self,
        cloud: &SimCloud,
        account: &AccountId,
        request: &SpsRequest,
    ) -> Result<Vec<SpsScore>, ApiError> {
        let catalog = cloud.catalog();
        let mut type_ids = Vec::with_capacity(request.instance_types.len());
        for name in &request.instance_types {
            type_ids.push(catalog.instance_type_id(name).ok_or_else(|| {
                ApiError::UnknownEntity {
                    kind: "instance type",
                    name: name.clone(),
                }
            })?);
        }
        let mut region_ids = Vec::with_capacity(request.regions.len());
        for code in &request.regions {
            region_ids.push(
                catalog
                    .region_id(code)
                    .ok_or_else(|| ApiError::UnknownEntity {
                        kind: "region",
                        name: code.clone(),
                    })?,
            );
        }

        // Injected transport faults fire after validation — a malformed
        // request is the caller's bug regardless of network weather — and
        // before the unique-query window counts the attempt: a throttled or
        // timed-out call never reached the service.
        if let Some(faults) = &mut self.faults {
            let scope = format!("{}/{}", account.name(), request.fingerprint());
            if let Some(Fault::Error(e)) = faults.decide(FaultSurface::Sps, &scope, cloud.ticks()) {
                return Err(e);
            }
        }

        // Rate limiting on *unique* queries.
        let now = cloud.now();
        let window = self.windows.entry(account.clone()).or_default();
        window.expire(now);
        let fingerprint = request.fingerprint();
        if !window.seen.contains_key(&fingerprint) {
            if window.seen.len() >= UNIQUE_QUERY_LIMIT {
                return Err(ApiError::QueryLimitExceeded {
                    account: account.name().to_owned(),
                    limit: UNIQUE_QUERY_LIMIT,
                });
            }
            window.seen.insert(fingerprint, now);
        }

        let count = request.target_capacity;
        let mut results = Vec::new();
        if request.single_availability_zone {
            for (&region, code) in region_ids.iter().zip(&request.regions) {
                for &az in catalog.azs_of_region(region) {
                    if let Some(score) = cloud.composite_score(&type_ids, az, count) {
                        results.push(SpsScore {
                            region: code.clone(),
                            availability_zone: Some(catalog.az(az).name().to_owned()),
                            score,
                        });
                    }
                }
            }
        } else {
            for (&region, code) in region_ids.iter().zip(&request.regions) {
                if let Some(score) = cloud.composite_score_region(&type_ids, region, count) {
                    results.push(SpsScore {
                        region: code.clone(),
                        availability_zone: None,
                        score,
                    });
                }
            }
        }

        // Highest scores first; stable tie-break on (region, az) for
        // determinism. Only the top MAX_RESULTS are returned.
        results.sort_by(|a, b| {
            b.score
                .cmp(&a.score)
                .then_with(|| a.region.cmp(&b.region))
                .then_with(|| a.availability_zone.cmp(&b.availability_zone))
        });
        results.truncate(MAX_RESULTS);
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_cloud_sim::SimConfig;
    use spotlake_types::{Catalog, CatalogBuilder};

    fn small_cloud() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 4)
            .region("eu-test-1", 4)
            .region("ap-test-1", 4)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        SimCloud::new(b.build().unwrap(), SimConfig::default())
    }

    #[test]
    fn request_validation() {
        assert!(SpsRequest::new(vec![], vec!["us-test-1".into()], 1).is_err());
        assert!(SpsRequest::new(vec!["m5.large".into()], vec![], 1).is_err());
        assert!(SpsRequest::new(vec!["m5.large".into()], vec!["us-test-1".into()], 0).is_err());
    }

    #[test]
    fn fingerprint_is_order_insensitive() {
        let a = SpsRequest::new(
            vec!["m5.large".into(), "p3.2xlarge".into()],
            vec!["us-test-1".into(), "eu-test-1".into()],
            3,
        )
        .unwrap();
        let b = SpsRequest::new(
            vec!["p3.2xlarge".into(), "m5.large".into()],
            vec!["eu-test-1".into(), "us-test-1".into()],
            3,
        )
        .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = SpsRequest::new(vec!["m5.large".into()], vec!["us-test-1".into()], 4).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn region_query_returns_one_score_per_region() {
        let cloud = small_cloud();
        let mut client = SpsClient::new();
        let account = AccountId::new("a");
        let req = SpsRequest::new(
            vec!["m5.large".into()],
            vec!["us-test-1".into(), "eu-test-1".into()],
            1,
        )
        .unwrap();
        let scores = client
            .get_spot_placement_scores(&cloud, &account, &req)
            .unwrap();
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.availability_zone.is_none()));
        assert!(scores.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn single_az_truncates_to_max_results() {
        let cloud = small_cloud();
        let mut client = SpsClient::new();
        let account = AccountId::new("a");
        // 3 regions × 4 AZs = 12 candidate scores > MAX_RESULTS.
        let req = SpsRequest::new(
            vec!["m5.large".into()],
            vec!["us-test-1".into(), "eu-test-1".into(), "ap-test-1".into()],
            1,
        )
        .unwrap()
        .single_availability_zone(true);
        let scores = client
            .get_spot_placement_scores(&cloud, &account, &req)
            .unwrap();
        assert_eq!(scores.len(), MAX_RESULTS);
        assert!(scores.iter().all(|s| s.availability_zone.is_some()));
        assert!(scores.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn unknown_names_are_rejected() {
        let cloud = small_cloud();
        let mut client = SpsClient::new();
        let account = AccountId::new("a");
        let req = SpsRequest::new(vec!["warp9.huge".into()], vec!["us-test-1".into()], 1).unwrap();
        assert!(matches!(
            client.get_spot_placement_scores(&cloud, &account, &req),
            Err(ApiError::UnknownEntity { .. })
        ));
        let req = SpsRequest::new(vec!["m5.large".into()], vec!["nowhere-1".into()], 1).unwrap();
        assert!(client
            .get_spot_placement_scores(&cloud, &account, &req)
            .is_err());
    }

    #[test]
    fn unique_query_limit_enforced_and_repeats_free() {
        let cloud = small_cloud();
        let mut client = SpsClient::new();
        let account = AccountId::new("a");
        // Exhaust the limit with distinct capacities.
        for n in 1..=UNIQUE_QUERY_LIMIT as u32 {
            let req =
                SpsRequest::new(vec!["m5.large".into()], vec!["us-test-1".into()], n).unwrap();
            client
                .get_spot_placement_scores(&cloud, &account, &req)
                .unwrap();
        }
        assert_eq!(
            client.unique_queries_used(&account, cloud.now()),
            UNIQUE_QUERY_LIMIT
        );
        // Repeating a counted query is free...
        let repeat = SpsRequest::new(vec!["m5.large".into()], vec!["us-test-1".into()], 1).unwrap();
        client
            .get_spot_placement_scores(&cloud, &account, &repeat)
            .unwrap();
        // ...but a new unique query is rejected.
        let fresh = SpsRequest::new(
            vec!["m5.large".into()],
            vec!["us-test-1".into()],
            UNIQUE_QUERY_LIMIT as u32 + 1,
        )
        .unwrap();
        assert!(matches!(
            client.get_spot_placement_scores(&cloud, &account, &fresh),
            Err(ApiError::QueryLimitExceeded { .. })
        ));
        // A different account is unaffected.
        let other = AccountId::new("b");
        client
            .get_spot_placement_scores(&cloud, &other, &fresh)
            .unwrap();
    }

    #[test]
    fn window_expires_after_24h() {
        let mut cloud = small_cloud();
        let mut client = SpsClient::new();
        let account = AccountId::new("a");
        for n in 1..=UNIQUE_QUERY_LIMIT as u32 {
            let req =
                SpsRequest::new(vec!["m5.large".into()], vec!["us-test-1".into()], n).unwrap();
            client
                .get_spot_placement_scores(&cloud, &account, &req)
                .unwrap();
        }
        cloud.run_days(1);
        cloud.step();
        assert_eq!(client.unique_queries_used(&account, cloud.now()), 0);
        let fresh = SpsRequest::new(vec!["m5.large".into()], vec!["us-test-1".into()], 99).unwrap();
        client
            .get_spot_placement_scores(&cloud, &account, &fresh)
            .unwrap();
    }

    #[test]
    fn injected_faults_are_retryable_and_skip_the_window() {
        use crate::fault::{FaultInjector, FaultPlan};
        let cloud = small_cloud();
        let mut client =
            SpsClient::new().with_faults(FaultInjector::new(FaultPlan::uniform(1, 1.0)));
        let account = AccountId::new("a");
        let req = SpsRequest::new(vec!["m5.large".into()], vec!["us-test-1".into()], 1).unwrap();
        let err = client
            .get_spot_placement_scores(&cloud, &account, &req)
            .unwrap_err();
        assert!(err.is_retryable());
        // A faulted call never reached the service: the unique-query
        // window must not count it.
        assert_eq!(client.unique_queries_used(&account, cloud.now()), 0);
    }

    #[test]
    fn composite_query_on_full_catalog_can_exceed_three() {
        let cloud = SimCloud::new(Catalog::aws_2022(), SimConfig::default());
        let mut client = SpsClient::new();
        let account = AccountId::new("a");
        let req = SpsRequest::new(
            vec!["m5.large".into(), "c5.large".into(), "r5.large".into()],
            vec!["us-east-1".into()],
            1,
        )
        .unwrap();
        let scores = client
            .get_spot_placement_scores(&cloud, &account, &req)
            .unwrap();
        assert_eq!(scores.len(), 1);
        assert!(
            scores[0].score.value() > 3,
            "three healthy types should composite above the single-type cap"
        );
    }
}
