//! AWS-shaped spot dataset APIs over the simulated cloud.
//!
//! The paper's data-collection challenges (Section 3.1) are all *interface*
//! constraints, so this crate reproduces the interfaces faithfully rather
//! than exposing the simulator's ground truth:
//!
//! * [`SpsClient`] — `get-spot-placement-scores`: multi-region, optional
//!   `SingleAvailabilityZone`, composite instance types, **at most 10
//!   returned scores** (highest first), and **at most 50 unique queries per
//!   account per 24 hours** (re-issuing a known query is free).
//! * [`PriceClient`] — `describe-spot-price-history`: change-event records
//!   with a 90-day lookback and page-token pagination.
//! * [`AdvisorPage`] — the spot instance advisor has **no programmatic
//!   API**; this type renders the advisor website's embedded JSON document,
//!   which collectors must scrape (the paper used the `spotinfo` tool;
//!   [`AdvisorPage::scrape`] is this reproduction's equivalent parser).
//! * [`FaultPlan`] / [`FaultInjector`] — deterministic, seedable transient
//!   faults (throttling, timeouts, 503s, truncated or corrupted advisor
//!   bodies) layered over every surface, so collector resilience can be
//!   exercised reproducibly. A zero-rate plan is byte-for-byte inert.
//!
//! # Example
//!
//! ```
//! use spotlake_cloud_api::{AccountId, SpsClient, SpsRequest};
//! use spotlake_cloud_sim::{SimCloud, SimConfig};
//! use spotlake_types::Catalog;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cloud = SimCloud::new(Catalog::aws_2022(), SimConfig::default());
//! let mut sps = SpsClient::new();
//! let account = AccountId::new("research-0");
//! let request = SpsRequest::new(vec!["p3.2xlarge".into()], vec!["us-east-1".into()], 1)?;
//! let scores = sps.get_spot_placement_scores(&cloud, &account, &request)?;
//! assert!(!scores.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advisor_page;
mod error;
mod fault;
mod price_api;
mod sps_api;

pub use advisor_page::{AdvisorClient, AdvisorPage, AdvisorRow};
pub use error::ApiError;
pub use fault::{Fault, FaultInjector, FaultPlan, FaultSurface};
pub use price_api::{PriceClient, PricePage, PricePoint, PriceRequest};
pub use sps_api::{AccountId, SpsClient, SpsRequest, SpsScore, MAX_RESULTS, UNIQUE_QUERY_LIMIT};
