//! Deterministic, seedable fault injection for the cloud APIs.
//!
//! Real collection pipelines fail for mundane reasons: throttling, timeouts,
//! 5xx responses, and — for the advisor, which is scraped from a web page —
//! truncated or corrupted bodies. This module makes those failures
//! *reproducible*: every decision is a pure hash of
//! `(surface, scope, tick, attempt, seed)`, the same scheme the simulator
//! uses to derive pool parameters, so a given seed and [`FaultPlan`] always
//! produce the identical fault sequence. Retries are not free passes —
//! each attempt within a tick rolls a fresh decision — but the whole
//! sequence replays bit-identically across runs.

use crate::error::ApiError;
use spotlake_types::hash::hash01;
use std::collections::BTreeMap;

/// Which API surface a fault decision applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSurface {
    /// `get-spot-placement-scores`.
    Sps,
    /// `describe-spot-price-history`.
    Price,
    /// The advisor web page fetch.
    Advisor,
}

impl FaultSurface {
    /// Stable lowercase name, used as a metric label by the collector.
    pub fn name(self) -> &'static str {
        match self {
            FaultSurface::Sps => "sps",
            FaultSurface::Price => "price",
            FaultSurface::Advisor => "advisor",
        }
    }
}

/// A fault selected for one API call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The call fails outright with a (retryable) API error.
    Error(ApiError),
    /// The response body is cut off mid-document (advisor only); the
    /// scraper will fail on the partial page.
    TruncatedBody,
    /// The response body arrives with a mangled field (advisor only); the
    /// scraper will fail on the corrupt page.
    CorruptedBody,
}

/// Per-surface fault rates plus the seed that makes them reproducible.
///
/// Rates are probabilities in `[0, 1]` applied independently per API call
/// (and per retry attempt). `write_rate` is consumed by
/// `spotlake_timestream::Database::set_write_faults`, not by this crate's
/// clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Fault rate for placement-score queries.
    pub sps_rate: f64,
    /// Fault rate for price-history pages.
    pub price_rate: f64,
    /// Fault rate for advisor page fetches.
    pub advisor_rate: f64,
    /// Fault rate for archive writes (wired into the store separately).
    pub write_rate: f64,
    /// `retry_after_ticks` carried by injected [`ApiError::Throttled`].
    pub throttle_retry_after: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (the identity plan).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            sps_rate: 0.0,
            price_rate: 0.0,
            advisor_rate: 0.0,
            write_rate: 0.0,
            throttle_retry_after: 1,
        }
    }

    /// A plan with the same fault rate on every surface. Writes are
    /// throttled at a quarter of the API rate — storage is typically an
    /// order steadier than scraped pages.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            sps_rate: rate,
            price_rate: rate,
            advisor_rate: rate,
            write_rate: rate / 4.0,
            throttle_retry_after: 1,
        }
    }

    /// Named CLI profiles: `none`, `light` (5%), `moderate` (10%),
    /// `heavy` (20%). Returns `None` for unknown names.
    pub fn profile(name: &str, seed: u64) -> Option<Self> {
        match name {
            "none" => Some(FaultPlan::none(seed)),
            "light" => Some(FaultPlan::uniform(seed, 0.05)),
            "moderate" => Some(FaultPlan::uniform(seed, 0.10)),
            "heavy" => Some(FaultPlan::uniform(seed, 0.20)),
            _ => None,
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_zero(&self) -> bool {
        self.sps_rate == 0.0
            && self.price_rate == 0.0
            && self.advisor_rate == 0.0
            && self.write_rate == 0.0
    }

    fn rate(&self, surface: FaultSurface) -> f64 {
        match surface {
            FaultSurface::Sps => self.sps_rate,
            FaultSurface::Price => self.price_rate,
            FaultSurface::Advisor => self.advisor_rate,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none(0)
    }
}

/// Rolls deterministic fault decisions for one API client.
///
/// The injector tracks an attempt counter per `(surface, scope)` that
/// resets whenever the tick advances: the first call for a scope in a tick
/// is attempt 0, an immediate retry is attempt 1, and so on. Because the
/// counter is part of the hash, a retry rolls a *fresh* decision — while
/// two runs with the same seed, plan, and call sequence still see the
/// identical faults.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// `(surface, scope)` → (tick of last roll, attempts rolled that tick).
    attempts: BTreeMap<(FaultSurface, String), (u64, u32)>,
    /// `(surface, fault kind)` → injections so far, kept in a `BTreeMap`
    /// so scrapes enumerate deterministically.
    injected: BTreeMap<(FaultSurface, &'static str), u64>,
}

impl FaultInjector {
    /// Creates an injector following `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            attempts: BTreeMap::new(),
            injected: BTreeMap::new(),
        }
    }

    /// The plan this injector follows.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Running totals of injected faults as `(surface, kind, count)`,
    /// sorted — the collector scrapes these into its metric registry.
    /// Kinds: `throttled`, `timeout`, `unavailable`, `truncated`,
    /// `corrupted`.
    pub fn fault_counts(&self) -> Vec<(FaultSurface, &'static str, u64)> {
        self.injected
            .iter()
            .map(|(&(surface, kind), &count)| (surface, kind, count))
            .collect()
    }

    /// Rolls one fault decision for a call on `surface` identified by
    /// `scope` (e.g. `account/fingerprint`) at simulation tick `tick`.
    /// Returns `None` when the call should proceed normally.
    pub fn decide(&mut self, surface: FaultSurface, scope: &str, tick: u64) -> Option<Fault> {
        let rate = self.plan.rate(surface);
        if rate <= 0.0 {
            return None;
        }
        let entry = self
            .attempts
            .entry((surface, scope.to_owned()))
            .or_insert((tick, 0));
        if entry.0 != tick {
            *entry = (tick, 0);
        }
        let attempt = entry.1;
        entry.1 += 1;

        let tick_s = tick.to_string();
        let attempt_s = attempt.to_string();
        let seed_s = self.plan.seed.to_string();
        let roll = hash01(&["fault", surface.name(), scope, &tick_s, &attempt_s, &seed_s]);
        if roll >= rate {
            return None;
        }
        let kind = hash01(&[
            "fault-kind",
            surface.name(),
            scope,
            &tick_s,
            &attempt_s,
            &seed_s,
        ]);
        let fault = match surface {
            // Advisor faults include body-level damage; the API surfaces
            // only transport errors.
            FaultSurface::Advisor => match (kind * 5.0) as u32 {
                0 => Fault::Error(ApiError::Throttled {
                    retry_after_ticks: self.plan.throttle_retry_after,
                }),
                1 => Fault::Error(ApiError::Timeout),
                2 => Fault::Error(ApiError::ServiceUnavailable),
                3 => Fault::TruncatedBody,
                _ => Fault::CorruptedBody,
            },
            FaultSurface::Sps | FaultSurface::Price => match (kind * 3.0) as u32 {
                0 => Fault::Error(ApiError::Throttled {
                    retry_after_ticks: self.plan.throttle_retry_after,
                }),
                1 => Fault::Error(ApiError::Timeout),
                _ => Fault::Error(ApiError::ServiceUnavailable),
            },
        };
        let kind_name = match &fault {
            Fault::Error(ApiError::Throttled { .. }) => "throttled",
            Fault::Error(ApiError::Timeout) => "timeout",
            Fault::Error(_) => "unavailable",
            Fault::TruncatedBody => "truncated",
            Fault::CorruptedBody => "corrupted",
        };
        *self.injected.entry((surface, kind_name)).or_insert(0) += 1;
        Some(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_parse() {
        assert!(FaultPlan::profile("none", 1).unwrap().is_zero());
        assert_eq!(FaultPlan::profile("light", 1).unwrap().sps_rate, 0.05);
        assert_eq!(FaultPlan::profile("moderate", 1).unwrap().sps_rate, 0.10);
        assert_eq!(FaultPlan::profile("heavy", 1).unwrap().sps_rate, 0.20);
        assert!(FaultPlan::profile("chaotic-evil", 1).is_none());
    }

    #[test]
    fn zero_rate_never_faults() {
        let mut inj = FaultInjector::new(FaultPlan::none(7));
        for tick in 0..200 {
            assert_eq!(inj.decide(FaultSurface::Sps, "a/q", tick), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_across_injectors() {
        let plan = FaultPlan::uniform(42, 0.3);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for tick in 0..100 {
            for attempt in 0..3 {
                let _ = attempt;
                assert_eq!(
                    a.decide(FaultSurface::Price, "scope", tick),
                    b.decide(FaultSurface::Price, "scope", tick)
                );
            }
        }
    }

    #[test]
    fn retries_roll_fresh_decisions() {
        // With a rate below 1, some attempt within a tick must differ from
        // the first — the attempt counter feeds the hash.
        let plan = FaultPlan::uniform(3, 0.5);
        let mut inj = FaultInjector::new(plan);
        let mut saw_change_within_tick = false;
        for tick in 0..50 {
            let first = inj.decide(FaultSurface::Sps, "s", tick).is_some();
            for _ in 0..4 {
                if inj.decide(FaultSurface::Sps, "s", tick).is_some() != first {
                    saw_change_within_tick = true;
                }
            }
        }
        assert!(saw_change_within_tick);
    }

    #[test]
    fn attempt_counter_resets_per_tick() {
        let plan = FaultPlan::uniform(11, 0.4);
        let mut warm = FaultInjector::new(plan);
        // Burn several attempts at tick 0.
        for _ in 0..5 {
            let _ = warm.decide(FaultSurface::Advisor, "page", 0);
        }
        // A fresh injector at tick 1 must agree with the warmed one: the
        // counter reset on the tick change.
        let mut fresh = FaultInjector::new(plan);
        assert_eq!(
            warm.decide(FaultSurface::Advisor, "page", 1),
            fresh.decide(FaultSurface::Advisor, "page", 1)
        );
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::uniform(99, 0.2);
        let mut inj = FaultInjector::new(plan);
        let faults = (0..2000)
            .filter(|&t| inj.decide(FaultSurface::Sps, "q", t).is_some())
            .count();
        let observed = faults as f64 / 2000.0;
        assert!((0.1..0.3).contains(&observed), "observed rate {observed}");
    }

    #[test]
    fn advisor_surface_produces_body_faults() {
        let plan = FaultPlan::uniform(5, 1.0);
        let mut inj = FaultInjector::new(plan);
        let mut kinds = std::collections::HashSet::new();
        for tick in 0..200 {
            match inj.decide(FaultSurface::Advisor, "page", tick) {
                Some(Fault::TruncatedBody) => {
                    kinds.insert("truncated");
                }
                Some(Fault::CorruptedBody) => {
                    kinds.insert("corrupted");
                }
                Some(Fault::Error(_)) => {
                    kinds.insert("error");
                }
                None => {}
            }
        }
        assert!(kinds.contains("truncated"));
        assert!(kinds.contains("corrupted"));
        assert!(kinds.contains("error"));
    }

    #[test]
    fn fault_counts_track_injections_by_surface_and_kind() {
        let mut inj = FaultInjector::new(FaultPlan::uniform(5, 1.0));
        let mut injected = 0u64;
        for tick in 0..100 {
            if inj.decide(FaultSurface::Advisor, "page", tick).is_some() {
                injected += 1;
            }
            if inj.decide(FaultSurface::Sps, "a/q", tick).is_some() {
                injected += 1;
            }
        }
        let counts = inj.fault_counts();
        assert!(injected > 0);
        assert_eq!(counts.iter().map(|&(_, _, n)| n).sum::<u64>(), injected);
        // Sorted by (surface, kind); all surfaces that faulted appear.
        let surfaces: Vec<_> = counts.iter().map(|&(s, _, _)| s).collect();
        let mut sorted = surfaces.clone();
        sorted.sort();
        assert_eq!(surfaces, sorted);
        assert!(surfaces.contains(&FaultSurface::Advisor));
        assert!(surfaces.contains(&FaultSurface::Sps));
        // An injector that never faulted reports nothing.
        assert!(FaultInjector::new(FaultPlan::none(1))
            .fault_counts()
            .is_empty());
    }
}
