//! The spot instance advisor "web page".
//!
//! The advisor "is officially accessible via the website only, and it does
//! not support the programmatic access" (Section 2.2). The paper worked
//! around this with the open-source `spotinfo` scraper. This module
//! reproduces both sides: [`AdvisorPage::render`] produces the JSON document
//! the advisor website embeds, and [`AdvisorPage::scrape`] is the
//! `spotinfo`-equivalent parser that turns the document back into rows.
//!
//! The document format mirrors the real `spot-advisor-data.json` in spirit:
//! a flat row list with the savings percentage and the interruption-range
//! *index* (0 = `<5%` … 4 = `>20%`).

use crate::error::ApiError;
use crate::fault::{Fault, FaultInjector, FaultSurface};
use spotlake_cloud_sim::SimCloud;
use spotlake_types::{InterruptionBucket, Savings};

/// One advisor row as shown on the website.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvisorRow {
    /// Instance type name.
    pub instance_type: String,
    /// Region code.
    pub region: String,
    /// Savings over on-demand.
    pub savings: Savings,
    /// Interruption frequency bucket.
    pub bucket: InterruptionBucket,
}

/// The advisor page: render and scrape.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdvisorPage;

impl AdvisorPage {
    /// Renders the advisor website's embedded JSON document from the
    /// cloud's currently published advisor table. Rows are sorted by
    /// (region, instance type) — the website is stable between refreshes.
    pub fn render(cloud: &SimCloud) -> String {
        let catalog = cloud.catalog();
        let mut rows: Vec<(String, String, u8, usize)> = cloud
            .advisor_table()
            .into_iter()
            .map(|((ty, region), entry)| {
                let range = InterruptionBucket::ALL
                    .iter()
                    .position(|b| *b == entry.bucket)
                    .expect("bucket is one of the five");
                (
                    catalog.region(region).code().to_owned(),
                    catalog.ty(ty).name(),
                    entry.savings.percent(),
                    range,
                )
            })
            .collect();
        rows.sort();

        let mut out = String::with_capacity(rows.len() * 96 + 64);
        out.push_str("{\n  \"updated\": ");
        out.push_str(&cloud.now().as_secs().to_string());
        out.push_str(",\n  \"rows\": [\n");
        for (i, (region, ty, savings, range)) in rows.iter().enumerate() {
            out.push_str("    {\"instance_type\": \"");
            out.push_str(ty);
            out.push_str("\", \"region\": \"");
            out.push_str(region);
            out.push_str("\", \"savings\": ");
            out.push_str(&savings.to_string());
            out.push_str(", \"interruption_range\": ");
            out.push_str(&range.to_string());
            out.push('}');
            if i + 1 < rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Scrapes a rendered advisor document back into rows — the
    /// reproduction's `spotinfo`.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::ScrapeFailed`] when the document does not have
    /// the expected structure.
    pub fn scrape(document: &str) -> Result<Vec<AdvisorRow>, ApiError> {
        let rows_start = document
            .find("\"rows\"")
            .ok_or_else(|| ApiError::ScrapeFailed {
                detail: "missing rows array".into(),
            })?;
        let body = &document[rows_start..];
        let open = body.find('[').ok_or_else(|| ApiError::ScrapeFailed {
            detail: "rows is not an array".into(),
        })?;
        let close = body.rfind(']').ok_or_else(|| ApiError::ScrapeFailed {
            detail: "unterminated rows array".into(),
        })?;
        let rows_body = &body[open + 1..close];

        let mut rows = Vec::new();
        for chunk in rows_body.split('{').skip(1) {
            let end = chunk.find('}').ok_or_else(|| ApiError::ScrapeFailed {
                detail: "unterminated row object".into(),
            })?;
            let obj = &chunk[..end];
            let instance_type = extract_str(obj, "instance_type")?;
            let region = extract_str(obj, "region")?;
            let savings_pct: u8 = extract_num(obj, "savings")?;
            let range: usize = extract_num(obj, "interruption_range")?;
            let bucket =
                *InterruptionBucket::ALL
                    .get(range)
                    .ok_or_else(|| ApiError::ScrapeFailed {
                        detail: format!("interruption_range {range} out of range"),
                    })?;
            let savings =
                Savings::from_percent(savings_pct).map_err(|_| ApiError::ScrapeFailed {
                    detail: format!("savings {savings_pct} out of range"),
                })?;
            rows.push(AdvisorRow {
                instance_type,
                region,
                savings,
                bucket,
            });
        }
        Ok(rows)
    }
}

/// Fetches the advisor page over the (simulated) network and scrapes it.
///
/// [`AdvisorPage`] models the page itself; this client models *getting*
/// it. With a fault injector installed, a fetch may fail in transit
/// (throttle / timeout / 503) or deliver a damaged body — truncated
/// mid-document or with a mangled field — which then fails in
/// [`AdvisorPage::scrape`] with [`ApiError::ScrapeFailed`], exactly as a
/// real scraper run against a flaky website would.
#[derive(Debug, Clone, Default)]
pub struct AdvisorClient {
    faults: Option<FaultInjector>,
}

impl AdvisorClient {
    /// Creates a client that fetches cleanly.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a fault injector for fetches.
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Fault injections rolled by this client so far, as
    /// `(surface, kind, count)`; empty without an injector.
    pub fn fault_counts(&self) -> Vec<(FaultSurface, &'static str, u64)> {
        self.faults
            .as_ref()
            .map(FaultInjector::fault_counts)
            .unwrap_or_default()
    }

    /// Fetches and scrapes the advisor page.
    ///
    /// # Errors
    ///
    /// * [`ApiError::Throttled`], [`ApiError::Timeout`], or
    ///   [`ApiError::ServiceUnavailable`] when the injected fetch fails in
    ///   transit.
    /// * [`ApiError::ScrapeFailed`] when the (possibly damaged) body does
    ///   not parse.
    ///
    /// All of these are retryable; see [`ApiError::is_retryable`].
    pub fn fetch(&mut self, cloud: &SimCloud) -> Result<Vec<AdvisorRow>, ApiError> {
        let mut page = AdvisorPage::render(cloud);
        if let Some(faults) = &mut self.faults {
            match faults.decide(FaultSurface::Advisor, "advisor-page", cloud.ticks()) {
                Some(Fault::Error(e)) => return Err(e),
                Some(Fault::TruncatedBody) => {
                    // The connection dropped mid-transfer: keep a prefix.
                    page.truncate(page.len() / 2);
                }
                Some(Fault::CorruptedBody) => {
                    // A field name arrives garbled; every row is affected.
                    page = page.replace("\"savings\"", "\"sav~ngs\"");
                }
                None => {}
            }
        }
        AdvisorPage::scrape(&page)
    }
}

fn extract_str(obj: &str, key: &str) -> Result<String, ApiError> {
    let pat = format!("\"{key}\": \"");
    let start = obj.find(&pat).ok_or_else(|| ApiError::ScrapeFailed {
        detail: format!("missing field {key}"),
    })? + pat.len();
    let rest = &obj[start..];
    let end = rest.find('"').ok_or_else(|| ApiError::ScrapeFailed {
        detail: format!("unterminated string for {key}"),
    })?;
    Ok(rest[..end].to_owned())
}

fn extract_num<T: std::str::FromStr>(obj: &str, key: &str) -> Result<T, ApiError> {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat).ok_or_else(|| ApiError::ScrapeFailed {
        detail: format!("missing field {key}"),
    })? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().map_err(|_| ApiError::ScrapeFailed {
        detail: format!("bad number for {key}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_cloud_sim::SimConfig;
    use spotlake_types::CatalogBuilder;

    fn small_cloud() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 2)
            .region("eu-test-1", 2)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        SimCloud::new(b.build().unwrap(), SimConfig::default())
    }

    #[test]
    fn render_scrape_roundtrip() {
        let cloud = small_cloud();
        let page = AdvisorPage::render(&cloud);
        let rows = AdvisorPage::scrape(&page).unwrap();
        // 2 types × 2 regions.
        assert_eq!(rows.len(), 4);
        for row in &rows {
            let ty = cloud
                .catalog()
                .instance_type_id(&row.instance_type)
                .unwrap();
            let region = cloud.catalog().region_id(&row.region).unwrap();
            let entry = cloud.advisor_entry(ty, region).unwrap();
            assert_eq!(entry.bucket, row.bucket);
            assert_eq!(entry.savings, row.savings);
        }
    }

    #[test]
    fn render_is_stable() {
        let cloud = small_cloud();
        assert_eq!(AdvisorPage::render(&cloud), AdvisorPage::render(&cloud));
    }

    #[test]
    fn scrape_rejects_garbage() {
        assert!(AdvisorPage::scrape("<html>not the advisor</html>").is_err());
        assert!(AdvisorPage::scrape("{\"rows\": [{\"instance_type\": \"x\"}]}").is_err());
        assert!(AdvisorPage::scrape(
            "{\"rows\": [{\"instance_type\": \"a\", \"region\": \"r\", \"savings\": 10, \"interruption_range\": 9}]}"
        )
        .is_err());
    }

    #[test]
    fn client_without_faults_matches_direct_scrape() {
        let cloud = small_cloud();
        let direct = AdvisorPage::scrape(&AdvisorPage::render(&cloud)).unwrap();
        let fetched = AdvisorClient::new().fetch(&cloud).unwrap();
        assert_eq!(direct, fetched);
    }

    #[test]
    fn faulted_client_fails_retryably_and_can_damage_bodies() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut cloud = small_cloud();
        let mut client =
            AdvisorClient::new().with_faults(FaultInjector::new(FaultPlan::uniform(2, 1.0)));
        let mut scrape_failures = 0;
        for _ in 0..40 {
            cloud.step();
            let err = client.fetch(&cloud).unwrap_err();
            assert!(err.is_retryable());
            if matches!(err, ApiError::ScrapeFailed { .. }) {
                scrape_failures += 1;
            }
        }
        assert!(
            scrape_failures > 0,
            "body damage should surface as scrape failures"
        );
    }

    #[test]
    fn scrape_empty_rows() {
        let rows = AdvisorPage::scrape("{\"updated\": 0, \"rows\": []}").unwrap();
        assert!(rows.is_empty());
    }
}
