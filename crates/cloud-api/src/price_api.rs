//! The `describe-spot-price-history` API.

use crate::error::ApiError;
use crate::fault::{Fault, FaultInjector, FaultSurface};
use spotlake_cloud_sim::SimCloud;
use spotlake_types::{SimDuration, SimTime, SpotPrice};

/// Maximum records per page.
const PAGE_SIZE: usize = 1000;
/// The API's lookback window: 90 days, as on AWS ("up to three months of
/// spot price history", Section 3.1).
const LOOKBACK: SimDuration = SimDuration::from_days(90);

/// A price-history request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PriceRequest {
    instance_types: Vec<String>,
    availability_zone: Option<String>,
    start: SimTime,
    end: SimTime,
}

impl PriceRequest {
    /// Creates a request for the price-change history of the named types in
    /// `[start, end]`.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::InvalidParameter`] for an empty type list or an
    /// inverted time range.
    pub fn new(
        instance_types: Vec<String>,
        start: SimTime,
        end: SimTime,
    ) -> Result<Self, ApiError> {
        if instance_types.is_empty() {
            return Err(ApiError::InvalidParameter {
                parameter: "instance_types",
                reason: "at least one instance type is required".into(),
            });
        }
        if start > end {
            return Err(ApiError::InvalidParameter {
                parameter: "start",
                reason: "start time is after end time".into(),
            });
        }
        Ok(PriceRequest {
            instance_types,
            availability_zone: None,
            start,
            end,
        })
    }

    /// Restricts the request to a single availability zone.
    pub fn availability_zone(mut self, az: impl Into<String>) -> Self {
        self.availability_zone = Some(az.into());
        self
    }
}

/// One price-change record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PricePoint {
    /// When the price changed.
    pub timestamp: SimTime,
    /// Instance type name.
    pub instance_type: String,
    /// Availability-zone name.
    pub availability_zone: String,
    /// The new spot price.
    pub price: SpotPrice,
}

/// One page of price history plus an optional continuation token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PricePage {
    /// The records of this page, oldest first.
    pub records: Vec<PricePoint>,
    /// Pass back to [`PriceClient::describe_spot_price_history`] to fetch
    /// the next page; `None` when exhausted.
    pub next_token: Option<String>,
}

/// Client for the price-history API. Pagination is stateless (encoded in
/// the token); the client only carries the optional fault injector.
#[derive(Debug, Clone, Default)]
pub struct PriceClient {
    faults: Option<FaultInjector>,
}

impl PriceClient {
    /// Creates a client.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a fault injector: each page fetch rolls a deterministic
    /// fault decision keyed by (types, window, page token, tick, attempt).
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Fault injections rolled by this client so far, as
    /// `(surface, kind, count)`; empty without an injector.
    pub fn fault_counts(&self) -> Vec<(FaultSurface, &'static str, u64)> {
        self.faults
            .as_ref()
            .map(FaultInjector::fault_counts)
            .unwrap_or_default()
    }

    /// Fetches one page of spot price-change history. The effective start
    /// time is clamped to the API's 90-day lookback relative to the cloud's
    /// current time.
    ///
    /// # Errors
    ///
    /// * [`ApiError::UnknownEntity`] for unknown type/zone names.
    /// * [`ApiError::BadPageToken`] for malformed tokens.
    /// * [`ApiError::Throttled`], [`ApiError::Timeout`], or
    ///   [`ApiError::ServiceUnavailable`] when a fault injector is
    ///   installed and fires (all retryable).
    pub fn describe_spot_price_history(
        &mut self,
        cloud: &SimCloud,
        request: &PriceRequest,
        page_token: Option<&str>,
    ) -> Result<PricePage, ApiError> {
        let catalog = cloud.catalog();
        let offset: usize = match page_token {
            None => 0,
            Some(t) => t.parse().map_err(|_| ApiError::BadPageToken)?,
        };

        // Transport faults fire after token validation (a malformed token
        // is a caller bug) but before any data is assembled.
        if let Some(faults) = &mut self.faults {
            let scope = format!(
                "{}/{}..{}/p{offset}",
                request.instance_types.join(","),
                request.start.as_secs(),
                request.end.as_secs()
            );
            if let Some(Fault::Error(e)) = faults.decide(FaultSurface::Price, &scope, cloud.ticks())
            {
                return Err(e);
            }
        }

        // Clamp the window to the lookback.
        let horizon = cloud
            .now()
            .checked_since(SimTime::EPOCH + LOOKBACK)
            .map_or(SimTime::EPOCH, |d| SimTime::EPOCH + d);
        let start = request.start.max(horizon);
        let end = request.end.min(cloud.now());

        let zones: Vec<_> = match &request.availability_zone {
            Some(name) => {
                let az = catalog.az_id(name).ok_or_else(|| ApiError::UnknownEntity {
                    kind: "availability zone",
                    name: name.clone(),
                })?;
                vec![az]
            }
            None => catalog.az_ids().collect(),
        };

        let mut records = Vec::new();
        for name in &request.instance_types {
            let ty = catalog
                .instance_type_id(name)
                .ok_or_else(|| ApiError::UnknownEntity {
                    kind: "instance type",
                    name: name.clone(),
                })?;
            for &az in &zones {
                for (timestamp, price) in cloud.price_history(ty, az, start, end) {
                    records.push(PricePoint {
                        timestamp,
                        instance_type: name.clone(),
                        availability_zone: catalog.az(az).name().to_owned(),
                        price,
                    });
                }
            }
        }
        records.sort_by(|a, b| {
            a.timestamp
                .cmp(&b.timestamp)
                .then_with(|| a.instance_type.cmp(&b.instance_type))
                .then_with(|| a.availability_zone.cmp(&b.availability_zone))
        });

        let page: Vec<PricePoint> = records
            .iter()
            .skip(offset)
            .take(PAGE_SIZE)
            .cloned()
            .collect();
        let next_token = if offset + page.len() < records.len() {
            Some((offset + page.len()).to_string())
        } else {
            None
        };
        Ok(PricePage {
            records: page,
            next_token,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_cloud_sim::SimConfig;
    use spotlake_types::CatalogBuilder;

    fn cloud_with_history() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 2).instance_type("m5.large", 0.096);
        let mut cloud = SimCloud::new(b.build().unwrap(), SimConfig::default());
        cloud.run_days(10);
        cloud
    }

    #[test]
    fn request_validation() {
        assert!(PriceRequest::new(vec![], SimTime::EPOCH, SimTime::from_secs(10)).is_err());
        assert!(PriceRequest::new(
            vec!["m5.large".into()],
            SimTime::from_secs(10),
            SimTime::EPOCH
        )
        .is_err());
    }

    #[test]
    fn history_is_sorted_and_scoped() {
        let cloud = cloud_with_history();
        let req = PriceRequest::new(vec!["m5.large".into()], SimTime::EPOCH, cloud.now())
            .unwrap()
            .availability_zone("us-test-1a");
        let page = PriceClient::new()
            .describe_spot_price_history(&cloud, &req, None)
            .unwrap();
        assert!(!page.records.is_empty());
        assert!(page
            .records
            .iter()
            .all(|r| r.availability_zone == "us-test-1a"));
        assert!(page
            .records
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn unknown_entities_rejected() {
        let cloud = cloud_with_history();
        let req =
            PriceRequest::new(vec!["warp9.huge".into()], SimTime::EPOCH, cloud.now()).unwrap();
        assert!(matches!(
            PriceClient::new().describe_spot_price_history(&cloud, &req, None),
            Err(ApiError::UnknownEntity { .. })
        ));
        let req = PriceRequest::new(vec!["m5.large".into()], SimTime::EPOCH, cloud.now())
            .unwrap()
            .availability_zone("mars-1a");
        assert!(PriceClient::new()
            .describe_spot_price_history(&cloud, &req, None)
            .is_err());
    }

    #[test]
    fn bad_token_rejected_and_pagination_walks() {
        let cloud = cloud_with_history();
        let req = PriceRequest::new(vec!["m5.large".into()], SimTime::EPOCH, cloud.now()).unwrap();
        let mut client = PriceClient::new();
        assert!(matches!(
            client.describe_spot_price_history(&cloud, &req, Some("xyz")),
            Err(ApiError::BadPageToken)
        ));
        // Collect all pages; with few records this is a single page, but the
        // token protocol must terminate.
        let mut token: Option<String> = None;
        let mut total = 0;
        loop {
            let page = client
                .describe_spot_price_history(&cloud, &req, token.as_deref())
                .unwrap();
            total += page.records.len();
            match page.next_token {
                Some(t) => token = Some(t),
                None => break,
            }
        }
        assert!(total > 0);
    }

    #[test]
    fn injected_faults_are_retryable() {
        use crate::fault::{FaultInjector, FaultPlan};
        let cloud = cloud_with_history();
        let mut client =
            PriceClient::new().with_faults(FaultInjector::new(FaultPlan::uniform(1, 1.0)));
        let req = PriceRequest::new(vec!["m5.large".into()], SimTime::EPOCH, cloud.now()).unwrap();
        let err = client
            .describe_spot_price_history(&cloud, &req, None)
            .unwrap_err();
        assert!(err.is_retryable());
        // A malformed token still wins over the injector: caller bugs are
        // not transient.
        assert!(matches!(
            client.describe_spot_price_history(&cloud, &req, Some("xyz")),
            Err(ApiError::BadPageToken)
        ));
    }

    #[test]
    fn lookback_clamps_old_history() {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 1).instance_type("m5.large", 0.096);
        let config = SimConfig {
            tick: SimDuration::from_hours(4),
            ..SimConfig::default()
        };
        let mut cloud = SimCloud::new(b.build().unwrap(), config);
        cloud.run_days(120);
        let req = PriceRequest::new(vec!["m5.large".into()], SimTime::EPOCH, cloud.now()).unwrap();
        let page = PriceClient::new()
            .describe_spot_price_history(&cloud, &req, None)
            .unwrap();
        let horizon = cloud.now().as_secs() - LOOKBACK.as_secs();
        // Only the carried-forward change preceding the horizon may be
        // older; everything else must be inside the lookback.
        let older: Vec<_> = page
            .records
            .iter()
            .filter(|r| r.timestamp.as_secs() < horizon)
            .collect();
        assert!(
            older.len() <= 1,
            "at most the price in effect at the horizon"
        );
    }
}
