//! API-layer errors.

use std::error::Error;
use std::fmt;

/// Errors returned by the cloud's public APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The account has used all of its unique placement-score queries for
    /// the trailing 24 hours (paper Section 3.1: "an account can issue a
    /// maximum of 50 unique queries in 24 hours").
    QueryLimitExceeded {
        /// The account that hit the limit.
        account: String,
        /// The limit that was hit.
        limit: usize,
    },
    /// A request parameter was invalid.
    InvalidParameter {
        /// Which parameter.
        parameter: &'static str,
        /// What was wrong with it.
        reason: String,
    },
    /// A named entity (region, instance type) does not exist.
    UnknownEntity {
        /// Entity kind.
        kind: &'static str,
        /// The unknown name.
        name: String,
    },
    /// A pagination token was malformed or expired.
    BadPageToken,
    /// The advisor web page could not be scraped.
    ScrapeFailed {
        /// What the scraper choked on.
        detail: String,
    },
    /// The service throttled the request. Transient: retry after the given
    /// number of simulation ticks.
    Throttled {
        /// Ticks to wait before the request is worth retrying.
        retry_after_ticks: u64,
    },
    /// The request timed out in transit. Transient.
    Timeout,
    /// The service returned an internal error (HTTP 503). Transient.
    ServiceUnavailable,
}

impl ApiError {
    /// Whether the failure is transient and a retry may succeed.
    ///
    /// Scrape failures count as retryable: a truncated or corrupted advisor
    /// page is a transport problem, not a caller bug — re-fetching the page
    /// is the correct response.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ApiError::Throttled { .. }
                | ApiError::Timeout
                | ApiError::ServiceUnavailable
                | ApiError::ScrapeFailed { .. }
        )
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::QueryLimitExceeded { account, limit } => write!(
                f,
                "account {account:?} exceeded its limit of {limit} unique placement-score queries in 24 hours"
            ),
            ApiError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid parameter {parameter}: {reason}")
            }
            ApiError::UnknownEntity { kind, name } => write!(f, "unknown {kind}: {name:?}"),
            ApiError::BadPageToken => write!(f, "malformed or expired page token"),
            ApiError::ScrapeFailed { detail } => {
                write!(f, "failed to scrape advisor page: {detail}")
            }
            ApiError::Throttled { retry_after_ticks } => {
                write!(f, "request throttled; retry after {retry_after_ticks} tick(s)")
            }
            ApiError::Timeout => write!(f, "request timed out"),
            ApiError::ServiceUnavailable => write!(f, "service unavailable"),
        }
    }
}

impl Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = ApiError::QueryLimitExceeded {
            account: "a".into(),
            limit: 50,
        };
        assert!(e.to_string().contains("50 unique"));
        assert_eq!(
            ApiError::BadPageToken.to_string(),
            "malformed or expired page token"
        );
        assert!(ApiError::Timeout.to_string().contains("timed out"));
        assert!(ApiError::Throttled {
            retry_after_ticks: 3
        }
        .to_string()
        .contains("3 tick"));
    }

    #[test]
    fn retryability_classification() {
        assert!(ApiError::Throttled {
            retry_after_ticks: 1
        }
        .is_retryable());
        assert!(ApiError::Timeout.is_retryable());
        assert!(ApiError::ServiceUnavailable.is_retryable());
        assert!(ApiError::ScrapeFailed {
            detail: "cut off".into()
        }
        .is_retryable());
        assert!(!ApiError::BadPageToken.is_retryable());
        assert!(!ApiError::QueryLimitExceeded {
            account: "a".into(),
            limit: 50
        }
        .is_retryable());
        assert!(!ApiError::UnknownEntity {
            kind: "region",
            name: "x".into()
        }
        .is_retryable());
        assert!(!ApiError::InvalidParameter {
            parameter: "n",
            reason: "zero".into()
        }
        .is_retryable());
    }
}
