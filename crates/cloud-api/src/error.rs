//! API-layer errors.

use std::error::Error;
use std::fmt;

/// Errors returned by the cloud's public APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// The account has used all of its unique placement-score queries for
    /// the trailing 24 hours (paper Section 3.1: "an account can issue a
    /// maximum of 50 unique queries in 24 hours").
    QueryLimitExceeded {
        /// The account that hit the limit.
        account: String,
        /// The limit that was hit.
        limit: usize,
    },
    /// A request parameter was invalid.
    InvalidParameter {
        /// Which parameter.
        parameter: &'static str,
        /// What was wrong with it.
        reason: String,
    },
    /// A named entity (region, instance type) does not exist.
    UnknownEntity {
        /// Entity kind.
        kind: &'static str,
        /// The unknown name.
        name: String,
    },
    /// A pagination token was malformed or expired.
    BadPageToken,
    /// The advisor web page could not be scraped.
    ScrapeFailed {
        /// What the scraper choked on.
        detail: String,
    },
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::QueryLimitExceeded { account, limit } => write!(
                f,
                "account {account:?} exceeded its limit of {limit} unique placement-score queries in 24 hours"
            ),
            ApiError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid parameter {parameter}: {reason}")
            }
            ApiError::UnknownEntity { kind, name } => write!(f, "unknown {kind}: {name:?}"),
            ApiError::BadPageToken => write!(f, "malformed or expired page token"),
            ApiError::ScrapeFailed { detail } => {
                write!(f, "failed to scrape advisor page: {detail}")
            }
        }
    }
}

impl Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = ApiError::QueryLimitExceeded {
            account: "a".into(),
            limit: 50,
        };
        assert!(e.to_string().contains("50 unique"));
        assert_eq!(ApiError::BadPageToken.to_string(), "malformed or expired page token");
    }
}
