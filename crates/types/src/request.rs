//! The spot request lifecycle (paper Table 1).
//!
//! | Status             | Description                                            |
//! |--------------------|--------------------------------------------------------|
//! | Pending Evaluation | A valid spot request is submitted                      |
//! | Holding            | Some request constraints cannot be met                 |
//! | Fulfilled          | All constraints met; instance running                  |
//! | Terminal           | Request disabled (outbid, capacity, user, ...)         |
//!
//! [`RequestState`] encodes the states and [`RequestState::can_transition_to`]
//! the legal transitions; [`SpotRequest`] tracks one request's history so the
//! fulfillment experiments of Section 5.4 can measure time-to-fulfillment and
//! time-to-interruption.

use crate::price::SpotPrice;
use crate::region::AzId;
use crate::time::{SimDuration, SimTime};
use crate::InstanceTypeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The status of a spot instance request, per Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RequestState {
    /// A valid spot request has been submitted and is being evaluated.
    PendingEvaluation,
    /// Some request constraint cannot currently be met (price too low,
    /// capacity unavailable, ...); the request waits.
    Holding,
    /// All constraints are met and an instance is running.
    Fulfilled,
    /// The request is disabled: outbid, capacity reclaimed, or cancelled by
    /// the user.
    Terminal,
}

impl RequestState {
    /// All states in lifecycle order.
    pub const ALL: [RequestState; 4] = [
        RequestState::PendingEvaluation,
        RequestState::Holding,
        RequestState::Fulfilled,
        RequestState::Terminal,
    ];

    /// The status label AWS displays, e.g. `"pending-evaluation"`.
    pub fn label(self) -> &'static str {
        match self {
            RequestState::PendingEvaluation => "pending-evaluation",
            RequestState::Holding => "holding",
            RequestState::Fulfilled => "fulfilled",
            RequestState::Terminal => "terminal",
        }
    }

    /// The description column of Table 1.
    pub fn description(self) -> &'static str {
        match self {
            RequestState::PendingEvaluation => "A valid spot request is submitted",
            RequestState::Holding => {
                "Some request constraints cannot be met (price, location, resource availability)"
            }
            RequestState::Fulfilled => {
                "All the spot request constraints are met, and instance status being updated to running"
            }
            RequestState::Terminal => {
                "A spot request is disabled possibly by price outbid, resource unavailability, user"
            }
        }
    }

    /// Whether the lifecycle may move from `self` directly to `next`.
    ///
    /// Legal transitions: `PendingEvaluation` → {`Holding`, `Fulfilled`,
    /// `Terminal`}, `Holding` → {`Fulfilled`, `Terminal`}, `Fulfilled` →
    /// {`Terminal`}, and — for *persistent* requests only, which re-enter
    /// evaluation after an interruption — `Fulfilled`/`Holding`/`Terminal` →
    /// `PendingEvaluation` is handled by [`SpotRequest::resubmit`], not here.
    pub fn can_transition_to(self, next: RequestState) -> bool {
        use RequestState::*;
        matches!(
            (self, next),
            (PendingEvaluation, Holding)
                | (PendingEvaluation, Fulfilled)
                | (PendingEvaluation, Terminal)
                | (Holding, Fulfilled)
                | (Holding, Terminal)
                | (Fulfilled, Terminal)
        )
    }

    /// Whether this state is final for a non-persistent request.
    pub fn is_terminal(self) -> bool {
        self == RequestState::Terminal
    }
}

impl fmt::Display for RequestState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a fulfilled request left the `Fulfilled` state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InterruptionReason {
    /// The spot price rose above the bid price.
    PriceOutbid,
    /// The provider reclaimed capacity.
    CapacityReclaim,
    /// The user cancelled the request.
    UserCancelled,
}

impl fmt::Display for InterruptionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterruptionReason::PriceOutbid => "price-outbid",
            InterruptionReason::CapacityReclaim => "capacity-reclaim",
            InterruptionReason::UserCancelled => "user-cancelled",
        })
    }
}

/// Configuration of a spot instance request.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpotRequestConfig {
    /// Requested instance type.
    pub instance_type: InstanceTypeId,
    /// Target availability zone.
    pub az: AzId,
    /// Maximum hourly price the requester will pay. The paper's experiments
    /// set the bid equal to the on-demand price (Section 5.4, citing its
    /// reference 45, "How not to bid the cloud").
    pub bid: SpotPrice,
    /// Number of instances requested.
    pub count: u32,
    /// Whether the request is *persistent*: re-submitted automatically after
    /// an interruption, as in the paper's 24-hour experiments.
    pub persistent: bool,
}

/// One state-change event in a request's history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestEvent {
    /// When the transition happened.
    pub at: SimTime,
    /// The state entered.
    pub state: RequestState,
}

/// A spot instance request with its full state history.
///
/// The history is what the Section 5.4 experiments record "every five
/// seconds"; [`SpotRequest::fulfillment_latency`] and
/// [`SpotRequest::first_run_duration`] derive the Figure 11 metrics from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotRequest {
    config: SpotRequestConfig,
    state: RequestState,
    history: Vec<RequestEvent>,
    interruptions: u32,
}

impl SpotRequest {
    /// Submits a new request at time `at`; it starts in
    /// [`RequestState::PendingEvaluation`].
    pub fn submit(config: SpotRequestConfig, at: SimTime) -> Self {
        SpotRequest {
            config,
            state: RequestState::PendingEvaluation,
            history: vec![RequestEvent {
                at,
                state: RequestState::PendingEvaluation,
            }],
            interruptions: 0,
        }
    }

    /// The request's configuration.
    pub fn config(&self) -> &SpotRequestConfig {
        &self.config
    }

    /// The current state.
    pub fn state(&self) -> RequestState {
        self.state
    }

    /// The full state-change history, oldest first.
    pub fn history(&self) -> &[RequestEvent] {
        &self.history
    }

    /// Number of interruptions (transitions out of `Fulfilled` not caused by
    /// the user) observed so far.
    pub fn interruptions(&self) -> u32 {
        self.interruptions
    }

    /// Moves the request to `next` at time `at`.
    ///
    /// # Errors
    ///
    /// Returns the illegal `(from, to)` pair if Table 1 does not allow the
    /// transition.
    pub fn transition(
        &mut self,
        next: RequestState,
        at: SimTime,
    ) -> Result<(), (RequestState, RequestState)> {
        if !self.state.can_transition_to(next) {
            return Err((self.state, next));
        }
        if self.state == RequestState::Fulfilled && next == RequestState::Terminal {
            self.interruptions += 1;
        }
        self.state = next;
        self.history.push(RequestEvent { at, state: next });
        Ok(())
    }

    /// Re-submits a persistent request after an interruption: the request
    /// re-enters `PendingEvaluation`.
    ///
    /// # Panics
    ///
    /// Panics if the request is not persistent.
    pub fn resubmit(&mut self, at: SimTime) {
        assert!(
            self.config.persistent,
            "resubmit is only valid for persistent requests"
        );
        self.state = RequestState::PendingEvaluation;
        self.history.push(RequestEvent {
            at,
            state: RequestState::PendingEvaluation,
        });
    }

    /// Time from submission until the *first* fulfillment, or `None` if the
    /// request was never fulfilled (Figure 11a).
    pub fn fulfillment_latency(&self) -> Option<SimDuration> {
        let submitted = self.history.first()?.at;
        self.history
            .iter()
            .find(|e| e.state == RequestState::Fulfilled)
            .map(|e| e.at.since(submitted))
    }

    /// Duration of the first fulfilled run: from first fulfillment to the
    /// next state change, or `None` if never fulfilled or still running
    /// (Figure 11b).
    pub fn first_run_duration(&self) -> Option<SimDuration> {
        let idx = self
            .history
            .iter()
            .position(|e| e.state == RequestState::Fulfilled)?;
        let start = self.history[idx].at;
        self.history.get(idx + 1).map(|e| e.at.since(start))
    }

    /// Whether the request was ever fulfilled.
    pub fn was_fulfilled(&self) -> bool {
        self.history
            .iter()
            .any(|e| e.state == RequestState::Fulfilled)
    }

    /// Whether the request was interrupted at least once.
    pub fn was_interrupted(&self) -> bool {
        self.interruptions > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(persistent: bool) -> SpotRequestConfig {
        SpotRequestConfig {
            instance_type: InstanceTypeId(0),
            az: AzId(0),
            bid: SpotPrice::from_usd(1.0).unwrap(),
            count: 1,
            persistent,
        }
    }

    #[test]
    fn table1_legal_transitions() {
        use RequestState::*;
        assert!(PendingEvaluation.can_transition_to(Holding));
        assert!(PendingEvaluation.can_transition_to(Fulfilled));
        assert!(PendingEvaluation.can_transition_to(Terminal));
        assert!(Holding.can_transition_to(Fulfilled));
        assert!(Holding.can_transition_to(Terminal));
        assert!(Fulfilled.can_transition_to(Terminal));
    }

    #[test]
    fn table1_illegal_transitions() {
        use RequestState::*;
        assert!(!Terminal.can_transition_to(Fulfilled));
        assert!(!Terminal.can_transition_to(PendingEvaluation));
        assert!(!Fulfilled.can_transition_to(Holding));
        assert!(!Fulfilled.can_transition_to(PendingEvaluation));
        assert!(!Holding.can_transition_to(PendingEvaluation));
        for s in RequestState::ALL {
            assert!(!s.can_transition_to(s), "{s} -> {s} must be illegal");
        }
    }

    #[test]
    fn fulfillment_latency_measures_first_fulfillment() {
        let mut r = SpotRequest::submit(config(false), SimTime::from_secs(100));
        assert_eq!(r.fulfillment_latency(), None);
        r.transition(RequestState::Holding, SimTime::from_secs(110))
            .unwrap();
        r.transition(RequestState::Fulfilled, SimTime::from_secs(160))
            .unwrap();
        assert_eq!(r.fulfillment_latency(), Some(SimDuration::from_secs(60)));
        assert!(r.was_fulfilled());
    }

    #[test]
    fn interruption_counting_and_run_duration() {
        let mut r = SpotRequest::submit(config(true), SimTime::EPOCH);
        r.transition(RequestState::Fulfilled, SimTime::from_secs(5))
            .unwrap();
        r.transition(RequestState::Terminal, SimTime::from_secs(3605))
            .unwrap();
        assert_eq!(r.interruptions(), 1);
        assert!(r.was_interrupted());
        assert_eq!(r.first_run_duration(), Some(SimDuration::from_secs(3600)));

        // Persistent requests can resubmit and be fulfilled again.
        r.resubmit(SimTime::from_secs(3610));
        assert_eq!(r.state(), RequestState::PendingEvaluation);
        r.transition(RequestState::Fulfilled, SimTime::from_secs(3620))
            .unwrap();
        // First-run metrics are unchanged by later cycles.
        assert_eq!(r.first_run_duration(), Some(SimDuration::from_secs(3600)));
        assert_eq!(r.fulfillment_latency(), Some(SimDuration::from_secs(5)));
    }

    #[test]
    fn illegal_transition_is_reported() {
        let mut r = SpotRequest::submit(config(false), SimTime::EPOCH);
        r.transition(RequestState::Terminal, SimTime::from_secs(1))
            .unwrap();
        let err = r
            .transition(RequestState::Fulfilled, SimTime::from_secs(2))
            .unwrap_err();
        assert_eq!(err, (RequestState::Terminal, RequestState::Fulfilled));
    }

    #[test]
    #[should_panic(expected = "persistent")]
    fn resubmit_requires_persistent() {
        let mut r = SpotRequest::submit(config(false), SimTime::EPOCH);
        r.resubmit(SimTime::from_secs(1));
    }

    #[test]
    fn table1_rows_render() {
        for s in RequestState::ALL {
            assert!(!s.label().is_empty());
            assert!(!s.description().is_empty());
        }
    }
}
