//! Deterministic name-based hashing.
//!
//! The catalog and the cloud simulator derive all of their "random-looking"
//! structure (support matrices, per-pool capacity parameters, price
//! multipliers) from stable hashes of entity names, so that every build and
//! every run sees the identical cloud. [`hash01`] and [`hash_u64`] are the
//! shared primitives.

/// FNV-1a over a byte slice.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic hash of a sequence of strings to a `u64`.
///
/// Parts are separated so that `["a", "b"]` and `["ab"]` hash differently.
pub fn hash_u64(parts: &[&str]) -> u64 {
    let mut buf = Vec::with_capacity(parts.iter().map(|p| p.len() + 1).sum());
    for p in parts {
        buf.extend_from_slice(p.as_bytes());
        buf.push(0x1f);
    }
    fnv1a(&buf)
}

/// Deterministic hash of a sequence of strings to a uniform value in
/// `[0, 1)`.
pub fn hash01(parts: &[&str]) -> f64 {
    (hash_u64(parts) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash01_in_unit_interval() {
        for i in 0..100 {
            let v = hash01(&["k", &i.to_string()]);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn part_boundaries_matter() {
        assert_ne!(hash_u64(&["a", "b"]), hash_u64(&["ab"]));
        assert_ne!(hash_u64(&["a", "b"]), hash_u64(&["ab", ""]));
    }

    #[test]
    fn stable_across_calls() {
        assert_eq!(hash_u64(&["x"]), hash_u64(&["x"]));
    }
}
