//! Spot dataset value types: placement scores and interruption buckets.
//!
//! Two of the three spot datasets carry discrete "scores":
//!
//! * The **spot placement score** ([`PlacementScore`]) is an integer from 1
//!   to 10 returned by the placement-score API; the paper observed that
//!   queries naming a *single* instance type never return more than 3
//!   (Section 5.2).
//! * The **spot instance advisor** reports the preceding month's
//!   interruption frequency as one of five buckets ([`InterruptionBucket`]).
//!   Section 5 converts those buckets into the *interruption-free score*
//!   ([`InterruptionFreeScore`]): `<5%` → 3.0 down to `>20%` → 1.0 in steps
//!   of 0.5, so that both datasets share the 1.0–3.0 range.

use crate::error::TypesError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A spot placement score: an integer between 1 and 10, higher meaning a
/// greater likelihood of spot request success.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlacementScore(u8);

impl PlacementScore {
    /// The minimum score the API can return.
    pub const MIN: PlacementScore = PlacementScore(1);
    /// The maximum score the API can return (only observed for composite,
    /// multi-type queries).
    pub const MAX: PlacementScore = PlacementScore(10);
    /// The maximum score observed for single-instance-type queries
    /// (paper Section 5.2).
    pub const SINGLE_TYPE_MAX: PlacementScore = PlacementScore(3);

    /// Creates a placement score.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::OutOfRange`] unless `1 <= value <= 10`.
    pub fn new(value: u8) -> Result<Self, TypesError> {
        if (1..=10).contains(&value) {
            Ok(PlacementScore(value))
        } else {
            Err(TypesError::OutOfRange {
                what: "placement score",
                expected: "1..=10",
                got: value.to_string(),
            })
        }
    }

    /// The raw integer value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// The score as a float, for comparison with interruption-free scores.
    pub fn as_f64(self) -> f64 {
        f64::from(self.0)
    }

    /// Saturating sum of two scores, clamped to the API maximum of 10.
    pub fn saturating_add(self, other: PlacementScore) -> PlacementScore {
        PlacementScore((self.0 + other.0).min(10))
    }

    /// The coarse High/Medium/Low categorization used by the paper's
    /// fulfillment experiments (Section 5.4): 3 → High, 2 → Medium,
    /// 1 → Low. Scores above 3 (composite queries) also map to High.
    pub fn level(self) -> ScoreLevel {
        match self.0 {
            1 => ScoreLevel::Low,
            2 => ScoreLevel::Medium,
            _ => ScoreLevel::High,
        }
    }
}

impl fmt::Display for PlacementScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The five interruption-frequency buckets published by the spot instance
/// advisor (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InterruptionBucket {
    /// Less than 5% of instances interrupted in the preceding month.
    Lt5,
    /// Between 5% and 10%.
    Pct5To10,
    /// Between 10% and 15%.
    Pct10To15,
    /// Between 15% and 20%.
    Pct15To20,
    /// More than 20%.
    Gt20,
}

impl InterruptionBucket {
    /// All buckets, most reliable first.
    pub const ALL: [InterruptionBucket; 5] = [
        InterruptionBucket::Lt5,
        InterruptionBucket::Pct5To10,
        InterruptionBucket::Pct10To15,
        InterruptionBucket::Pct15To20,
        InterruptionBucket::Gt20,
    ];

    /// Buckets a raw monthly interruption ratio (0.0–1.0).
    pub fn from_ratio(ratio: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&ratio), "ratio {ratio} out of [0,1]");
        if ratio < 0.05 {
            InterruptionBucket::Lt5
        } else if ratio < 0.10 {
            InterruptionBucket::Pct5To10
        } else if ratio < 0.15 {
            InterruptionBucket::Pct10To15
        } else if ratio < 0.20 {
            InterruptionBucket::Pct15To20
        } else {
            InterruptionBucket::Gt20
        }
    }

    /// The advisor's display label, e.g. `"<5%"`.
    pub fn label(self) -> &'static str {
        match self {
            InterruptionBucket::Lt5 => "<5%",
            InterruptionBucket::Pct5To10 => "5-10%",
            InterruptionBucket::Pct10To15 => "10-15%",
            InterruptionBucket::Pct15To20 => "15-20%",
            InterruptionBucket::Gt20 => ">20%",
        }
    }

    /// Converts the bucket to the paper's interruption-free score
    /// (Section 5: `<5%` → 3.0, then 2.5, 2.0, 1.5, `>20%` → 1.0).
    pub fn interruption_free_score(self) -> InterruptionFreeScore {
        match self {
            InterruptionBucket::Lt5 => InterruptionFreeScore::S30,
            InterruptionBucket::Pct5To10 => InterruptionFreeScore::S25,
            InterruptionBucket::Pct10To15 => InterruptionFreeScore::S20,
            InterruptionBucket::Pct15To20 => InterruptionFreeScore::S15,
            InterruptionBucket::Gt20 => InterruptionFreeScore::S10,
        }
    }
}

impl fmt::Display for InterruptionBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The interruption-free score: the advisor bucket mapped onto the placement
/// score's 1.0–3.0 range (higher = more stable), in steps of 0.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InterruptionFreeScore {
    /// 1.0 — interruption frequency above 20%.
    S10,
    /// 1.5.
    S15,
    /// 2.0.
    S20,
    /// 2.5.
    S25,
    /// 3.0 — interruption frequency below 5%.
    S30,
}

impl InterruptionFreeScore {
    /// All score values, least stable first.
    pub const ALL: [InterruptionFreeScore; 5] = [
        InterruptionFreeScore::S10,
        InterruptionFreeScore::S15,
        InterruptionFreeScore::S20,
        InterruptionFreeScore::S25,
        InterruptionFreeScore::S30,
    ];

    /// The numeric score value (1.0, 1.5, 2.0, 2.5, or 3.0).
    pub fn as_f64(self) -> f64 {
        match self {
            InterruptionFreeScore::S10 => 1.0,
            InterruptionFreeScore::S15 => 1.5,
            InterruptionFreeScore::S20 => 2.0,
            InterruptionFreeScore::S25 => 2.5,
            InterruptionFreeScore::S30 => 3.0,
        }
    }

    /// The advisor bucket this score came from.
    pub fn bucket(self) -> InterruptionBucket {
        match self {
            InterruptionFreeScore::S10 => InterruptionBucket::Gt20,
            InterruptionFreeScore::S15 => InterruptionBucket::Pct15To20,
            InterruptionFreeScore::S20 => InterruptionBucket::Pct10To15,
            InterruptionFreeScore::S25 => InterruptionBucket::Pct5To10,
            InterruptionFreeScore::S30 => InterruptionBucket::Lt5,
        }
    }

    /// High/Medium/Low categorization per Section 5.4 (3.0 → High,
    /// 2.0 → Medium, 1.0 → Low; the half-steps round toward Medium).
    pub fn level(self) -> ScoreLevel {
        match self {
            InterruptionFreeScore::S30 => ScoreLevel::High,
            InterruptionFreeScore::S10 => ScoreLevel::Low,
            _ => ScoreLevel::Medium,
        }
    }
}

impl fmt::Display for InterruptionFreeScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}", self.as_f64())
    }
}

/// Coarse High/Medium/Low categorization of either score, used to form the
/// H-H, H-L, M-M, L-H, L-L experiment strata of Section 5.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ScoreLevel {
    /// Score 1.0.
    Low,
    /// Score 2.0 (and the advisor half-steps 1.5 / 2.5).
    Medium,
    /// Score 3.0.
    High,
}

impl ScoreLevel {
    /// Single-letter code used in stratum names (`H`, `M`, `L`).
    pub fn letter(self) -> char {
        match self {
            ScoreLevel::High => 'H',
            ScoreLevel::Medium => 'M',
            ScoreLevel::Low => 'L',
        }
    }
}

impl fmt::Display for ScoreLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_score_bounds() {
        assert!(PlacementScore::new(0).is_err());
        assert!(PlacementScore::new(11).is_err());
        assert_eq!(PlacementScore::new(3).unwrap().value(), 3);
        assert_eq!(PlacementScore::MIN.value(), 1);
        assert_eq!(PlacementScore::MAX.value(), 10);
    }

    #[test]
    fn placement_score_levels() {
        assert_eq!(PlacementScore::new(1).unwrap().level(), ScoreLevel::Low);
        assert_eq!(PlacementScore::new(2).unwrap().level(), ScoreLevel::Medium);
        assert_eq!(PlacementScore::new(3).unwrap().level(), ScoreLevel::High);
        assert_eq!(PlacementScore::new(9).unwrap().level(), ScoreLevel::High);
    }

    #[test]
    fn saturating_add_clamps_at_api_max() {
        let s = PlacementScore::new(7).unwrap();
        assert_eq!(
            s.saturating_add(PlacementScore::new(9).unwrap()).value(),
            10
        );
        assert_eq!(s.saturating_add(PlacementScore::new(2).unwrap()).value(), 9);
    }

    #[test]
    fn bucket_boundaries_match_advisor_categories() {
        assert_eq!(InterruptionBucket::from_ratio(0.0), InterruptionBucket::Lt5);
        assert_eq!(
            InterruptionBucket::from_ratio(0.049),
            InterruptionBucket::Lt5
        );
        assert_eq!(
            InterruptionBucket::from_ratio(0.05),
            InterruptionBucket::Pct5To10
        );
        assert_eq!(
            InterruptionBucket::from_ratio(0.149),
            InterruptionBucket::Pct10To15
        );
        assert_eq!(
            InterruptionBucket::from_ratio(0.2),
            InterruptionBucket::Gt20
        );
        assert_eq!(
            InterruptionBucket::from_ratio(1.0),
            InterruptionBucket::Gt20
        );
    }

    #[test]
    fn score_conversion_matches_paper_mapping() {
        // Section 5: lowest interruption frequency -> 3.0, highest -> 1.0,
        // with 2.5, 2.0, 1.5 in between.
        let expected = [3.0, 2.5, 2.0, 1.5, 1.0];
        for (bucket, want) in InterruptionBucket::ALL.iter().zip(expected) {
            assert_eq!(bucket.interruption_free_score().as_f64(), want);
        }
    }

    #[test]
    fn bucket_score_roundtrip() {
        for b in InterruptionBucket::ALL {
            assert_eq!(b.interruption_free_score().bucket(), b);
        }
    }

    #[test]
    fn if_score_levels() {
        assert_eq!(InterruptionFreeScore::S30.level(), ScoreLevel::High);
        assert_eq!(InterruptionFreeScore::S25.level(), ScoreLevel::Medium);
        assert_eq!(InterruptionFreeScore::S20.level(), ScoreLevel::Medium);
        assert_eq!(InterruptionFreeScore::S15.level(), ScoreLevel::Medium);
        assert_eq!(InterruptionFreeScore::S10.level(), ScoreLevel::Low);
    }

    #[test]
    fn displays() {
        assert_eq!(InterruptionBucket::Lt5.to_string(), "<5%");
        assert_eq!(InterruptionFreeScore::S25.to_string(), "2.5");
        assert_eq!(ScoreLevel::High.to_string(), "H");
        assert_eq!(PlacementScore::new(3).unwrap().to_string(), "3");
    }
}
