//! Instance families, sizes, and types.
//!
//! The paper groups AWS instance classes into five families (Section 5.1):
//! *general* (T, M, A), *compute-optimized* (C), *memory-optimized*
//! (R, X, Z), *accelerated-computing* (P, G, DL, Inf, F, VT), and
//! *storage-optimized* (I, D, H). [`InstanceFamily`] models the letter
//! class, [`InstanceGroup`] the five-way grouping, and [`InstanceType`] a
//! concrete purchasable type such as `p3.2xlarge`.

use crate::error::ParseEntityError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Compact index of an instance type within a [`crate::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceTypeId(pub u32);

/// The letter class of an instance type (`T`, `M`, `C`, `P`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum InstanceFamily {
    T,
    M,
    A,
    C,
    R,
    X,
    Z,
    P,
    G,
    Dl,
    Inf,
    F,
    Vt,
    I,
    D,
    H,
}

impl InstanceFamily {
    /// All families, in the paper's presentation order (Figure 3's vertical
    /// axis): general, compute-optimized, memory-optimized,
    /// accelerated-computing, storage-optimized.
    pub const ALL: [InstanceFamily; 16] = [
        InstanceFamily::T,
        InstanceFamily::M,
        InstanceFamily::A,
        InstanceFamily::C,
        InstanceFamily::R,
        InstanceFamily::X,
        InstanceFamily::Z,
        InstanceFamily::P,
        InstanceFamily::G,
        InstanceFamily::Dl,
        InstanceFamily::Inf,
        InstanceFamily::F,
        InstanceFamily::Vt,
        InstanceFamily::I,
        InstanceFamily::D,
        InstanceFamily::H,
    ];

    /// The five-way grouping this family belongs to.
    pub fn group(self) -> InstanceGroup {
        use InstanceFamily::*;
        match self {
            T | M | A => InstanceGroup::General,
            C => InstanceGroup::ComputeOptimized,
            R | X | Z => InstanceGroup::MemoryOptimized,
            P | G | Dl | Inf | F | Vt => InstanceGroup::AcceleratedComputing,
            I | D | H => InstanceGroup::StorageOptimized,
        }
    }

    /// Whether this family belongs to the accelerated-computing group, which
    /// the paper finds has "noticeably lower availability than other
    /// instance families".
    pub fn is_accelerated(self) -> bool {
        self.group() == InstanceGroup::AcceleratedComputing
    }

    /// The lowercase prefix this family uses in type names (`"t"`, `"dl"`,
    /// `"inf"`, ...).
    pub fn prefix(self) -> &'static str {
        use InstanceFamily::*;
        match self {
            T => "t",
            M => "m",
            A => "a",
            C => "c",
            R => "r",
            X => "x",
            Z => "z",
            P => "p",
            G => "g",
            Dl => "dl",
            Inf => "inf",
            F => "f",
            Vt => "vt",
            I => "i",
            D => "d",
            H => "h",
        }
    }
}

impl fmt::Display for InstanceFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// The five instance-family groups used throughout the paper's analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InstanceGroup {
    /// T, M, A.
    General,
    /// C.
    ComputeOptimized,
    /// R, X, Z.
    MemoryOptimized,
    /// P, G, DL, Inf, F, VT.
    AcceleratedComputing,
    /// I, D, H.
    StorageOptimized,
}

impl InstanceGroup {
    /// All groups in presentation order.
    pub const ALL: [InstanceGroup; 5] = [
        InstanceGroup::General,
        InstanceGroup::ComputeOptimized,
        InstanceGroup::MemoryOptimized,
        InstanceGroup::AcceleratedComputing,
        InstanceGroup::StorageOptimized,
    ];

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            InstanceGroup::General => "general",
            InstanceGroup::ComputeOptimized => "compute-optimized",
            InstanceGroup::MemoryOptimized => "memory-optimized",
            InstanceGroup::AcceleratedComputing => "accelerated-computing",
            InstanceGroup::StorageOptimized => "storage-optimized",
        }
    }
}

impl fmt::Display for InstanceGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The size suffix of an instance type (`nano` ... `32xlarge`, `metal`).
///
/// Figure 5 of the paper orders sizes by their resource footprint; the
/// [`InstanceSize::weight`] method returns that ordering's numeric weight
/// (number of `xlarge`-equivalents, with sub-`xlarge` sizes as fractions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum InstanceSize {
    Nano,
    Micro,
    Small,
    Medium,
    Large,
    Xlarge,
    X2large,
    X3large,
    X4large,
    X6large,
    X8large,
    X9large,
    X10large,
    X12large,
    X16large,
    X18large,
    X24large,
    X32large,
    Metal,
}

impl InstanceSize {
    /// All sizes, smallest first.
    pub const ALL: [InstanceSize; 19] = [
        InstanceSize::Nano,
        InstanceSize::Micro,
        InstanceSize::Small,
        InstanceSize::Medium,
        InstanceSize::Large,
        InstanceSize::Xlarge,
        InstanceSize::X2large,
        InstanceSize::X3large,
        InstanceSize::X4large,
        InstanceSize::X6large,
        InstanceSize::X8large,
        InstanceSize::X9large,
        InstanceSize::X10large,
        InstanceSize::X12large,
        InstanceSize::X16large,
        InstanceSize::X18large,
        InstanceSize::X24large,
        InstanceSize::X32large,
        InstanceSize::Metal,
    ];

    /// The suffix as it appears in a type name, e.g. `"2xlarge"`.
    pub fn suffix(self) -> &'static str {
        use InstanceSize::*;
        match self {
            Nano => "nano",
            Micro => "micro",
            Small => "small",
            Medium => "medium",
            Large => "large",
            Xlarge => "xlarge",
            X2large => "2xlarge",
            X3large => "3xlarge",
            X4large => "4xlarge",
            X6large => "6xlarge",
            X8large => "8xlarge",
            X9large => "9xlarge",
            X10large => "10xlarge",
            X12large => "12xlarge",
            X16large => "16xlarge",
            X18large => "18xlarge",
            X24large => "24xlarge",
            X32large => "32xlarge",
            Metal => "metal",
        }
    }

    /// Resource weight in `xlarge` units (an `xlarge` is 1.0; a `metal`
    /// host counts as a large multiple). Used by the capacity model: larger
    /// sizes consume more of a pool and are harder to place, reproducing the
    /// size trend of Figure 5.
    pub fn weight(self) -> f64 {
        use InstanceSize::*;
        match self {
            Nano => 0.0625,
            Micro => 0.125,
            Small => 0.25,
            Medium => 0.5,
            Large => 0.5,
            Xlarge => 1.0,
            X2large => 2.0,
            X3large => 3.0,
            X4large => 4.0,
            X6large => 6.0,
            X8large => 8.0,
            X9large => 9.0,
            X10large => 10.0,
            X12large => 12.0,
            X16large => 16.0,
            X18large => 18.0,
            X24large => 24.0,
            X32large => 32.0,
            Metal => 24.0,
        }
    }

    /// Parses a size suffix.
    ///
    /// # Errors
    ///
    /// Returns [`ParseEntityError`] for unknown suffixes.
    pub fn parse(s: &str) -> Result<Self, ParseEntityError> {
        Self::ALL
            .iter()
            .copied()
            .find(|sz| sz.suffix() == s)
            .ok_or_else(|| ParseEntityError::new("instance size", s))
    }
}

impl fmt::Display for InstanceSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

impl FromStr for InstanceSize {
    type Err = ParseEntityError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        InstanceSize::parse(s)
    }
}

/// A concrete instance type such as `p3.2xlarge`.
///
/// An instance type is identified by a *class* (family letter + generation +
/// variant suffix, e.g. `g4dn`) and a [`InstanceSize`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InstanceType {
    family: InstanceFamily,
    class: String,
    size: InstanceSize,
}

impl InstanceType {
    /// Creates an instance type from a class string (e.g. `"g4dn"`) and a
    /// size.
    ///
    /// # Errors
    ///
    /// Returns [`ParseEntityError`] if `class` does not start with a known
    /// family prefix followed by a generation digit.
    pub fn new(class: impl Into<String>, size: InstanceSize) -> Result<Self, ParseEntityError> {
        let class = class.into();
        let family = Self::family_of_class(&class)
            .ok_or_else(|| ParseEntityError::new("instance class", class.clone()))?;
        Ok(InstanceType {
            family,
            class,
            size,
        })
    }

    /// Determines the family of a class string by longest-prefix match on
    /// the leading letter run (`"inf1"` → `Inf`, not `I`; `"im4gn"` → `I`).
    fn family_of_class(class: &str) -> Option<InstanceFamily> {
        let letters_end = class
            .find(|c: char| !c.is_ascii_lowercase())
            .unwrap_or(class.len());
        let letters = &class[..letters_end];
        if letters.is_empty() || !class[letters_end..].starts_with(|c: char| c.is_ascii_digit()) {
            return None;
        }
        let mut best: Option<InstanceFamily> = None;
        for fam in InstanceFamily::ALL {
            let p = fam.prefix();
            if letters.starts_with(p) && best.is_none_or(|b| b.prefix().len() < p.len()) {
                best = Some(fam);
            }
        }
        best
    }

    /// Parses a full type name like `"p3.2xlarge"`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseEntityError`] if the name is not
    /// `<class>.<size>` with a known class prefix and size suffix.
    pub fn parse(name: &str) -> Result<Self, ParseEntityError> {
        let (class, size) = name
            .split_once('.')
            .ok_or_else(|| ParseEntityError::new("instance type", name))?;
        let size =
            InstanceSize::parse(size).map_err(|_| ParseEntityError::new("instance type", name))?;
        InstanceType::new(class, size).map_err(|_| ParseEntityError::new("instance type", name))
    }

    /// The family letter class.
    pub fn family(&self) -> InstanceFamily {
        self.family
    }

    /// The class string (family + generation + variant), e.g. `"g4dn"`.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The size suffix.
    pub fn size(&self) -> InstanceSize {
        self.size
    }

    /// The full type name, e.g. `"g4dn.xlarge"`.
    pub fn name(&self) -> String {
        format!("{}.{}", self.class, self.size.suffix())
    }

    /// The hardware generation digit of the class (e.g. `4` for `g4dn`).
    pub fn generation(&self) -> u8 {
        self.class
            .chars()
            .find_map(|c| c.to_digit(10))
            .expect("validated at construction") as u8
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.size.suffix())
    }
}

impl FromStr for InstanceType {
    type Err = ParseEntityError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        InstanceType::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_grouping_matches_paper() {
        assert_eq!(InstanceFamily::T.group(), InstanceGroup::General);
        assert_eq!(InstanceFamily::C.group(), InstanceGroup::ComputeOptimized);
        assert_eq!(InstanceFamily::X.group(), InstanceGroup::MemoryOptimized);
        assert_eq!(
            InstanceFamily::Inf.group(),
            InstanceGroup::AcceleratedComputing
        );
        assert_eq!(InstanceFamily::D.group(), InstanceGroup::StorageOptimized);
        assert!(InstanceFamily::P.is_accelerated());
        assert!(!InstanceFamily::M.is_accelerated());
    }

    #[test]
    fn longest_prefix_wins_for_ambiguous_classes() {
        // "inf1" must resolve to Inf, not I; "dl1" to Dl, not D.
        assert_eq!(
            InstanceType::parse("inf1.xlarge").unwrap().family(),
            InstanceFamily::Inf
        );
        assert_eq!(
            InstanceType::parse("dl1.24xlarge").unwrap().family(),
            InstanceFamily::Dl
        );
        assert_eq!(
            InstanceType::parse("i3.large").unwrap().family(),
            InstanceFamily::I
        );
        assert_eq!(
            InstanceType::parse("d2.xlarge").unwrap().family(),
            InstanceFamily::D
        );
    }

    #[test]
    fn parse_roundtrips_through_display() {
        for name in ["p3.2xlarge", "t3.nano", "m5.metal", "g4dn.16xlarge"] {
            let it = InstanceType::parse(name).unwrap();
            assert_eq!(it.to_string(), name);
            assert_eq!(it.name(), name);
        }
    }

    #[test]
    fn parse_rejects_malformed_names() {
        for bad in ["p3", "p3.", ".xlarge", "q9.xlarge", "p.xlarge", "p3.huge"] {
            assert!(InstanceType::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn generation_extracts_first_digit() {
        assert_eq!(InstanceType::parse("g4dn.xlarge").unwrap().generation(), 4);
        assert_eq!(InstanceType::parse("x1e.32xlarge").unwrap().generation(), 1);
    }

    #[test]
    fn size_weights_are_monotone_through_xlarge_multiples() {
        let mut prev = 0.0;
        for sz in [
            InstanceSize::Xlarge,
            InstanceSize::X2large,
            InstanceSize::X4large,
            InstanceSize::X8large,
            InstanceSize::X12large,
            InstanceSize::X16large,
            InstanceSize::X24large,
            InstanceSize::X32large,
        ] {
            assert!(sz.weight() > prev);
            prev = sz.weight();
        }
    }

    #[test]
    fn size_parse_roundtrip() {
        for sz in InstanceSize::ALL {
            assert_eq!(InstanceSize::parse(sz.suffix()).unwrap(), sz);
        }
        assert!(InstanceSize::parse("gigantic").is_err());
    }
}
