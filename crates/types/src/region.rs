//! Geographic entities: regions and availability zones.
//!
//! The paper's measurement covers "about ... 17 regions, and 63 availability
//! zones" (Section 3.1). [`Region`] and [`Az`] are interned into a
//! [`crate::Catalog`]; the compact [`RegionId`] / [`AzId`] indices are what
//! the rest of the system passes around.

use crate::error::ParseEntityError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Compact index of a region within a [`crate::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u16);

/// Compact index of an availability zone within a [`crate::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AzId(pub u16);

/// A cloud region, e.g. `us-east-1`.
///
/// A region code is "expressed in the continent-coordinate-id combination"
/// (paper Section 5.1), e.g. `ap-northeast-2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    code: String,
}

impl Region {
    /// Creates a region from its code.
    ///
    /// # Errors
    ///
    /// Returns [`ParseEntityError`] if `code` is not of the form
    /// `continent-coordinate-id` (e.g. `us-east-1`), all lowercase ASCII.
    pub fn new(code: impl Into<String>) -> Result<Self, ParseEntityError> {
        let code = code.into();
        if Self::is_valid_code(&code) {
            Ok(Region { code })
        } else {
            Err(ParseEntityError::new("region", code))
        }
    }

    fn is_valid_code(code: &str) -> bool {
        let parts: Vec<&str> = code.split('-').collect();
        parts.len() == 3
            && parts[0].chars().all(|c| c.is_ascii_lowercase())
            && !parts[0].is_empty()
            && parts[1].chars().all(|c| c.is_ascii_lowercase())
            && !parts[1].is_empty()
            && parts[2].chars().all(|c| c.is_ascii_digit())
            && !parts[2].is_empty()
    }

    /// The region code, e.g. `"eu-west-1"`.
    pub fn code(&self) -> &str {
        &self.code
    }

    /// The continent prefix of the code, e.g. `"eu"`.
    pub fn continent(&self) -> &str {
        self.code
            .split('-')
            .next()
            .expect("validated at construction")
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.code)
    }
}

impl FromStr for Region {
    type Err = ParseEntityError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Region::new(s)
    }
}

/// An availability zone within a region, e.g. `us-east-1a`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Az {
    region: RegionId,
    name: String,
}

impl Az {
    /// Creates an availability zone named `name` (e.g. `"us-east-1a"`)
    /// belonging to the region with id `region`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseEntityError`] if `name` does not end in an ASCII
    /// lowercase zone letter.
    pub fn new(region: RegionId, name: impl Into<String>) -> Result<Self, ParseEntityError> {
        let name = name.into();
        match name.chars().last() {
            Some(c) if c.is_ascii_lowercase() && name.len() > 1 => Ok(Az { region, name }),
            _ => Err(ParseEntityError::new("availability zone", name)),
        }
    }

    /// The id of the region this zone belongs to.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The zone name, e.g. `"us-east-1a"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The single-letter zone suffix, e.g. `'a'`.
    pub fn letter(&self) -> char {
        self.name.chars().last().expect("validated at construction")
    }
}

impl fmt::Display for Az {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_roundtrip() {
        let r: Region = "ap-northeast-2".parse().unwrap();
        assert_eq!(r.code(), "ap-northeast-2");
        assert_eq!(r.continent(), "ap");
        assert_eq!(r.to_string(), "ap-northeast-2");
    }

    #[test]
    fn region_rejects_malformed_codes() {
        for bad in [
            "useast1",
            "us-east",
            "us-east-",
            "US-east-1",
            "us-east-1a",
            "",
        ] {
            assert!(Region::new(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn az_carries_region_and_letter() {
        let az = Az::new(RegionId(3), "eu-west-1b").unwrap();
        assert_eq!(az.region(), RegionId(3));
        assert_eq!(az.letter(), 'b');
        assert_eq!(az.to_string(), "eu-west-1b");
    }

    #[test]
    fn az_rejects_names_without_zone_letter() {
        assert!(Az::new(RegionId(0), "us-east-1").is_err());
        assert!(Az::new(RegionId(0), "").is_err());
        assert!(Az::new(RegionId(0), "a").is_err());
    }
}
