//! The instance-type / region / availability-zone catalog.
//!
//! At the time of the paper "there are about 547 instance types, 17 regions,
//! and 63 availability zones in AWS" (Section 3.1). [`Catalog::aws_2022`]
//! reconstructs a catalog of exactly that shape: 547 instance types across
//! the paper's sixteen families, 17 regions, and 63 availability zones,
//! together with a deterministic *support matrix* recording which
//! availability zones offer which instance types (not all do — this is what
//! makes the placement-score query-packing problem of Section 3.2
//! non-trivial) and per-type on-demand prices.
//!
//! The catalog is pure data: all randomness is a deterministic hash of the
//! entity names, so every build of the crate sees the identical cloud.

use crate::error::TypesError;
use crate::instance::{InstanceFamily, InstanceSize, InstanceType, InstanceTypeId};
use crate::price::OnDemandPrice;
use crate::region::{Az, AzId, Region, RegionId};
use std::collections::{BTreeMap, HashMap};

/// A dense bitset recording which (instance type, availability zone) pairs
/// are offered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportMatrix {
    azs: usize,
    bits: Vec<u64>,
}

impl SupportMatrix {
    fn new(types: usize, azs: usize) -> Self {
        let words_per_row = azs.div_ceil(64);
        SupportMatrix {
            azs,
            bits: vec![0; types * words_per_row],
        }
    }

    fn words_per_row(&self) -> usize {
        self.azs.div_ceil(64)
    }

    fn set(&mut self, ty: usize, az: usize) {
        let w = self.words_per_row();
        self.bits[ty * w + az / 64] |= 1 << (az % 64);
    }

    /// Whether instance type `ty` is offered in availability zone `az`.
    pub fn supports(&self, ty: InstanceTypeId, az: AzId) -> bool {
        let w = self.words_per_row();
        let (t, a) = (ty.0 as usize, az.0 as usize);
        self.bits[t * w + a / 64] & (1 << (a % 64)) != 0
    }

    /// Number of availability zones offering instance type `ty`.
    pub fn supported_az_count(&self, ty: InstanceTypeId) -> u32 {
        let w = self.words_per_row();
        let t = ty.0 as usize;
        self.bits[t * w..(t + 1) * w]
            .iter()
            .map(|x| x.count_ones())
            .sum()
    }
}

use crate::hash::hash01;

/// The immutable catalog of regions, availability zones, and instance types.
///
/// Obtain the paper-scale catalog with [`Catalog::aws_2022`] or build a
/// custom one with [`CatalogBuilder`].
#[derive(Debug, Clone)]
pub struct Catalog {
    regions: Vec<Region>,
    azs: Vec<Az>,
    region_azs: Vec<Vec<AzId>>,
    types: Vec<InstanceType>,
    type_names: HashMap<String, InstanceTypeId>,
    region_codes: HashMap<String, RegionId>,
    az_names: HashMap<String, AzId>,
    support: SupportMatrix,
    od_micros: Vec<u64>,
}

impl Catalog {
    /// Builds the AWS catalog as of the paper's measurement period: 547
    /// instance types, 17 regions, 63 availability zones.
    pub fn aws_2022() -> Catalog {
        let mut b = CatalogBuilder::new();
        for &(code, az_count) in AWS_REGIONS {
            b.region(code, az_count);
        }
        for &(class, sizes) in AWS_CLASSES {
            for &size in sizes {
                let ty = InstanceType::new(class, size).expect("catalog class table is valid");
                let usd = od_price_usd(&ty);
                b.instance_type(&ty.name(), usd);
            }
        }
        b.hashed_support(true);
        b.build().expect("builtin catalog data is valid")
    }

    /// All regions, indexed by [`RegionId`].
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// All availability zones, indexed by [`AzId`].
    pub fn azs(&self) -> &[Az] {
        &self.azs
    }

    /// All instance types, indexed by [`InstanceTypeId`].
    pub fn instance_types(&self) -> &[InstanceType] {
        &self.types
    }

    /// The region with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// The availability zone with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn az(&self, id: AzId) -> &Az {
        &self.azs[id.0 as usize]
    }

    /// The instance type with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ty(&self, id: InstanceTypeId) -> &InstanceType {
        &self.types[id.0 as usize]
    }

    /// Looks up an instance type by full name, e.g. `"p3.2xlarge"`.
    pub fn instance_type(&self, name: &str) -> Option<&InstanceType> {
        self.instance_type_id(name).map(|id| self.ty(id))
    }

    /// Looks up an instance type id by full name.
    pub fn instance_type_id(&self, name: &str) -> Option<InstanceTypeId> {
        self.type_names.get(name).copied()
    }

    /// Looks up a region id by code, e.g. `"us-east-1"`.
    pub fn region_id(&self, code: &str) -> Option<RegionId> {
        self.region_codes.get(code).copied()
    }

    /// Looks up an availability-zone id by name, e.g. `"us-east-1a"`.
    pub fn az_id(&self, name: &str) -> Option<AzId> {
        self.az_names.get(name).copied()
    }

    /// The availability zones of region `region`.
    pub fn azs_of_region(&self, region: RegionId) -> &[AzId] {
        &self.region_azs[region.0 as usize]
    }

    /// Iterator over all region ids.
    pub fn region_ids(&self) -> impl Iterator<Item = RegionId> + '_ {
        (0..self.regions.len() as u16).map(RegionId)
    }

    /// Iterator over all availability-zone ids.
    pub fn az_ids(&self) -> impl Iterator<Item = AzId> + '_ {
        (0..self.azs.len() as u16).map(AzId)
    }

    /// Iterator over all instance-type ids.
    pub fn type_ids(&self) -> impl Iterator<Item = InstanceTypeId> + '_ {
        (0..self.types.len() as u32).map(InstanceTypeId)
    }

    /// Whether `ty` is offered in availability zone `az`.
    pub fn supports(&self, ty: InstanceTypeId, az: AzId) -> bool {
        self.support.supports(ty, az)
    }

    /// Whether `ty` is offered in at least one zone of `region`.
    pub fn supports_region(&self, ty: InstanceTypeId, region: RegionId) -> bool {
        self.azs_of_region(region)
            .iter()
            .any(|&az| self.supports(ty, az))
    }

    /// Number of availability zones in `region` offering `ty`.
    pub fn supported_az_count(&self, ty: InstanceTypeId, region: RegionId) -> u32 {
        self.azs_of_region(region)
            .iter()
            .filter(|&&az| self.supports(ty, az))
            .count() as u32
    }

    /// The "nested dictionary" of Section 3.2: for instance type `ty`, a map
    /// from each supporting region to the number of its availability zones
    /// that offer the type. This is the input of the query bin-packing
    /// problem (Figure 1).
    pub fn support_map(&self, ty: InstanceTypeId) -> BTreeMap<RegionId, u32> {
        let mut m = BTreeMap::new();
        for region in self.region_ids() {
            let n = self.supported_az_count(ty, region);
            if n > 0 {
                m.insert(region, n);
            }
        }
        m
    }

    /// All supported (instance type, availability zone) pairs — the
    /// simulator instantiates one capacity pool per pair.
    pub fn supported_pools(&self) -> Vec<(InstanceTypeId, AzId)> {
        let mut v = Vec::new();
        for ty in self.type_ids() {
            for az in self.az_ids() {
                if self.supports(ty, az) {
                    v.push((ty, az));
                }
            }
        }
        v
    }

    /// The on-demand price of `ty` in the baseline region (`us-east-1`).
    ///
    /// # Panics
    ///
    /// Panics if `ty` is out of range.
    pub fn od_price(&self, ty: InstanceTypeId) -> OnDemandPrice {
        OnDemandPrice::from_usd(self.od_micros[ty.0 as usize] as f64 / 1e6)
            .expect("catalog prices are positive")
    }

    /// The on-demand price of `ty` in `region` (regions carry a
    /// deterministic price multiplier between 1.0 and 1.3).
    pub fn od_price_in(&self, ty: InstanceTypeId, region: RegionId) -> OnDemandPrice {
        let base = self.od_micros[ty.0 as usize] as f64 / 1e6;
        let mult = self.region_price_multiplier(region);
        OnDemandPrice::from_usd(base * mult).expect("catalog prices are positive")
    }

    /// The deterministic per-region price multiplier.
    pub fn region_price_multiplier(&self, region: RegionId) -> f64 {
        let code = self.region(region).code();
        if code == "us-east-1" {
            1.0
        } else {
            1.0 + 0.3 * hash01(&["region-price", code])
        }
    }
}

/// Builder for custom [`Catalog`]s (tests and small experiments use this to
/// avoid the full 547-type catalog).
///
/// # Example
///
/// ```
/// use spotlake_types::CatalogBuilder;
///
/// # fn main() -> Result<(), spotlake_types::TypesError> {
/// let mut b = CatalogBuilder::new();
/// b.region("us-test-1", 2).instance_type("m5.large", 0.096);
/// let catalog = b.build()?;
/// assert_eq!(catalog.azs().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CatalogBuilder {
    regions: Vec<(String, u8)>,
    types: Vec<(String, f64)>,
    hashed_support: bool,
}

impl CatalogBuilder {
    /// Creates an empty builder. By default every type is supported in
    /// every availability zone; call [`CatalogBuilder::hashed_support`] for
    /// the deterministic partial-support model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a region with `az_count` availability zones (lettered `a`,
    /// `b`, ...).
    pub fn region(&mut self, code: &str, az_count: u8) -> &mut Self {
        self.regions.push((code.to_owned(), az_count));
        self
    }

    /// Adds an instance type by full name with its baseline on-demand price
    /// in USD per hour.
    pub fn instance_type(&mut self, name: &str, od_usd_per_hour: f64) -> &mut Self {
        self.types.push((name.to_owned(), od_usd_per_hour));
        self
    }

    /// Enables (or disables) the deterministic partial-support model used by
    /// [`Catalog::aws_2022`]; when disabled (the default) every type is
    /// supported everywhere.
    pub fn hashed_support(&mut self, enabled: bool) -> &mut Self {
        self.hashed_support = enabled;
        self
    }

    /// Builds the catalog.
    ///
    /// # Errors
    ///
    /// Returns an error if any region code, AZ count, instance type name, or
    /// price is invalid, or if a name is duplicated.
    pub fn build(&self) -> Result<Catalog, TypesError> {
        let mut regions = Vec::new();
        let mut azs = Vec::new();
        let mut region_azs = Vec::new();
        let mut region_codes = HashMap::new();
        let mut az_names = HashMap::new();

        for (code, az_count) in &self.regions {
            let rid = RegionId(regions.len() as u16);
            let region = Region::new(code.clone())?;
            if region_codes.insert(code.clone(), rid).is_some() {
                return Err(TypesError::UnknownEntity {
                    kind: "duplicate region",
                    name: code.clone(),
                });
            }
            if *az_count == 0 || *az_count > 26 {
                return Err(TypesError::OutOfRange {
                    what: "availability zone count",
                    expected: "1..=26",
                    got: az_count.to_string(),
                });
            }
            let mut ids = Vec::new();
            for i in 0..*az_count {
                let letter = (b'a' + i) as char;
                let name = format!("{code}{letter}");
                let azid = AzId(azs.len() as u16);
                azs.push(Az::new(rid, name.clone())?);
                az_names.insert(name, azid);
                ids.push(azid);
            }
            regions.push(region);
            region_azs.push(ids);
        }

        let mut types = Vec::new();
        let mut type_names = HashMap::new();
        let mut od_micros = Vec::new();
        for (name, usd) in &self.types {
            let tid = InstanceTypeId(types.len() as u32);
            let ty = InstanceType::parse(name)?;
            if type_names.insert(name.clone(), tid).is_some() {
                return Err(TypesError::UnknownEntity {
                    kind: "duplicate instance type",
                    name: name.clone(),
                });
            }
            od_micros.push(OnDemandPrice::from_usd(*usd)?.micros());
            types.push(ty);
        }

        let mut support = SupportMatrix::new(types.len(), azs.len());
        for (t, ty) in types.iter().enumerate() {
            for (a, az) in azs.iter().enumerate() {
                let supported = if self.hashed_support {
                    hashed_supports(ty, &regions[az.region().0 as usize], az)
                } else {
                    true
                };
                if supported {
                    support.set(t, a);
                }
            }
        }

        Ok(Catalog {
            regions,
            azs,
            region_azs,
            types,
            type_names,
            region_codes,
            az_names,
            support,
            od_micros,
        })
    }
}

/// Per-family support breadth: (fraction of regions, fraction of AZs within
/// a supported region). Accelerated and specialty hardware is scarce;
/// previous-generation general-purpose types are everywhere.
fn support_fracs(ty: &InstanceType) -> (f64, f64) {
    use InstanceFamily::*;
    match ty.family() {
        T | M | C | R => {
            if ty.generation() >= 6 {
                (0.55, 0.68)
            } else {
                (1.0, 0.69)
            }
        }
        A => (0.55, 0.70),
        X => (0.45, 0.65),
        Z => (0.38, 0.62),
        P => (0.42, 0.55),
        G => (0.55, 0.60),
        Dl => (0.15, 0.50),
        Inf => (0.42, 0.55),
        F => (0.25, 0.50),
        Vt => (0.20, 0.50),
        I => (0.70, 0.72),
        D => (0.62, 0.68),
        H => (0.33, 0.62),
    }
}

fn hashed_supports(ty: &InstanceType, region: &Region, az: &Az) -> bool {
    let (region_frac, az_frac) = support_fracs(ty);
    // Region support is decided per class so all sizes of a class share the
    // region footprint, as in Figure 1 of the paper.
    let region_supported = region.code() == "us-east-1"
        || hash01(&["region-support", ty.class(), region.code()]) < region_frac;
    if !region_supported {
        return false;
    }
    // Guarantee at least the region's first zone.
    if az.letter() == 'a' {
        return true;
    }
    hash01(&["az-support", ty.class(), az.name()]) < az_frac
}

/// Baseline (us-east-1) on-demand USD/hour for a type: per-family price per
/// `xlarge`-equivalent, scaled by the size weight, with suffix modifiers
/// (AMD cheaper, Graviton cheapest, local-NVMe and network variants dearer).
fn od_price_usd(ty: &InstanceType) -> f64 {
    use InstanceFamily::*;
    let per_xlarge = match ty.family() {
        T => 0.1664,
        M => 0.192,
        A => 0.102,
        C => 0.17,
        R => 0.252,
        X => 0.834,
        Z => 0.372,
        P => 3.06,
        G => 0.526,
        Dl => 0.55,
        Inf => 0.236,
        F => 1.65,
        Vt => 0.65,
        I => 0.312,
        D => 0.69,
        H => 0.468,
    };
    // Suffix letters after the generation digit modify the price.
    let digits_end = ty
        .class()
        .find(|c: char| c.is_ascii_digit())
        .map(|i| {
            ty.class()[i..]
                .find(|c: char| !c.is_ascii_digit())
                .map_or(ty.class().len(), |j| i + j)
        })
        .unwrap_or(ty.class().len());
    let suffix = &ty.class()[digits_end..];
    let mut modifier = 1.0;
    if suffix.contains('a') {
        modifier *= 0.90;
    }
    if suffix.contains('g') {
        modifier *= 0.80;
    }
    if suffix.contains('d') {
        modifier *= 1.15;
    }
    if suffix.contains('n') {
        modifier *= 1.10;
    }
    per_xlarge * ty.size().weight() * modifier
}

use InstanceSize::*;

const T7: &[InstanceSize] = &[Nano, Micro, Small, Medium, Large, Xlarge, X2large];
const STD8: &[InstanceSize] = &[
    Large, Xlarge, X2large, X4large, X8large, X12large, X16large, X24large,
];
const STD9: &[InstanceSize] = &[
    Large, Xlarge, X2large, X4large, X8large, X12large, X16large, X24large, Metal,
];
const STD10: &[InstanceSize] = &[
    Large, Xlarge, X2large, X4large, X8large, X12large, X16large, X24large, X32large, Metal,
];
const GRAV9: &[InstanceSize] = &[
    Medium, Large, Xlarge, X2large, X4large, X8large, X12large, X16large, Metal,
];
const GRAV8: &[InstanceSize] = &[
    Medium, Large, Xlarge, X2large, X4large, X8large, X12large, X16large,
];
const C5ISH: &[InstanceSize] = &[
    Large, Xlarge, X2large, X4large, X9large, X12large, X18large, X24large, Metal,
];
const ZN7: &[InstanceSize] = &[Large, Xlarge, X2large, X3large, X6large, X12large, Metal];

/// The 2022 AWS class table: 547 instance types in total.
const AWS_CLASSES: &[(&str, &[InstanceSize])] = &[
    // T family (general).
    ("t1", &[Micro]),
    ("t2", T7),
    ("t3", T7),
    ("t3a", T7),
    ("t4g", T7),
    // M family (general).
    ("m4", &[Large, Xlarge, X2large, X4large, X10large, X16large]),
    ("m5", STD9),
    ("m5a", STD8),
    ("m5ad", STD8),
    ("m5d", STD9),
    ("m5dn", STD9),
    ("m5n", STD9),
    ("m5zn", ZN7),
    ("m6a", STD10),
    ("m6g", GRAV9),
    ("m6gd", GRAV9),
    ("m6i", STD10),
    ("m6id", STD10),
    ("m6idn", STD10),
    ("m6in", STD10),
    // A family (general, Arm).
    ("a1", &[Medium, Large, Xlarge, X2large, X4large, Metal]),
    // C family (compute-optimized).
    ("c4", &[Large, Xlarge, X2large, X4large, X8large]),
    ("c5", C5ISH),
    ("c5a", STD8),
    ("c5ad", STD8),
    ("c5d", C5ISH),
    (
        "c5n",
        &[Large, Xlarge, X2large, X4large, X9large, X18large, Metal],
    ),
    ("c6a", STD10),
    ("c6g", GRAV9),
    ("c6gd", GRAV9),
    ("c6gn", GRAV8),
    ("c6i", STD10),
    ("c6id", STD10),
    ("c7g", GRAV8),
    // R family (memory-optimized).
    ("r4", &[Large, Xlarge, X2large, X4large, X8large, X16large]),
    ("r5", STD9),
    ("r5a", STD8),
    ("r5ad", STD8),
    ("r5b", STD9),
    ("r5d", STD9),
    ("r5dn", STD9),
    ("r5n", STD9),
    ("r6g", GRAV9),
    ("r6gd", GRAV9),
    ("r6i", STD10),
    ("r6id", STD10),
    ("r6idn", STD10),
    ("r6in", STD10),
    // X family (memory-optimized, large).
    ("x1", &[X16large, X32large]),
    (
        "x1e",
        &[Xlarge, X2large, X4large, X8large, X16large, X32large],
    ),
    ("x2gd", GRAV9),
    ("x2idn", &[X16large, X24large, X32large, Metal]),
    (
        "x2iedn",
        &[
            Xlarge, X2large, X4large, X8large, X16large, X24large, X32large, Metal,
        ],
    ),
    (
        "x2iezn",
        &[X2large, X4large, X6large, X8large, X12large, Metal],
    ),
    // Z family (memory-optimized, high frequency).
    ("z1d", ZN7),
    // P family (accelerated, NVIDIA training GPUs).
    ("p2", &[Xlarge, X8large, X16large]),
    ("p3", &[X2large, X8large, X16large]),
    ("p3dn", &[X24large]),
    ("p4d", &[X24large]),
    ("p4de", &[X24large]),
    // G family (accelerated, graphics / inference GPUs).
    ("g3", &[X4large, X8large, X16large]),
    ("g3s", &[Xlarge]),
    ("g4ad", &[Xlarge, X2large, X4large, X8large, X16large]),
    (
        "g4dn",
        &[Xlarge, X2large, X4large, X8large, X12large, X16large, Metal],
    ),
    (
        "g5",
        &[
            Xlarge, X2large, X4large, X8large, X12large, X16large, X24large,
        ],
    ),
    ("g5g", &[Xlarge, X2large, X4large, X8large, X16large, Metal]),
    // DL family (accelerated, Habana Gaudi).
    ("dl1", &[X24large]),
    // Inf family (accelerated, AWS Inferentia).
    ("inf1", &[Xlarge, X2large, X6large, X24large]),
    // F family (accelerated, FPGA).
    ("f1", &[X2large, X4large, X16large]),
    // VT family (accelerated, video transcoding).
    ("vt1", &[X3large, X6large, X24large]),
    // I family (storage-optimized, NVMe).
    (
        "i3",
        &[Large, Xlarge, X2large, X4large, X8large, X16large, Metal],
    ),
    (
        "i3en",
        &[
            Large, Xlarge, X2large, X3large, X6large, X12large, X24large, Metal,
        ],
    ),
    (
        "i4i",
        &[
            Large, Xlarge, X2large, X4large, X8large, X16large, X32large, Metal,
        ],
    ),
    (
        "im4gn",
        &[Large, Xlarge, X2large, X4large, X8large, X16large],
    ),
    (
        "is4gen",
        &[Medium, Large, Xlarge, X2large, X4large, X8large],
    ),
    // D family (storage-optimized, dense HDD).
    ("d2", &[Xlarge, X2large, X4large, X8large]),
    ("d3", &[Xlarge, X2large, X4large, X8large]),
    (
        "d3en",
        &[Xlarge, X2large, X4large, X6large, X8large, X12large],
    ),
    // H family (storage-optimized).
    ("h1", &[X2large, X4large, X8large, X16large]),
];

/// The 17 regions of the measurement with their availability-zone counts
/// (63 zones in total).
const AWS_REGIONS: &[(&str, u8)] = &[
    ("us-east-1", 6),
    ("us-east-2", 3),
    ("us-west-1", 3),
    ("us-west-2", 4),
    ("ca-central-1", 4),
    ("sa-east-1", 3),
    ("eu-west-1", 4),
    ("eu-west-2", 3),
    ("eu-west-3", 3),
    ("eu-central-1", 4),
    ("eu-north-1", 3),
    ("ap-northeast-1", 4),
    ("ap-northeast-2", 4),
    ("ap-northeast-3", 3),
    ("ap-southeast-1", 4),
    ("ap-southeast-2", 4),
    ("ap-south-1", 4),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceGroup;

    #[test]
    fn aws_2022_matches_paper_shape() {
        let c = Catalog::aws_2022();
        assert_eq!(c.instance_types().len(), 547, "paper: about 547 types");
        assert_eq!(c.regions().len(), 17, "paper: 17 regions");
        assert_eq!(c.azs().len(), 63, "paper: 63 availability zones");
    }

    #[test]
    fn every_family_group_is_populated() {
        let c = Catalog::aws_2022();
        for group in InstanceGroup::ALL {
            assert!(
                c.instance_types()
                    .iter()
                    .any(|t| t.family().group() == group),
                "group {group} has no types"
            );
        }
    }

    #[test]
    fn lookups_are_consistent() {
        let c = Catalog::aws_2022();
        let id = c.instance_type_id("p3.2xlarge").unwrap();
        assert_eq!(c.ty(id).name(), "p3.2xlarge");
        let rid = c.region_id("eu-west-1").unwrap();
        assert_eq!(c.region(rid).code(), "eu-west-1");
        let azid = c.az_id("eu-west-1b").unwrap();
        assert_eq!(c.az(azid).region(), rid);
        assert!(c.instance_type("warp9.huge").is_none());
    }

    #[test]
    fn every_type_is_supported_somewhere() {
        let c = Catalog::aws_2022();
        for ty in c.type_ids() {
            assert!(
                c.support.supported_az_count(ty) > 0,
                "{} has no supporting AZ",
                c.ty(ty)
            );
            // us-east-1a is the guaranteed floor.
            let az = c.az_id("us-east-1a").unwrap();
            assert!(c.supports(ty, az));
        }
    }

    #[test]
    fn support_map_counts_match_bitset() {
        let c = Catalog::aws_2022();
        let ty = c.instance_type_id("m5.large").unwrap();
        let map = c.support_map(ty);
        let total: u32 = map.values().sum();
        assert_eq!(total, c.support.supported_az_count(ty));
        for (&region, &n) in &map {
            assert!(n >= 1);
            assert!(n <= c.azs_of_region(region).len() as u32);
        }
    }

    #[test]
    fn accelerated_types_are_scarcer_than_general() {
        let c = Catalog::aws_2022();
        let avg = |group: InstanceGroup| {
            let (sum, n) = c
                .type_ids()
                .filter(|&t| c.ty(t).family().group() == group)
                .fold((0u32, 0u32), |(s, n), t| {
                    (s + c.support.supported_az_count(t), n + 1)
                });
            f64::from(sum) / f64::from(n)
        };
        assert!(
            avg(InstanceGroup::AcceleratedComputing) < avg(InstanceGroup::General) * 0.75,
            "accelerated ({:.1}) should be scarcer than general ({:.1})",
            avg(InstanceGroup::AcceleratedComputing),
            avg(InstanceGroup::General)
        );
    }

    #[test]
    fn od_prices_scale_with_size() {
        let c = Catalog::aws_2022();
        let small = c.od_price(c.instance_type_id("m5.large").unwrap());
        let big = c.od_price(c.instance_type_id("m5.24xlarge").unwrap());
        assert!(big.as_usd() > small.as_usd() * 10.0);
    }

    #[test]
    fn region_price_multiplier_baseline_is_one() {
        let c = Catalog::aws_2022();
        let us = c.region_id("us-east-1").unwrap();
        assert_eq!(c.region_price_multiplier(us), 1.0);
        for r in c.region_ids() {
            let m = c.region_price_multiplier(r);
            assert!((1.0..=1.3).contains(&m), "multiplier {m} out of range");
        }
    }

    #[test]
    fn builder_full_support_by_default() {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 2)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        let c = b.build().unwrap();
        for ty in c.type_ids() {
            for az in c.az_ids() {
                assert!(c.supports(ty, az));
            }
        }
    }

    #[test]
    fn builder_rejects_duplicates_and_bad_input() {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 2).region("us-test-1", 2);
        assert!(b.build().is_err());

        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 0);
        assert!(b.build().is_err());

        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 1).instance_type("bogus", 1.0);
        assert!(b.build().is_err());

        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 1).instance_type("m5.large", -3.0);
        assert!(b.build().is_err());
    }

    #[test]
    fn catalog_is_deterministic() {
        let a = Catalog::aws_2022();
        let b = Catalog::aws_2022();
        assert_eq!(a.support, b.support);
        assert_eq!(a.od_micros, b.od_micros);
    }

    #[test]
    fn hash01_is_uniform_ish_and_stable() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| hash01(&["test", &i.to_string()]))
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} too far from 0.5");
        assert_eq!(hash01(&["a", "b"]), hash01(&["a", "b"]));
        assert_ne!(hash01(&["a", "b"]), hash01(&["ab"]));
    }
}
