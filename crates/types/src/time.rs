//! Simulated time.
//!
//! SpotLake's collector samples the cloud every ten minutes ([`COLLECTION_TICK`],
//! matching the paper's collection interval). All simulation components share
//! a single monotonically increasing [`SimTime`] measured in seconds since
//! the simulation epoch.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time, in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600)
    }

    /// Creates a duration of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400)
    }

    /// Number of whole seconds in this duration.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// This duration expressed in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Integer division of two durations (how many `rhs` fit in `self`).
    pub const fn div_duration(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s.is_multiple_of(86_400) && s > 0 {
            write!(f, "{}d", s / 86_400)
        } else if s.is_multiple_of(3600) && s > 0 {
            write!(f, "{}h", s / 3600)
        } else if s.is_multiple_of(60) && s > 0 {
            write!(f, "{}m", s / 60)
        } else {
            write!(f, "{s}s")
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

/// The collector's sampling period: ten minutes, as in the paper
/// ("The data were collected every 10 minutes", Section 5).
pub const COLLECTION_TICK: SimDuration = SimDuration::from_mins(10);

/// An instant in simulated time: seconds since the simulation epoch.
///
/// The simulation epoch corresponds to the paper's collection start date
/// (January 1, 2022); nothing in the code depends on the calendar, only on
/// elapsed time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Which whole day (0-based) since the epoch this instant falls on.
    pub const fn day_index(self) -> u64 {
        self.0 / 86_400
    }

    /// Elapsed time since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Elapsed time since `earlier`, or `None` if `earlier` is later.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_ten_minutes() {
        assert_eq!(COLLECTION_TICK.as_secs(), 600);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn display_picks_largest_exact_unit() {
        assert_eq!(SimDuration::from_days(2).to_string(), "2d");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3h");
        assert_eq!(SimDuration::from_mins(10).to_string(), "10m");
        assert_eq!(SimDuration::from_secs(61).to_string(), "61s");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::EPOCH + SimDuration::from_days(3);
        assert_eq!(t.day_index(), 3);
        assert_eq!(t - SimTime::EPOCH, SimDuration::from_days(3));
        assert_eq!(t.checked_since(t + SimDuration::from_secs(1)), None);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_reversed() {
        let _ = SimTime::EPOCH.since(SimTime::from_secs(1));
    }

    #[test]
    fn div_duration_counts_ticks() {
        let day = SimDuration::from_days(1);
        assert_eq!(day.div_duration(COLLECTION_TICK), 144);
    }
}
