//! Domain model for the SpotLake spot instance dataset archive.
//!
//! This crate defines the vocabulary shared by every other SpotLake crate:
//! geographic entities ([`Region`], [`Az`]), the instance-type catalog
//! ([`InstanceType`], [`Catalog`]), the three spot datasets' value types
//! ([`PlacementScore`], [`InterruptionBucket`], [`SpotPrice`]), simulated
//! time ([`SimTime`]), and the spot request lifecycle ([`RequestState`],
//! reproducing Table 1 of the paper).
//!
//! # Example
//!
//! ```
//! use spotlake_types::{Catalog, Region};
//!
//! let catalog = Catalog::aws_2022();
//! assert_eq!(catalog.regions().len(), 17);
//! assert_eq!(catalog.azs().len(), 63);
//! let it = catalog.instance_type("p3.2xlarge").expect("known type");
//! assert!(it.family().is_accelerated());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod error;
pub mod hash;
mod instance;
mod price;
mod region;
mod request;
mod score;
mod time;

pub use catalog::{Catalog, CatalogBuilder, SupportMatrix};
pub use error::{ParseEntityError, TypesError};
pub use instance::{InstanceFamily, InstanceGroup, InstanceSize, InstanceType, InstanceTypeId};
pub use price::{OnDemandPrice, Savings, SpotPrice};
pub use region::{Az, AzId, Region, RegionId};
pub use request::{InterruptionReason, RequestState, SpotRequest, SpotRequestConfig};
pub use score::{InterruptionBucket, InterruptionFreeScore, PlacementScore, ScoreLevel};
pub use time::{SimDuration, SimTime, COLLECTION_TICK};
