//! Prices: on-demand, spot, and savings over on-demand.
//!
//! Prices are hourly USD amounts stored as integer micro-dollars so that
//! equality, hashing, and ordering are exact — a spot *price change event*
//! (the unit of the price-history dataset) is defined by inequality of
//! consecutive values.

use crate::error::TypesError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An hourly on-demand price in micro-USD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OnDemandPrice(u64);

impl OnDemandPrice {
    /// Creates an on-demand price from fractional USD per hour.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::OutOfRange`] if `usd_per_hour` is not a finite,
    /// positive amount.
    pub fn from_usd(usd_per_hour: f64) -> Result<Self, TypesError> {
        micro_from_usd(usd_per_hour, "on-demand price").map(OnDemandPrice)
    }

    /// The price in micro-USD per hour.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// The price in fractional USD per hour.
    pub fn as_usd(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl fmt::Display for OnDemandPrice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4}/h", self.as_usd())
    }
}

/// An hourly spot price in micro-USD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpotPrice(u64);

impl SpotPrice {
    /// Creates a spot price from fractional USD per hour.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::OutOfRange`] if `usd_per_hour` is not a finite,
    /// positive amount.
    pub fn from_usd(usd_per_hour: f64) -> Result<Self, TypesError> {
        micro_from_usd(usd_per_hour, "spot price").map(SpotPrice)
    }

    /// Creates a spot price directly from micro-USD per hour.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::OutOfRange`] if `micros` is zero.
    pub fn from_micros(micros: u64) -> Result<Self, TypesError> {
        if micros == 0 {
            return Err(TypesError::OutOfRange {
                what: "spot price",
                expected: "positive micro-USD",
                got: "0".into(),
            });
        }
        Ok(SpotPrice(micros))
    }

    /// The price in micro-USD per hour.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// The price in fractional USD per hour.
    pub fn as_usd(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Savings of this spot price relative to `on_demand`.
    pub fn savings_over(self, on_demand: OnDemandPrice) -> Savings {
        Savings::between(self, on_demand)
    }
}

impl fmt::Display for SpotPrice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4}/h", self.as_usd())
    }
}

fn micro_from_usd(usd: f64, what: &'static str) -> Result<u64, TypesError> {
    if !usd.is_finite() || usd <= 0.0 || usd > 1e6 {
        return Err(TypesError::OutOfRange {
            what,
            expected: "finite positive USD/hour",
            got: format!("{usd}"),
        });
    }
    Ok((usd * 1e6).round() as u64)
}

/// Cost savings of the spot price over the on-demand price, as published by
/// the spot instance advisor (a whole percentage, e.g. "70%").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Savings(u8);

impl Savings {
    /// Computes the savings percentage of `spot` relative to `on_demand`,
    /// clamped to 0–99% (a spot price above on-demand reports 0%).
    pub fn between(spot: SpotPrice, on_demand: OnDemandPrice) -> Savings {
        if on_demand.micros() == 0 || spot.micros() >= on_demand.micros() {
            return Savings(0);
        }
        let saved = on_demand.micros() - spot.micros();
        let pct = (saved * 100) / on_demand.micros();
        Savings(pct.min(99) as u8)
    }

    /// Creates a savings percentage directly.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::OutOfRange`] if `pct > 99`.
    pub fn from_percent(pct: u8) -> Result<Self, TypesError> {
        if pct > 99 {
            return Err(TypesError::OutOfRange {
                what: "savings",
                expected: "0..=99 percent",
                got: pct.to_string(),
            });
        }
        Ok(Savings(pct))
    }

    /// The whole savings percentage.
    pub fn percent(self) -> u8 {
        self.0
    }

    /// The savings as a fraction in 0.0–1.0.
    pub fn as_fraction(self) -> f64 {
        f64::from(self.0) / 100.0
    }
}

impl fmt::Display for Savings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_store_micro_usd_exactly() {
        let p = SpotPrice::from_usd(0.0928).unwrap();
        assert_eq!(p.micros(), 92_800);
        assert!((p.as_usd() - 0.0928).abs() < 1e-9);
    }

    #[test]
    fn price_rejects_nonpositive_and_nonfinite() {
        assert!(SpotPrice::from_usd(0.0).is_err());
        assert!(SpotPrice::from_usd(-1.0).is_err());
        assert!(SpotPrice::from_usd(f64::NAN).is_err());
        assert!(SpotPrice::from_usd(f64::INFINITY).is_err());
        assert!(OnDemandPrice::from_usd(0.0).is_err());
        assert!(SpotPrice::from_micros(0).is_err());
    }

    #[test]
    fn savings_computation() {
        let od = OnDemandPrice::from_usd(1.0).unwrap();
        let spot = SpotPrice::from_usd(0.30).unwrap();
        assert_eq!(spot.savings_over(od).percent(), 70);
        // Spot above on-demand -> 0% savings, not negative.
        let expensive = SpotPrice::from_usd(2.0).unwrap();
        assert_eq!(expensive.savings_over(od).percent(), 0);
    }

    #[test]
    fn savings_bounds() {
        assert!(Savings::from_percent(99).is_ok());
        assert!(Savings::from_percent(100).is_err());
        assert_eq!(Savings::from_percent(70).unwrap().as_fraction(), 0.70);
        assert_eq!(Savings::from_percent(70).unwrap().to_string(), "70%");
    }

    #[test]
    fn spot_price_equality_is_exact() {
        let a = SpotPrice::from_usd(0.1).unwrap();
        let b = SpotPrice::from_micros(100_000).unwrap();
        assert_eq!(a, b);
    }
}
