//! Shared error types for the domain model.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a domain entity (region code, availability
/// zone, instance type name, ...) from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEntityError {
    kind: &'static str,
    input: String,
}

impl ParseEntityError {
    /// Creates a parse error for the entity kind `kind` on `input`.
    pub fn new(kind: &'static str, input: impl Into<String>) -> Self {
        Self {
            kind,
            input: input.into(),
        }
    }

    /// The entity kind that failed to parse (e.g. `"region"`).
    pub fn kind(&self) -> &str {
        self.kind
    }

    /// The offending input text.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseEntityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} syntax: {:?}", self.kind, self.input)
    }
}

impl Error for ParseEntityError {}

/// Top-level error type for domain-model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypesError {
    /// Text failed to parse into a domain entity.
    Parse(ParseEntityError),
    /// A referenced entity does not exist in the catalog.
    UnknownEntity {
        /// Entity kind (e.g. `"instance type"`).
        kind: &'static str,
        /// The name that was looked up.
        name: String,
    },
    /// A numeric value was outside its legal domain.
    OutOfRange {
        /// What was being constructed.
        what: &'static str,
        /// Human-readable description of the legal range.
        expected: &'static str,
        /// The offending value rendered as text.
        got: String,
    },
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypesError::Parse(e) => e.fmt(f),
            TypesError::UnknownEntity { kind, name } => {
                write!(f, "unknown {kind}: {name:?}")
            }
            TypesError::OutOfRange {
                what,
                expected,
                got,
            } => write!(f, "{what} out of range: expected {expected}, got {got}"),
        }
    }
}

impl Error for TypesError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TypesError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseEntityError> for TypesError {
    fn from(e: ParseEntityError) -> Self {
        TypesError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_displays_kind_and_input() {
        let e = ParseEntityError::new("region", "moon-base-1");
        assert_eq!(e.to_string(), "invalid region syntax: \"moon-base-1\"");
        assert_eq!(e.kind(), "region");
        assert_eq!(e.input(), "moon-base-1");
    }

    #[test]
    fn types_error_wraps_parse_error_as_source() {
        let e = TypesError::from(ParseEntityError::new("az", "x"));
        assert!(e.source().is_some());
    }

    #[test]
    fn out_of_range_display() {
        let e = TypesError::OutOfRange {
            what: "placement score",
            expected: "1..=10",
            got: "42".into(),
        };
        assert_eq!(
            e.to_string(),
            "placement score out of range: expected 1..=10, got 42"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TypesError>();
        assert_send_sync::<ParseEntityError>();
    }
}
