//! Property tests for the catalog and the domain parsers.

use proptest::prelude::*;
use spotlake_types::{Catalog, CatalogBuilder, InstanceSize, InstanceType};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any builder with unique valid names produces a consistent catalog:
    /// lookups invert enumeration, AZ counts match, support defaults to
    /// full.
    #[test]
    fn builder_catalog_is_consistent(
        region_azs in prop::collection::vec(1u8..6, 1..5),
        class_idx in prop::collection::btree_set(0usize..8, 1..6),
    ) {
        let classes = ["m5", "c5", "r5", "t3", "g4dn", "i3", "p3", "x1e"];
        let mut b = CatalogBuilder::new();
        for (i, &azs) in region_azs.iter().enumerate() {
            b.region(&format!("pr-test-{}", i + 1), azs);
        }
        for &i in &class_idx {
            b.instance_type(&format!("{}.xlarge", classes[i]), 1.0 + i as f64);
        }
        let c = b.build().unwrap();

        prop_assert_eq!(c.regions().len(), region_azs.len());
        let total_azs: usize = region_azs.iter().map(|&n| n as usize).sum();
        prop_assert_eq!(c.azs().len(), total_azs);
        prop_assert_eq!(c.instance_types().len(), class_idx.len());

        for ty in c.type_ids() {
            let name = c.ty(ty).name();
            prop_assert_eq!(c.instance_type_id(&name), Some(ty));
            // Builder default: full support.
            for az in c.az_ids() {
                prop_assert!(c.supports(ty, az));
            }
            // support_map counts agree with azs_of_region.
            let map = c.support_map(ty);
            for (region, n) in map {
                prop_assert_eq!(n as usize, c.azs_of_region(region).len());
            }
        }
    }

    /// Every size parses back from its suffix, and weights are positive.
    #[test]
    fn size_roundtrip(idx in 0usize..InstanceSize::ALL.len()) {
        let size = InstanceSize::ALL[idx];
        prop_assert_eq!(InstanceSize::parse(size.suffix()).unwrap(), size);
        prop_assert!(size.weight() > 0.0);
    }

    /// Instance-type parsing is total: it either fails or roundtrips
    /// through Display.
    #[test]
    fn type_parse_roundtrips_or_rejects(s in "[a-z0-9.]{1,16}") {
        if let Ok(ty) = s.parse::<InstanceType>() {
            prop_assert_eq!(ty.to_string(), s);
        }
    }
}

/// The full catalog's invariants beyond the unit tests: every pool pair is
/// consistent with the support matrix and every price is positive.
#[test]
fn aws_catalog_pool_consistency() {
    let c = Catalog::aws_2022();
    let pools = c.supported_pools();
    assert!(!pools.is_empty());
    for &(ty, az) in &pools {
        assert!(c.supports(ty, az));
        assert!(c.od_price(ty).as_usd() > 0.0);
    }
    // Count matches the sum over the support map.
    let total: u32 = c
        .type_ids()
        .map(|t| c.support_map(t).values().sum::<u32>())
        .sum();
    assert_eq!(total as usize, pools.len());
}
