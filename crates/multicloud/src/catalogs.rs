//! Simulated Azure and GCP fleets.
//!
//! Both vendors are modeled on the same capacity-pool substrate as AWS,
//! with their own catalogs, region sets, and price levels. Internally the
//! simulator keeps its own type grammar; the [`VendorSku`] table binds each
//! vendor's native SKU names ("Standard_D4s_v3", "n2-standard-4") to the
//! internal types and to the normalized [`HardwareShape`] global key.

use crate::sku::{aws_shape, HardwareShape, VendorSku};
use crate::vendor::Vendor;
use spotlake_types::{Catalog, CatalogBuilder, TypesError};

/// Azure region codes used by the demo fleet (3 zones each).
const AZURE_REGIONS: &[&str] = &["azr-east-1", "azr-west-1", "azr-europe-1", "azr-asia-1"];
/// GCP region codes used by the demo fleet (3 zones each).
const GCP_REGIONS: &[&str] = &["gcp-central-1", "gcp-west-1", "gcp-europe-1"];

/// Builds the simulated Azure spot fleet: D (general), E (memory), F
/// (compute), NC/NV (GPU), and L (storage) series.
///
/// # Errors
///
/// Returns [`TypesError`] only if the builtin table is inconsistent (a bug).
pub fn azure_catalog() -> Result<(Catalog, Vec<VendorSku>), TypesError> {
    let mut b = CatalogBuilder::new();
    for region in AZURE_REGIONS {
        b.region(region, 3);
    }
    let mut skus = Vec::new();
    // (native prefix, internal class, family prefix for shape, per-xlarge $)
    let series: &[(&str, &str, &str, f64)] = &[
        ("Standard_D{n}s_v3", "m9", "m", 0.192),
        ("Standard_E{n}s_v3", "r9", "r", 0.252),
        ("Standard_F{n}s_v2", "c9", "c", 0.169),
        ("Standard_L{n}s_v2", "i9", "i", 0.312),
    ];
    let sizes: &[(u32, &str, f64)] = &[
        (2, "large", 0.5),
        (4, "xlarge", 1.0),
        (8, "2xlarge", 2.0),
        (16, "4xlarge", 4.0),
        (32, "8xlarge", 8.0),
        (64, "16xlarge", 16.0),
    ];
    for &(native_pat, class, family, per_xlarge) in series {
        for &(vcpus, suffix, weight) in sizes {
            let internal = format!("{class}.{suffix}");
            b.instance_type(&internal, per_xlarge * weight);
            skus.push(VendorSku::new(
                Vendor::Azure,
                native_pat.replace("{n}", &vcpus.to_string()),
                internal,
                aws_shape(family, weight),
            ));
        }
    }
    // GPU series: NC (compute GPU) and NV (visualization GPU).
    for (native, internal, family, weight, usd) in [
        ("Standard_NC6", "p9.xlarge", "p", 1.0, 0.90),
        ("Standard_NC12", "p9.2xlarge", "p", 2.0, 1.80),
        ("Standard_NC24", "p9.4xlarge", "p", 4.0, 3.60),
        ("Standard_NV6", "g9.xlarge", "g", 1.0, 0.68),
        ("Standard_NV12", "g9.2xlarge", "g", 2.0, 1.36),
    ] {
        b.instance_type(internal, usd);
        skus.push(VendorSku::new(
            Vendor::Azure,
            native,
            internal,
            aws_shape(family, weight),
        ));
    }
    b.hashed_support(true);
    Ok((b.build()?, skus))
}

/// Builds the simulated GCP spot fleet: n2 (general), n2-highmem, c2
/// (compute), t2d (shared-core general), and a2 (GPU) machine families.
///
/// # Errors
///
/// Returns [`TypesError`] only if the builtin table is inconsistent (a bug).
pub fn gcp_catalog() -> Result<(Catalog, Vec<VendorSku>), TypesError> {
    let mut b = CatalogBuilder::new();
    for region in GCP_REGIONS {
        b.region(region, 3);
    }
    let mut skus = Vec::new();
    let series: &[(&str, &str, &str, f64)] = &[
        ("n2-standard-{n}", "m8", "m", 0.194),
        ("n2-highmem-{n}", "r8", "r", 0.262),
        ("c2-standard-{n}", "c8", "c", 0.167),
        ("t2d-standard-{n}", "t8", "t", 0.169),
    ];
    let sizes: &[(u32, &str, f64)] = &[
        (2, "large", 0.5),
        (4, "xlarge", 1.0),
        (8, "2xlarge", 2.0),
        (16, "4xlarge", 4.0),
        (32, "8xlarge", 8.0),
    ];
    for &(native_pat, class, family, per_xlarge) in series {
        for &(vcpus, suffix, weight) in sizes {
            let internal = format!("{class}.{suffix}");
            b.instance_type(&internal, per_xlarge * weight);
            skus.push(VendorSku::new(
                Vendor::Gcp,
                native_pat.replace("{n}", &vcpus.to_string()),
                internal,
                aws_shape(family, weight),
            ));
        }
    }
    for (native, internal, weight, usd) in [
        ("a2-highgpu-1g", "p8.xlarge", 1.0, 3.67),
        ("a2-highgpu-2g", "p8.2xlarge", 2.0, 7.35),
        ("a2-highgpu-4g", "p8.4xlarge", 4.0, 14.69),
    ] {
        b.instance_type(internal, usd);
        skus.push(VendorSku::new(
            Vendor::Gcp,
            native,
            internal,
            aws_shape("p", weight),
        ));
    }
    b.hashed_support(true);
    Ok((b.build()?, skus))
}

/// The AWS SKU table for a set of internal type names (identity mapping
/// plus shapes).
pub(crate) fn aws_skus(catalog: &Catalog, names: &[String]) -> Vec<VendorSku> {
    names
        .iter()
        .filter_map(|name| {
            let ty = catalog.instance_type(name)?;
            Some(VendorSku::new(
                Vendor::Aws,
                name.clone(),
                name.clone(),
                aws_shape(ty.family().prefix(), ty.size().weight()),
            ))
        })
        .collect()
}

/// A cross-vendor shape that every demo fleet offers (4 vCPU / 16 GiB).
pub fn common_demo_shape() -> HardwareShape {
    HardwareShape::cpu(4, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure_catalog_builds() {
        let (catalog, skus) = azure_catalog().expect("builtin table is valid");
        assert_eq!(catalog.regions().len(), 4);
        assert_eq!(catalog.azs().len(), 12);
        assert_eq!(catalog.instance_types().len(), skus.len());
        // Every SKU's internal type exists.
        for sku in &skus {
            assert!(
                catalog.instance_type(&sku.internal_type).is_some(),
                "{} missing",
                sku.internal_type
            );
            assert_eq!(sku.vendor, Vendor::Azure);
        }
        // The common shape is present: Standard_D4s_v3 = 4c-16g.
        assert!(skus
            .iter()
            .any(|s| s.native_name == "Standard_D4s_v3" && s.shape == common_demo_shape()));
    }

    #[test]
    fn gcp_catalog_builds() {
        let (catalog, skus) = gcp_catalog().expect("builtin table is valid");
        assert_eq!(catalog.regions().len(), 3);
        assert!(skus.iter().all(|s| s.vendor == Vendor::Gcp));
        assert!(skus
            .iter()
            .any(|s| s.native_name == "n2-standard-4" && s.shape == common_demo_shape()));
        assert!(catalog.instance_type("p8.xlarge").is_some());
    }

    #[test]
    fn native_names_are_unique_per_vendor() {
        for (_, skus) in [azure_catalog().unwrap(), gcp_catalog().unwrap()] {
            let mut names: Vec<&str> = skus.iter().map(|s| s.native_name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before);
        }
    }
}
