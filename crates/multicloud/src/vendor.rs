//! Vendors and the paper's dataset-access matrix.

use std::fmt;

/// A public cloud vendor offering transient (spot) instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Vendor {
    /// Amazon Web Services (Spot Instances).
    Aws,
    /// Microsoft Azure (Spot Virtual Machines).
    Azure,
    /// Google Cloud (Spot VMs).
    Gcp,
}

impl Vendor {
    /// All vendors.
    pub const ALL: [Vendor; 3] = [Vendor::Aws, Vendor::Azure, Vendor::Gcp];

    /// The lowercase tag used as the archive's `vendor` dimension.
    pub fn tag(self) -> &'static str {
        match self {
            Vendor::Aws => "aws",
            Vendor::Azure => "azure",
            Vendor::Gcp => "gcp",
        }
    }

    /// How this vendor exposes each spot dataset — the access matrix of
    /// Section 7 ("Azure provides current spot instance price information
    /// via the API and web portal ... availability and interruption ratio
    /// information only from its web portal. Google Cloud provides the
    /// current spot instance price only from its web portal.").
    pub fn dataset_access(self) -> DatasetAccess {
        match self {
            Vendor::Aws => DatasetAccess {
                price: AccessPath::Api,
                availability: AccessPath::Api,
                interruption: AccessPath::Portal,
            },
            Vendor::Azure => DatasetAccess {
                price: AccessPath::Api,
                availability: AccessPath::Portal,
                interruption: AccessPath::Portal,
            },
            Vendor::Gcp => DatasetAccess {
                price: AccessPath::Portal,
                availability: AccessPath::None,
                interruption: AccessPath::None,
            },
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// How a dataset can be reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Programmatic API / CLI access.
    Api,
    /// Web portal only — a collector must scrape.
    Portal,
    /// The vendor does not publish the dataset at all.
    None,
}

impl AccessPath {
    /// Whether a collector can obtain the dataset at all.
    pub fn is_collectable(self) -> bool {
        !matches!(self, AccessPath::None)
    }
}

/// One vendor's access paths for the three spot datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetAccess {
    /// Spot price.
    pub price: AccessPath,
    /// Timely availability (placement-score-like).
    pub availability: AccessPath,
    /// Trailing interruption/eviction ratio.
    pub interruption: AccessPath,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_matrix_matches_section7() {
        // AWS has programmatic price + availability; advisor is web-only.
        let aws = Vendor::Aws.dataset_access();
        assert_eq!(aws.price, AccessPath::Api);
        assert_eq!(aws.availability, AccessPath::Api);
        assert_eq!(aws.interruption, AccessPath::Portal);
        // Azure: price via API; availability/eviction portal-only.
        let azure = Vendor::Azure.dataset_access();
        assert_eq!(azure.price, AccessPath::Api);
        assert_eq!(azure.availability, AccessPath::Portal);
        assert_eq!(azure.interruption, AccessPath::Portal);
        // GCP: price portal-only, nothing else published.
        let gcp = Vendor::Gcp.dataset_access();
        assert_eq!(gcp.price, AccessPath::Portal);
        assert!(!gcp.availability.is_collectable());
        assert!(!gcp.interruption.is_collectable());
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(Vendor::Aws.to_string(), "aws");
        assert_eq!(Vendor::Azure.tag(), "azure");
        assert_eq!(Vendor::Gcp.tag(), "gcp");
    }
}
