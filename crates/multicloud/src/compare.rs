//! Cross-vendor comparison — Section 7's payoff.
//!
//! "Comparing spot instances of multiple vendors in a single place can
//! provide a great opportunity for optimal resource usage": join the
//! unified archive on the hardware-shape global key and rank vendors per
//! shape by savings and availability.

use crate::collector::{
    MultiCloudCollector, MultiCloudError, MC_AVAILABILITY_TABLE, MC_PRICE_TABLE,
};
use crate::sku::HardwareShape;
use crate::vendor::Vendor;
use spotlake_timestream::Query;
use std::collections::BTreeMap;

/// One (vendor, shape) comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossVendorRow {
    /// The vendor.
    pub vendor: Vendor,
    /// The shape key, e.g. `"4c-16g"`.
    pub shape: String,
    /// Mean savings over on-demand, percent.
    pub mean_savings_pct: f64,
    /// Mean availability score, when the vendor publishes one.
    pub mean_availability: Option<f64>,
    /// Price samples behind the means.
    pub samples: usize,
}

/// The full cross-vendor comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossVendorReport {
    /// Rows sorted by (shape, vendor).
    pub rows: Vec<CrossVendorRow>,
}

impl CrossVendorReport {
    /// The vendor with the best mean savings for `shape`, if any vendor
    /// offers it.
    pub fn best_savings_for(&self, shape: &HardwareShape) -> Option<&CrossVendorRow> {
        self.rows
            .iter()
            .filter(|r| r.shape == shape.key())
            .max_by(|a, b| a.mean_savings_pct.total_cmp(&b.mean_savings_pct))
    }

    /// All shapes offered by at least two vendors — the comparable set.
    pub fn contested_shapes(&self) -> Vec<String> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for row in &self.rows {
            *counts.entry(row.shape.as_str()).or_default() += 1;
        }
        counts
            .into_iter()
            .filter(|&(_, n)| n >= 2)
            .map(|(s, _)| s.to_owned())
            .collect()
    }
}

impl MultiCloudCollector {
    /// Builds the cross-vendor comparison from the unified archive.
    ///
    /// # Errors
    ///
    /// Returns [`MultiCloudError::Store`] on archive query failures.
    pub fn compare_vendors(&self) -> Result<CrossVendorReport, MultiCloudError> {
        let db = self.archive();
        // (vendor, shape) -> (savings sum, n, availability sum, n).
        let mut cells: BTreeMap<(Vendor, String), (f64, usize, f64, usize)> = BTreeMap::new();

        for vendor in Vendor::ALL {
            let savings = db.query(
                MC_PRICE_TABLE,
                &Query::measure("savings").filter("vendor", vendor.tag()),
            )?;
            for row in savings {
                let Some(shape) = row
                    .dimensions
                    .iter()
                    .find(|(k, _)| k == "shape")
                    .map(|(_, v)| v.clone())
                else {
                    continue;
                };
                let cell = cells.entry((vendor, shape)).or_insert((0.0, 0, 0.0, 0));
                cell.0 += row.value;
                cell.1 += 1;
            }
            let availability = db.query(
                MC_AVAILABILITY_TABLE,
                &Query::measure("availability").filter("vendor", vendor.tag()),
            )?;
            for row in availability {
                let Some(shape) = row
                    .dimensions
                    .iter()
                    .find(|(k, _)| k == "shape")
                    .map(|(_, v)| v.clone())
                else {
                    continue;
                };
                let cell = cells.entry((vendor, shape)).or_insert((0.0, 0, 0.0, 0));
                cell.2 += row.value;
                cell.3 += 1;
            }
        }

        let rows = cells
            .into_iter()
            .filter(|(_, (_, sn, _, _))| *sn > 0)
            .map(
                |((vendor, shape), (s_sum, s_n, a_sum, a_n))| CrossVendorRow {
                    vendor,
                    shape,
                    mean_savings_pct: s_sum / s_n as f64,
                    mean_availability: (a_n > 0).then(|| a_sum / a_n as f64),
                    samples: s_n,
                },
            )
            .collect();
        Ok(CrossVendorReport { rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalogs::common_demo_shape;

    #[test]
    fn comparison_covers_contested_shapes() {
        let mut collector = MultiCloudCollector::demo_scale().expect("builtin catalogs");
        collector.run_rounds(3).expect("collection runs");
        let report = collector.compare_vendors().expect("archive queries");

        assert!(!report.rows.is_empty());
        // The 4c-16g shape is offered by all three vendors.
        let contested = report.contested_shapes();
        assert!(
            contested.contains(&"4c-16g".to_string()),
            "4c-16g missing from {contested:?}"
        );
        let best = report
            .best_savings_for(&common_demo_shape())
            .expect("someone offers 4c-16g");
        assert!((0.0..100.0).contains(&best.mean_savings_pct));

        // GCP rows exist but carry no availability (not published).
        let gcp_row = report
            .rows
            .iter()
            .find(|r| r.vendor == Vendor::Gcp)
            .expect("gcp collected");
        assert!(gcp_row.mean_availability.is_none());
        // AWS rows do carry availability.
        let aws_row = report
            .rows
            .iter()
            .find(|r| r.vendor == Vendor::Aws && r.shape == "4c-16g")
            .expect("aws collected");
        assert!(aws_row.mean_availability.is_some());
    }
}
