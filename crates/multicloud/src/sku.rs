//! Vendor SKUs and the hardware-shape global key.
//!
//! Section 7: "adding more global keys such as hardware details are
//! beneficial to analyze and compare the spot instance characteristics from
//! various aspects". A [`VendorSku`] is a vendor's native name for an
//! instance shape ("m5.xlarge", "Standard_D4s_v3", "n2-standard-4"); a
//! [`HardwareShape`] is the normalized key they all map onto, so archives
//! from different vendors can be joined on (timestamp, shape).

use crate::vendor::Vendor;
use std::fmt;

/// Accelerator hardware attached to a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AcceleratorKind {
    /// No accelerator.
    None,
    /// An NVIDIA/AMD GPU.
    Gpu,
    /// A vendor inference/training ASIC (Inferentia, TPU, Gaudi...).
    Asic,
    /// An FPGA.
    Fpga,
}

/// The normalized hardware shape — the cross-vendor global key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HardwareShape {
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Memory, GiB.
    pub memory_gib: u32,
    /// Attached accelerator class.
    pub accelerator: AcceleratorKind,
}

impl HardwareShape {
    /// A plain CPU shape.
    pub const fn cpu(vcpus: u32, memory_gib: u32) -> Self {
        HardwareShape {
            vcpus,
            memory_gib,
            accelerator: AcceleratorKind::None,
        }
    }

    /// The canonical archive dimension value, e.g. `"4c-16g"` or
    /// `"8c-61g-gpu"`.
    pub fn key(&self) -> String {
        let base = format!("{}c-{}g", self.vcpus, self.memory_gib);
        match self.accelerator {
            AcceleratorKind::None => base,
            AcceleratorKind::Gpu => format!("{base}-gpu"),
            AcceleratorKind::Asic => format!("{base}-asic"),
            AcceleratorKind::Fpga => format!("{base}-fpga"),
        }
    }
}

impl fmt::Display for HardwareShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

/// A vendor's native SKU name bound to its normalized shape and the
/// internal simulator type that models it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VendorSku {
    /// The vendor.
    pub vendor: Vendor,
    /// The vendor's native SKU name (`"Standard_D4s_v3"`,
    /// `"n2-standard-4"`, `"m5.xlarge"`).
    pub native_name: String,
    /// The internal simulator instance-type name backing this SKU.
    pub internal_type: String,
    /// The normalized hardware shape.
    pub shape: HardwareShape,
}

impl VendorSku {
    /// Creates a SKU binding.
    pub fn new(
        vendor: Vendor,
        native_name: impl Into<String>,
        internal_type: impl Into<String>,
        shape: HardwareShape,
    ) -> Self {
        VendorSku {
            vendor,
            native_name: native_name.into(),
            internal_type: internal_type.into(),
            shape,
        }
    }
}

/// Shape of an AWS instance type, derived from its size weight and family
/// (per-family memory-per-vCPU ratios).
pub(crate) fn aws_shape(family_prefix: &str, weight: f64) -> HardwareShape {
    let vcpus = (weight * 4.0).round().max(1.0) as u32;
    let mem_per_vcpu = match family_prefix {
        "r" | "x" | "z" => 8,
        "c" => 2,
        "i" | "d" | "h" => 8,
        "p" | "g" | "inf" | "f" | "vt" | "dl" => 4,
        _ => 4, // general purpose
    };
    let accelerator = match family_prefix {
        "p" | "g" => AcceleratorKind::Gpu,
        "inf" | "dl" | "vt" => AcceleratorKind::Asic,
        "f" => AcceleratorKind::Fpga,
        _ => AcceleratorKind::None,
    };
    HardwareShape {
        vcpus,
        memory_gib: vcpus * mem_per_vcpu,
        accelerator,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_keys() {
        assert_eq!(HardwareShape::cpu(4, 16).key(), "4c-16g");
        let gpu = HardwareShape {
            vcpus: 8,
            memory_gib: 61,
            accelerator: AcceleratorKind::Gpu,
        };
        assert_eq!(gpu.key(), "8c-61g-gpu");
        assert_eq!(gpu.to_string(), "8c-61g-gpu");
    }

    #[test]
    fn aws_shapes_follow_family_ratios() {
        // m5.xlarge: 4 vCPU, 16 GiB.
        assert_eq!(aws_shape("m", 1.0), HardwareShape::cpu(4, 16));
        // r5.xlarge: 4 vCPU, 32 GiB.
        assert_eq!(aws_shape("r", 1.0), HardwareShape::cpu(4, 32));
        // c5.2xlarge: 8 vCPU, 16 GiB.
        assert_eq!(aws_shape("c", 2.0), HardwareShape::cpu(8, 16));
        // GPU family carries the accelerator marker.
        assert_eq!(aws_shape("p", 2.0).accelerator, AcceleratorKind::Gpu);
        assert_eq!(aws_shape("inf", 1.0).accelerator, AcceleratorKind::Asic);
        assert_eq!(aws_shape("f", 4.0).accelerator, AcceleratorKind::Fpga);
    }

    #[test]
    fn sku_binding() {
        let sku = VendorSku::new(
            Vendor::Azure,
            "Standard_D4s_v3",
            "m5.xlarge",
            HardwareShape::cpu(4, 16),
        );
        assert_eq!(sku.vendor, Vendor::Azure);
        assert_eq!(sku.shape.key(), "4c-16g");
    }
}
