//! Multi-vendor extension: Azure and GCP spot datasets in one archive.
//!
//! Section 7 of the paper describes SpotLake's "actively ongoing work" of
//! archiving spot datasets from multiple cloud vendors, noting the key
//! obstacles: each vendor publishes a *different subset* of datasets
//! through *different access paths* (Azure: price via API, availability and
//! eviction rate via web portal only; GCP: price via web portal only), so a
//! common schema needs **global keys** — the timestamp, plus hardware
//! details — to line vendors up.
//!
//! This crate implements that extension against the same simulator
//! substrate:
//!
//! * [`Vendor`] — the vendor enumeration with the paper's dataset-access
//!   matrix ([`Vendor::dataset_access`]).
//! * [`VendorSku`] / [`HardwareShape`] — vendor SKU names mapped to a
//!   normalized hardware shape: the paper's "adding more global keys such
//!   as hardware details".
//! * [`azure_catalog`] / [`gcp_catalog`] — simulated Azure and GCP fleets
//!   (Azure spot VMs with five eviction-rate buckets like AWS's advisor;
//!   GCP spot VMs with flat-discount pricing).
//! * [`MultiCloudCollector`] — one collection loop over all vendors,
//!   writing a single archive whose records carry a `vendor` dimension and
//!   share the timestamp as the global key.
//! * [`CrossVendorReport`] — the §7 payoff: hardware-shape-keyed
//!   comparisons of savings and availability across vendors.
//!
//! # Example
//!
//! ```
//! use spotlake_multicloud::{MultiCloudCollector, Vendor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut collector = MultiCloudCollector::demo_scale()?;
//! collector.run_rounds(4)?;
//! let report = collector.compare_vendors()?;
//! assert!(report.rows.iter().any(|r| r.vendor == Vendor::Azure));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalogs;
mod collector;
mod compare;
mod sku;
mod vendor;

pub use catalogs::{azure_catalog, common_demo_shape, gcp_catalog};
pub use collector::{MultiCloudCollector, MultiCloudError, VendorStats};
pub use compare::{CrossVendorReport, CrossVendorRow};
pub use sku::{AcceleratorKind, HardwareShape, VendorSku};
pub use vendor::{AccessPath, DatasetAccess, Vendor};
