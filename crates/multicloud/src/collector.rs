//! The multi-vendor collection loop.
//!
//! One [`MultiCloudCollector`] owns one simulated cloud per vendor, steps
//! them on a shared clock, and writes everything into a single archive
//! whose records carry `vendor`, `sku`, `shape`, and `region` dimensions —
//! "we are currently developing data collection for multiple vendors using
//! the timestamp as a global key" (Section 7). What gets collected per
//! vendor follows the access matrix: a dataset a vendor does not publish is
//! simply absent from the archive.

use crate::catalogs::{aws_skus, azure_catalog, gcp_catalog};
use crate::sku::VendorSku;
use crate::vendor::Vendor;
use spotlake_cloud_api::AdvisorPage;
use spotlake_cloud_sim::{SimCloud, SimConfig};
use spotlake_timestream::{Database, Record, TableOptions, TsError, WriteMode};
use spotlake_types::{Catalog, SimDuration, TypesError};
use std::error::Error;
use std::fmt;

/// Table holding all vendors' spot prices and savings.
pub const MC_PRICE_TABLE: &str = "mc_price";
/// Table holding availability scores (vendors that publish them).
pub const MC_AVAILABILITY_TABLE: &str = "mc_availability";
/// Table holding eviction/interruption scores (vendors that publish them).
pub const MC_EVICTION_TABLE: &str = "mc_eviction";

/// Errors from the multi-vendor pipeline.
#[derive(Debug)]
pub enum MultiCloudError {
    /// Catalog construction failed.
    Types(TypesError),
    /// Archive writes failed.
    Store(TsError),
    /// The advisor portal scrape failed.
    Api(spotlake_cloud_api::ApiError),
}

impl fmt::Display for MultiCloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiCloudError::Types(e) => write!(f, "catalog error: {e}"),
            MultiCloudError::Store(e) => write!(f, "store error: {e}"),
            MultiCloudError::Api(e) => write!(f, "portal error: {e}"),
        }
    }
}

impl Error for MultiCloudError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MultiCloudError::Types(e) => Some(e),
            MultiCloudError::Store(e) => Some(e),
            MultiCloudError::Api(e) => Some(e),
        }
    }
}

impl From<TypesError> for MultiCloudError {
    fn from(e: TypesError) -> Self {
        MultiCloudError::Types(e)
    }
}

impl From<TsError> for MultiCloudError {
    fn from(e: TsError) -> Self {
        MultiCloudError::Store(e)
    }
}

impl From<spotlake_cloud_api::ApiError> for MultiCloudError {
    fn from(e: spotlake_cloud_api::ApiError) -> Self {
        MultiCloudError::Api(e)
    }
}

/// Per-vendor collection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorStats {
    /// The vendor.
    pub vendor: Vendor,
    /// Price records written.
    pub price_records: usize,
    /// Availability records written.
    pub availability_records: usize,
    /// Eviction records written.
    pub eviction_records: usize,
}

struct VendorRuntime {
    vendor: Vendor,
    cloud: SimCloud,
    skus: Vec<VendorSku>,
}

/// The multi-vendor collector: shared clock, one archive.
pub struct MultiCloudCollector {
    runtimes: Vec<VendorRuntime>,
    db: Database,
}

impl fmt::Debug for MultiCloudCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiCloudCollector")
            .field("vendors", &self.runtimes.len())
            .field("points", &self.db.point_count())
            .finish()
    }
}

impl MultiCloudCollector {
    /// Builds the demo-scale pipeline: a small AWS slice plus the full
    /// Azure and GCP demo fleets, all on a 30-minute tick.
    ///
    /// # Errors
    ///
    /// Returns [`MultiCloudError::Types`] if a builtin catalog table is
    /// inconsistent (a bug).
    pub fn demo_scale() -> Result<Self, MultiCloudError> {
        let aws_watchlist: Vec<String> = [
            "m5.large",
            "m5.xlarge",
            "m5.2xlarge",
            "c5.xlarge",
            "r5.xlarge",
            "p3.2xlarge",
            "g4dn.xlarge",
            "i3.xlarge",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        Self::new(&aws_watchlist, SimDuration::from_mins(30), 20_220_901)
    }

    /// Builds the pipeline with an explicit AWS watchlist, tick, and seed.
    ///
    /// # Errors
    ///
    /// Returns [`MultiCloudError::Types`] if a builtin catalog table is
    /// inconsistent (a bug).
    pub fn new(
        aws_watchlist: &[String],
        tick: SimDuration,
        seed: u64,
    ) -> Result<Self, MultiCloudError> {
        let config = |seed_salt: u64| SimConfig {
            tick,
            shock_day: None,
            ..SimConfig::with_seed(seed ^ seed_salt)
        };

        let aws_catalog = Catalog::aws_2022();
        let skus = aws_skus(&aws_catalog, aws_watchlist);
        let aws = VendorRuntime {
            vendor: Vendor::Aws,
            cloud: SimCloud::new(aws_catalog, config(0)),
            skus,
        };
        let (azure_cat, azure_skus) = azure_catalog()?;
        let azure = VendorRuntime {
            vendor: Vendor::Azure,
            cloud: SimCloud::new(azure_cat, config(0xA2)),
            skus: azure_skus,
        };
        let (gcp_cat, gcp_skus) = gcp_catalog()?;
        let gcp = VendorRuntime {
            vendor: Vendor::Gcp,
            cloud: SimCloud::new(gcp_cat, config(0x6C)),
            skus: gcp_skus,
        };

        let mut db = Database::new();
        db.create_table(
            MC_PRICE_TABLE,
            TableOptions {
                mode: WriteMode::ChangePoint,
                retention: None,
            },
        )
        .expect("fresh database");
        db.create_table(
            MC_AVAILABILITY_TABLE,
            TableOptions {
                mode: WriteMode::Dense,
                retention: None,
            },
        )
        .expect("fresh database");
        db.create_table(
            MC_EVICTION_TABLE,
            TableOptions {
                mode: WriteMode::ChangePoint,
                retention: None,
            },
        )
        .expect("fresh database");

        Ok(MultiCloudCollector {
            runtimes: vec![aws, azure, gcp],
            db,
        })
    }

    /// The unified archive.
    pub fn archive(&self) -> &Database {
        &self.db
    }

    /// The vendors being collected.
    pub fn vendors(&self) -> Vec<Vendor> {
        self.runtimes.iter().map(|r| r.vendor).collect()
    }

    /// The SKU table of one vendor.
    pub fn skus(&self, vendor: Vendor) -> &[VendorSku] {
        self.runtimes
            .iter()
            .find(|r| r.vendor == vendor)
            .map(|r| r.skus.as_slice())
            .unwrap_or(&[])
    }

    /// Steps every vendor's cloud one tick (the shared global clock) and
    /// collects whatever each vendor publishes, `rounds` times. Returns the
    /// per-vendor totals.
    ///
    /// # Errors
    ///
    /// Returns [`MultiCloudError`] on portal-scrape or store failures.
    pub fn run_rounds(&mut self, rounds: u64) -> Result<Vec<VendorStats>, MultiCloudError> {
        let mut totals: Vec<VendorStats> = self
            .runtimes
            .iter()
            .map(|r| VendorStats {
                vendor: r.vendor,
                price_records: 0,
                availability_records: 0,
                eviction_records: 0,
            })
            .collect();
        for _ in 0..rounds {
            for (i, runtime) in self.runtimes.iter_mut().enumerate() {
                runtime.cloud.step();
                let stats = collect_vendor(&mut self.db, runtime)?;
                totals[i].price_records += stats.price_records;
                totals[i].availability_records += stats.availability_records;
                totals[i].eviction_records += stats.eviction_records;
            }
        }
        Ok(totals)
    }
}

/// One vendor's collection round, honoring its dataset-access matrix.
fn collect_vendor(
    db: &mut Database,
    runtime: &mut VendorRuntime,
) -> Result<VendorStats, MultiCloudError> {
    let access = runtime.vendor.dataset_access();
    let cloud = &runtime.cloud;
    let catalog = cloud.catalog();
    let now = cloud.now().as_secs();
    let vendor = runtime.vendor.tag();

    let mut price_records = Vec::new();
    let mut availability_records = Vec::new();

    for sku in &runtime.skus {
        let Some(ty) = catalog.instance_type_id(&sku.internal_type) else {
            continue;
        };
        for region in catalog.region_ids() {
            let code = catalog.region(region).code();
            // Price: every vendor publishes it somewhere (API or portal).
            // Portal-only vendors (GCP) expose only the *current* price —
            // which is precisely why archiving it adds value.
            if access.price.is_collectable() {
                let Some(&az) = catalog
                    .azs_of_region(region)
                    .iter()
                    .find(|&&az| catalog.supports(ty, az))
                else {
                    continue;
                };
                if let Some(price) = cloud.spot_price(ty, az) {
                    let od = catalog.od_price_in(ty, region);
                    let savings = price.savings_over(od);
                    price_records.push(
                        Record::new(now, "spot_price", price.as_usd())
                            .dimension("vendor", vendor)
                            .dimension("sku", &sku.native_name)
                            .dimension("shape", sku.shape.key())
                            .dimension("region", code),
                    );
                    price_records.push(
                        Record::new(now, "savings", f64::from(savings.percent()))
                            .dimension("vendor", vendor)
                            .dimension("sku", &sku.native_name)
                            .dimension("shape", sku.shape.key())
                            .dimension("region", code),
                    );
                }
            }
            // Availability: AWS via API, Azure via portal, GCP not at all.
            if access.availability.is_collectable() {
                if let Some(score) = cloud.placement_score_region(ty, region, 1) {
                    availability_records.push(
                        Record::new(now, "availability", f64::from(score.value()))
                            .dimension("vendor", vendor)
                            .dimension("sku", &sku.native_name)
                            .dimension("shape", sku.shape.key())
                            .dimension("region", code),
                    );
                }
            }
        }
    }

    // Eviction/interruption: scraped from the vendor's portal page where
    // published (AWS advisor, Azure eviction rates).
    let mut eviction_records = Vec::new();
    if access.interruption.is_collectable() {
        let page = AdvisorPage::render(cloud);
        let sku_by_internal: std::collections::HashMap<&str, &VendorSku> = runtime
            .skus
            .iter()
            .map(|s| (s.internal_type.as_str(), s))
            .collect();
        for row in AdvisorPage::scrape(&page)? {
            let Some(sku) = sku_by_internal.get(row.instance_type.as_str()) else {
                continue;
            };
            eviction_records.push(
                Record::new(
                    now,
                    "eviction_score",
                    row.bucket.interruption_free_score().as_f64(),
                )
                .dimension("vendor", vendor)
                .dimension("sku", &sku.native_name)
                .dimension("shape", sku.shape.key())
                .dimension("region", &row.region),
            );
        }
    }

    let price_n = price_records.len();
    let avail_n = availability_records.len();
    let evict_n = eviction_records.len();
    db.write(MC_PRICE_TABLE, &price_records)?;
    db.write(MC_AVAILABILITY_TABLE, &availability_records)?;
    db.write(MC_EVICTION_TABLE, &eviction_records)?;
    Ok(VendorStats {
        vendor: runtime.vendor,
        price_records: price_n,
        availability_records: avail_n,
        eviction_records: evict_n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_timestream::Query;

    #[test]
    fn demo_pipeline_collects_per_access_matrix() {
        let mut collector = MultiCloudCollector::demo_scale().expect("builtin catalogs");
        let totals = collector.run_rounds(3).expect("collection runs");
        assert_eq!(totals.len(), 3);

        let by_vendor = |v: Vendor| *totals.iter().find(|s| s.vendor == v).expect("present");
        // Everyone has prices.
        for v in Vendor::ALL {
            assert!(by_vendor(v).price_records > 0, "{v} has no prices");
        }
        // GCP publishes neither availability nor eviction data.
        assert_eq!(by_vendor(Vendor::Gcp).availability_records, 0);
        assert_eq!(by_vendor(Vendor::Gcp).eviction_records, 0);
        // AWS and Azure publish both.
        assert!(by_vendor(Vendor::Aws).availability_records > 0);
        assert!(by_vendor(Vendor::Azure).availability_records > 0);
        assert!(by_vendor(Vendor::Aws).eviction_records > 0);
        assert!(by_vendor(Vendor::Azure).eviction_records > 0);
    }

    #[test]
    fn archive_joins_on_vendor_and_shape() {
        let mut collector = MultiCloudCollector::demo_scale().expect("builtin catalogs");
        collector.run_rounds(2).expect("collection runs");
        let db = collector.archive();

        // The 4c-16g shape exists for all three vendors in the price table.
        for v in Vendor::ALL {
            let rows = db
                .query(
                    MC_PRICE_TABLE,
                    &Query::measure("spot_price")
                        .filter("vendor", v.tag())
                        .filter("shape", "4c-16g"),
                )
                .expect("price table exists");
            assert!(!rows.is_empty(), "no 4c-16g prices for {v}");
        }
        // Azure rows carry native SKU names.
        let azure = db
            .query(
                MC_PRICE_TABLE,
                &Query::measure("spot_price").filter("vendor", "azure"),
            )
            .expect("price table exists");
        assert!(azure.iter().any(|r| r
            .dimensions
            .iter()
            .any(|(k, v)| k == "sku" && v.starts_with("Standard_"))));
    }

    #[test]
    fn skus_accessible() {
        let collector = MultiCloudCollector::demo_scale().expect("builtin catalogs");
        assert!(!collector.skus(Vendor::Azure).is_empty());
        assert!(!collector.skus(Vendor::Gcp).is_empty());
        assert_eq!(
            collector.vendors(),
            vec![Vendor::Aws, Vendor::Azure, Vendor::Gcp]
        );
    }
}
