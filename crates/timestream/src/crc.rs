//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Shared by the persistence codec (whole-file checksum, so the
//! corruption-matrix property "any flipped byte makes `load` fail" holds)
//! and the write-ahead log (per-frame checksum, so recovery can find the
//! first torn frame). Hand-rolled to keep the crate dependency-free; the
//! table is built at compile time.

const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `data`.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn every_single_byte_flip_changes_the_checksum() {
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let clean = crc32(&data);
        let mut mutated = data.clone();
        for i in 0..mutated.len() {
            for bit in 0..8 {
                mutated[i] ^= 1 << bit;
                assert_ne!(crc32(&mutated), clean, "flip at byte {i} bit {bit}");
                mutated[i] ^= 1 << bit;
            }
        }
    }
}
