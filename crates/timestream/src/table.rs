//! Tables: named collections of series with a write mode and retention.

use crate::error::TsError;
use crate::profile::QueryProfile;
use crate::query::{Aggregate, Query, Row, WindowRow};
use crate::record::{series_key, Record};
use crate::series::Series;
use std::collections::BTreeMap;

/// How writes are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Every (validated) record is stored.
    #[default]
    Dense,
    /// A record is stored only when its value differs from the series'
    /// latest value — the natural representation for the price and advisor
    /// datasets, which change rarely (paper Figure 10).
    ChangePoint,
}

/// Per-table options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableOptions {
    /// Write mode.
    pub mode: WriteMode,
    /// Optional retention window in seconds: on
    /// [`Table::enforce_retention`], points older than `now - retention`
    /// are dropped.
    pub retention: Option<u64>,
}

/// A named table of time series.
#[derive(Debug, Clone, Default)]
pub struct Table {
    options: TableOptions,
    /// measure name → (dimension key → series).
    series: BTreeMap<String, BTreeMap<String, Series>>,
}

impl Table {
    pub(crate) fn new(options: TableOptions) -> Self {
        Table {
            options,
            series: BTreeMap::new(),
        }
    }

    /// The table's options.
    pub fn options(&self) -> TableOptions {
        self.options
    }

    /// Writes one record. Returns `true` if it was stored (change-point
    /// tables skip repeats).
    ///
    /// # Errors
    ///
    /// Returns [`TsError::BadRecord`] for invalid records.
    pub fn write(&mut self, record: &Record) -> Result<bool, TsError> {
        record.validate()?;
        let dim_key = series_key("", &record.dimensions);
        let series = self
            .series
            .entry(record.measure.clone())
            .or_default()
            .entry(dim_key)
            .or_insert_with(|| Series::new(record.dimensions.clone()));
        Ok(match self.options.mode {
            WriteMode::Dense => series.insert(record.time, record.value),
            WriteMode::ChangePoint => series.insert_changepoint(record.time, record.value),
        })
    }

    /// Runs a raw query: all matching points from all matching series,
    /// sorted by (time, series).
    pub fn query(&self, q: &Query) -> Vec<Row> {
        self.query_profiled(q, &mut QueryProfile::default())
    }

    /// [`Table::query`] while accumulating scan costs into `profile`.
    pub fn query_profiled(&self, q: &Query, profile: &mut QueryProfile) -> Vec<Row> {
        let (from, to) = q.time_range();
        profile.observe_query(q);
        let mut rows = Vec::new();
        for series in self.scan_candidates(q, from, to, profile) {
            let (pts, chunks) = series.range_scan(from, to);
            profile.chunks_decompressed += chunks;
            profile.rows_decoded += pts.len() as u64;
            for &(time, value) in pts {
                rows.push(Row {
                    time,
                    value,
                    dimensions: series.dimensions.clone(),
                });
            }
        }
        rows.sort_by(|a, b| {
            a.time
                .cmp(&b.time)
                .then_with(|| a.dimensions.cmp(&b.dimensions))
        });
        profile.rows_post_filter = rows.len() as u64;
        rows
    }

    /// The latest point (within the query's range) of each matching series.
    pub fn latest(&self, q: &Query) -> Vec<Row> {
        self.latest_profiled(q, &mut QueryProfile::default())
    }

    /// [`Table::latest`] while accumulating scan costs into `profile`.
    /// The lookup decodes only the page holding each series' last
    /// in-range point, so it charges one chunk and one row per hit.
    pub fn latest_profiled(&self, q: &Query, profile: &mut QueryProfile) -> Vec<Row> {
        let (from, to) = q.time_range();
        profile.observe_query(q);
        let rows: Vec<Row> = self
            .scan_candidates(q, from, to, profile)
            .into_iter()
            .filter_map(|series| {
                let (pts, _) = series.range_scan(from, to);
                pts.last().map(|&(time, value)| {
                    profile.chunks_decompressed += 1;
                    profile.rows_decoded += 1;
                    Row {
                        time,
                        value,
                        dimensions: series.dimensions.clone(),
                    }
                })
            })
            .collect();
        profile.rows_post_filter = rows.len() as u64;
        rows
    }

    /// The value in effect at `at` (latest point at or before `at`) of each
    /// matching series — how the archive answers "what did the advisor say
    /// on day X".
    pub fn value_at(&self, q: &Query, at: u64) -> Vec<Row> {
        self.value_at_profiled(q, at, &mut QueryProfile::default())
    }

    /// [`Table::value_at`] while accumulating scan costs into `profile`.
    pub fn value_at_profiled(&self, q: &Query, at: u64, profile: &mut QueryProfile) -> Vec<Row> {
        profile.observe_query(q);
        profile.from = 0;
        profile.to = at;
        let rows: Vec<Row> = self
            .scan_candidates(q, 0, at, profile)
            .into_iter()
            .filter_map(|series| {
                let (found, chunks) = series.value_at_scan(at);
                profile.chunks_decompressed += chunks;
                found.map(|(time, value)| {
                    profile.rows_decoded += 1;
                    Row {
                        time,
                        value,
                        dimensions: series.dimensions.clone(),
                    }
                })
            })
            .collect();
        profile.rows_post_filter = rows.len() as u64;
        rows
    }

    /// Tumbling-window aggregation pooled across all matching series:
    /// windows start at the query's `from` (or 0) and have length `window`
    /// seconds. Empty windows are omitted.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn query_window(&self, q: &Query, window: u64, agg: Aggregate) -> Vec<WindowRow> {
        self.query_window_profiled(q, window, agg, &mut QueryProfile::default())
    }

    /// [`Table::query_window`] while accumulating scan costs into
    /// `profile`: every in-range point is decoded, and the aggregated
    /// window rows are what survives the filter stage.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn query_window_profiled(
        &self,
        q: &Query,
        window: u64,
        agg: Aggregate,
        profile: &mut QueryProfile,
    ) -> Vec<WindowRow> {
        assert!(window > 0, "window length must be positive");
        let (from, to) = q.time_range();
        profile.observe_query(q);
        let base = from;
        let mut buckets: BTreeMap<u64, Vec<(u64, f64)>> = BTreeMap::new();
        for series in self.scan_candidates(q, from, to, profile) {
            let (pts, chunks) = series.range_scan(from, to);
            profile.chunks_decompressed += chunks;
            profile.rows_decoded += pts.len() as u64;
            for &(time, value) in pts {
                let w = base + ((time - base) / window) * window;
                buckets.entry(w).or_default().push((time, value));
            }
        }
        let rows: Vec<WindowRow> = buckets
            .into_iter()
            .filter_map(|(window_start, pts)| {
                agg.apply(&pts).map(|value| WindowRow {
                    window_start,
                    value,
                    count: pts.len(),
                })
            })
            .collect();
        profile.rows_post_filter = rows.len() as u64;
        rows
    }

    /// Selects the series a scan must touch, tallying the candidates that
    /// were pruned without decompression — by dimension-filter mismatch or
    /// because their time bounds are disjoint from `[from, to]`.
    fn scan_candidates<'a>(
        &'a self,
        q: &Query,
        from: u64,
        to: u64,
        profile: &mut QueryProfile,
    ) -> Vec<&'a Series> {
        let mut candidates = Vec::new();
        if let Some(measure) = self.series.get(q.measure_name()) {
            for series in measure.values() {
                profile.series_total += 1;
                if q.matches(&series.dimensions) && series.overlaps(from, to) {
                    candidates.push(series);
                } else {
                    profile.series_pruned += 1;
                }
            }
        }
        profile.series_scanned = profile.series_total - profile.series_pruned;
        candidates
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.values().map(BTreeMap::len).sum()
    }

    /// Total number of stored points.
    pub fn point_count(&self) -> usize {
        self.series
            .values()
            .flat_map(BTreeMap::values)
            .map(Series::len)
            .sum()
    }

    /// Applies the retention policy relative to `now`; returns the number
    /// of points dropped. Series left empty are removed.
    pub fn enforce_retention(&mut self, now: u64) -> usize {
        let Some(retention) = self.options.retention else {
            return 0;
        };
        let cutoff = now.saturating_sub(retention);
        let mut dropped = 0;
        for m in self.series.values_mut() {
            m.retain(|_, s| {
                dropped += s.prune_before(cutoff);
                !s.is_empty()
            });
        }
        self.series.retain(|_, m| !m.is_empty());
        dropped
    }

    /// Iterates over `(measure, dimensions)` of every stored series —
    /// lets recovery re-prime freshness tracking for series that predate
    /// the crash.
    pub fn series_dimension_sets(&self) -> impl Iterator<Item = (&str, &[(String, String)])> {
        self.series.iter().flat_map(|(measure, m)| {
            m.values()
                .map(move |s| (measure.as_str(), s.dimensions.as_slice()))
        })
    }

    /// Iterates over `(measure, series)` pairs — used by the persistence
    /// codec.
    pub(crate) fn series_entries(&self) -> impl Iterator<Item = (&String, &Series)> {
        self.series
            .iter()
            .flat_map(|(measure, m)| m.values().map(move |s| (measure, s)))
    }

    pub(crate) fn insert_series_raw(
        &mut self,
        dimensions: Vec<(String, String)>,
        measure: &str,
        points: Vec<(u64, f64)>,
    ) {
        let dim_key = series_key("", &dimensions);
        let mut series = Series::new(dimensions);
        for (t, v) in points {
            series.insert(t, v);
        }
        self.series
            .entry(measure.to_owned())
            .or_default()
            .insert(dim_key, series);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new(TableOptions::default());
        for (time, ty, v) in [
            (0u64, "m5.large", 3.0),
            (600, "m5.large", 3.0),
            (1200, "m5.large", 2.0),
            (0, "p3.2xlarge", 1.0),
            (600, "p3.2xlarge", 2.0),
        ] {
            t.write(&Record::new(time, "sps", v).dimension("instance_type", ty))
                .unwrap();
        }
        t
    }

    #[test]
    fn query_filters_by_dimension_and_time() {
        let t = sample_table();
        let q = Query::measure("sps").filter("instance_type", "m5.large");
        assert_eq!(t.query(&q).len(), 3);
        let q = q.between(600, 1200);
        let rows = t.query(&q);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].time, 600);
    }

    #[test]
    fn query_without_filters_spans_series_sorted_by_time() {
        let t = sample_table();
        let rows = t.query(&Query::measure("sps"));
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn measure_prefix_does_not_leak() {
        let mut t = sample_table();
        t.write(&Record::new(0, "sps_extra", 9.0)).unwrap();
        assert_eq!(t.query(&Query::measure("sps")).len(), 5);
        assert_eq!(t.query(&Query::measure("sps_extra")).len(), 1);
    }

    #[test]
    fn latest_and_value_at() {
        let t = sample_table();
        let q = Query::measure("sps").filter("instance_type", "m5.large");
        let latest = t.latest(&q);
        assert_eq!(latest.len(), 1);
        assert_eq!(latest[0].time, 1200);
        assert_eq!(latest[0].value, 2.0);
        let at = t.value_at(&q, 700);
        assert_eq!(at[0].time, 600);
        assert_eq!(at[0].value, 3.0);
        assert!(t.value_at(&Query::measure("nope"), 700).is_empty());
    }

    #[test]
    fn windowed_mean() {
        let t = sample_table();
        let rows = t.query_window(&Query::measure("sps"), 600, Aggregate::Mean);
        // Windows: [0,600) -> {3.0, 1.0}, [600,1200) -> {3.0, 2.0},
        // [1200,1800) -> {2.0}.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].value, 2.0);
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[1].value, 2.5);
        assert_eq!(rows[2].value, 2.0);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn zero_window_panics() {
        sample_table().query_window(&Query::measure("sps"), 0, Aggregate::Mean);
    }

    #[test]
    fn changepoint_table_stores_only_changes() {
        let mut t = Table::new(TableOptions {
            mode: WriteMode::ChangePoint,
            retention: None,
        });
        assert!(t.write(&Record::new(0, "price", 0.10)).unwrap());
        assert!(!t.write(&Record::new(600, "price", 0.10)).unwrap());
        assert!(t.write(&Record::new(1200, "price", 0.11)).unwrap());
        assert_eq!(t.point_count(), 2);
    }

    #[test]
    fn retention_drops_old_points_and_empty_series() {
        let mut t = Table::new(TableOptions {
            mode: WriteMode::Dense,
            retention: Some(1000),
        });
        t.write(&Record::new(0, "m", 1.0).dimension("k", "old"))
            .unwrap();
        t.write(&Record::new(5000, "m", 2.0).dimension("k", "new"))
            .unwrap();
        assert_eq!(t.series_count(), 2);
        let dropped = t.enforce_retention(5500);
        assert_eq!(dropped, 1);
        assert_eq!(t.series_count(), 1);
        // No retention configured -> no-op.
        let mut t2 = Table::new(TableOptions::default());
        t2.write(&Record::new(0, "m", 1.0)).unwrap();
        assert_eq!(t2.enforce_retention(u64::MAX), 0);
    }

    #[test]
    fn counts() {
        let t = sample_table();
        assert_eq!(t.series_count(), 2);
        assert_eq!(t.point_count(), 5);
    }

    #[test]
    fn profiled_query_tallies_prune_scan_decode_and_filter() {
        let t = sample_table();
        let q = Query::measure("sps").filter("instance_type", "m5.large");
        let mut profile = QueryProfile::default();
        let rows = t.query_profiled(&q, &mut profile);
        assert_eq!(rows, t.query(&q), "profiling does not change results");
        assert_eq!(profile.measure, "sps");
        assert_eq!(profile.series_total, 2);
        assert_eq!(profile.series_pruned, 1, "p3.2xlarge filtered out");
        assert_eq!(profile.series_scanned, 1);
        assert_eq!(profile.chunks_decompressed, 1, "3 points fit one page");
        assert_eq!(profile.rows_decoded, 3);
        assert_eq!(profile.rows_post_filter, 3);

        // A time range disjoint from every series prunes without scanning.
        let mut disjoint = QueryProfile::default();
        let none = t.query_profiled(
            &Query::measure("sps").between(10_000, 20_000),
            &mut disjoint,
        );
        assert!(none.is_empty());
        assert_eq!(disjoint.series_pruned, 2, "bounds check pruned both");
        assert_eq!(disjoint.chunks_decompressed, 0);
    }

    #[test]
    fn profiled_latest_and_value_at_charge_single_chunks() {
        let t = sample_table();
        let q = Query::measure("sps");
        let mut latest = QueryProfile::default();
        let rows = t.latest_profiled(&q, &mut latest);
        assert_eq!(rows.len(), 2);
        assert_eq!(latest.series_scanned, 2);
        assert_eq!(latest.chunks_decompressed, 2, "one page per hit");
        assert_eq!(latest.rows_decoded, 2);
        assert_eq!(latest.rows_post_filter, 2);

        let mut at = QueryProfile::default();
        let rows = t.value_at_profiled(&q, 700, &mut at);
        assert_eq!(rows, t.value_at(&q, 700));
        assert_eq!(at.to, 700, "value_at range is [0, at]");
        assert_eq!(at.rows_post_filter, 2);
    }

    #[test]
    fn profiled_window_counts_decoded_points_and_window_rows() {
        let t = sample_table();
        let mut profile = QueryProfile::default();
        let rows =
            t.query_window_profiled(&Query::measure("sps"), 600, Aggregate::Mean, &mut profile);
        assert_eq!(
            rows,
            t.query_window(&Query::measure("sps"), 600, Aggregate::Mean)
        );
        assert_eq!(profile.rows_decoded, 5, "every in-range point decoded");
        assert_eq!(profile.rows_post_filter, 3, "three non-empty windows");
    }
}
