//! Tables: named collections of series with a write mode and retention.

use crate::error::TsError;
use crate::query::{Aggregate, Query, Row, WindowRow};
use crate::record::{series_key, Record};
use crate::series::Series;
use std::collections::BTreeMap;

/// How writes are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Every (validated) record is stored.
    #[default]
    Dense,
    /// A record is stored only when its value differs from the series'
    /// latest value — the natural representation for the price and advisor
    /// datasets, which change rarely (paper Figure 10).
    ChangePoint,
}

/// Per-table options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableOptions {
    /// Write mode.
    pub mode: WriteMode,
    /// Optional retention window in seconds: on
    /// [`Table::enforce_retention`], points older than `now - retention`
    /// are dropped.
    pub retention: Option<u64>,
}

/// A named table of time series.
#[derive(Debug, Clone, Default)]
pub struct Table {
    options: TableOptions,
    /// measure name → (dimension key → series).
    series: BTreeMap<String, BTreeMap<String, Series>>,
}

impl Table {
    pub(crate) fn new(options: TableOptions) -> Self {
        Table {
            options,
            series: BTreeMap::new(),
        }
    }

    /// The table's options.
    pub fn options(&self) -> TableOptions {
        self.options
    }

    /// Writes one record. Returns `true` if it was stored (change-point
    /// tables skip repeats).
    ///
    /// # Errors
    ///
    /// Returns [`TsError::BadRecord`] for invalid records.
    pub fn write(&mut self, record: &Record) -> Result<bool, TsError> {
        record.validate()?;
        let dim_key = series_key("", &record.dimensions);
        let series = self
            .series
            .entry(record.measure.clone())
            .or_default()
            .entry(dim_key)
            .or_insert_with(|| Series::new(record.dimensions.clone()));
        Ok(match self.options.mode {
            WriteMode::Dense => series.insert(record.time, record.value),
            WriteMode::ChangePoint => series.insert_changepoint(record.time, record.value),
        })
    }

    /// Runs a raw query: all matching points from all matching series,
    /// sorted by (time, series).
    pub fn query(&self, q: &Query) -> Vec<Row> {
        let (from, to) = q.time_range();
        let mut rows = Vec::new();
        for series in self.matching_series(q) {
            for &(time, value) in series.range(from, to) {
                rows.push(Row {
                    time,
                    value,
                    dimensions: series.dimensions.clone(),
                });
            }
        }
        rows.sort_by(|a, b| {
            a.time
                .cmp(&b.time)
                .then_with(|| a.dimensions.cmp(&b.dimensions))
        });
        rows
    }

    /// The latest point (within the query's range) of each matching series.
    pub fn latest(&self, q: &Query) -> Vec<Row> {
        let (from, to) = q.time_range();
        self.matching_series(q)
            .filter_map(|series| {
                let pts = series.range(from, to);
                pts.last().map(|&(time, value)| Row {
                    time,
                    value,
                    dimensions: series.dimensions.clone(),
                })
            })
            .collect()
    }

    /// The value in effect at `at` (latest point at or before `at`) of each
    /// matching series — how the archive answers "what did the advisor say
    /// on day X".
    pub fn value_at(&self, q: &Query, at: u64) -> Vec<Row> {
        self.matching_series(q)
            .filter_map(|series| {
                series.value_at(at).map(|(time, value)| Row {
                    time,
                    value,
                    dimensions: series.dimensions.clone(),
                })
            })
            .collect()
    }

    /// Tumbling-window aggregation pooled across all matching series:
    /// windows start at the query's `from` (or 0) and have length `window`
    /// seconds. Empty windows are omitted.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn query_window(&self, q: &Query, window: u64, agg: Aggregate) -> Vec<WindowRow> {
        assert!(window > 0, "window length must be positive");
        let (from, to) = q.time_range();
        let base = from;
        let mut buckets: BTreeMap<u64, Vec<(u64, f64)>> = BTreeMap::new();
        for series in self.matching_series(q) {
            for &(time, value) in series.range(from, to) {
                let w = base + ((time - base) / window) * window;
                buckets.entry(w).or_default().push((time, value));
            }
        }
        buckets
            .into_iter()
            .filter_map(|(window_start, pts)| {
                agg.apply(&pts).map(|value| WindowRow {
                    window_start,
                    value,
                    count: pts.len(),
                })
            })
            .collect()
    }

    fn matching_series<'a>(&'a self, q: &'a Query) -> impl Iterator<Item = &'a Series> + 'a {
        self.series
            .get(q.measure_name())
            .into_iter()
            .flat_map(|m| m.values())
            .filter(move |s| q.matches(&s.dimensions))
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.values().map(BTreeMap::len).sum()
    }

    /// Total number of stored points.
    pub fn point_count(&self) -> usize {
        self.series
            .values()
            .flat_map(BTreeMap::values)
            .map(Series::len)
            .sum()
    }

    /// Applies the retention policy relative to `now`; returns the number
    /// of points dropped. Series left empty are removed.
    pub fn enforce_retention(&mut self, now: u64) -> usize {
        let Some(retention) = self.options.retention else {
            return 0;
        };
        let cutoff = now.saturating_sub(retention);
        let mut dropped = 0;
        for m in self.series.values_mut() {
            m.retain(|_, s| {
                dropped += s.prune_before(cutoff);
                !s.is_empty()
            });
        }
        self.series.retain(|_, m| !m.is_empty());
        dropped
    }

    /// Iterates over `(measure, series)` pairs — used by the persistence
    /// codec.
    pub(crate) fn series_entries(&self) -> impl Iterator<Item = (&String, &Series)> {
        self.series
            .iter()
            .flat_map(|(measure, m)| m.values().map(move |s| (measure, s)))
    }

    pub(crate) fn insert_series_raw(
        &mut self,
        dimensions: Vec<(String, String)>,
        measure: &str,
        points: Vec<(u64, f64)>,
    ) {
        let dim_key = series_key("", &dimensions);
        let mut series = Series::new(dimensions);
        for (t, v) in points {
            series.insert(t, v);
        }
        self.series
            .entry(measure.to_owned())
            .or_default()
            .insert(dim_key, series);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new(TableOptions::default());
        for (time, ty, v) in [
            (0u64, "m5.large", 3.0),
            (600, "m5.large", 3.0),
            (1200, "m5.large", 2.0),
            (0, "p3.2xlarge", 1.0),
            (600, "p3.2xlarge", 2.0),
        ] {
            t.write(&Record::new(time, "sps", v).dimension("instance_type", ty))
                .unwrap();
        }
        t
    }

    #[test]
    fn query_filters_by_dimension_and_time() {
        let t = sample_table();
        let q = Query::measure("sps").filter("instance_type", "m5.large");
        assert_eq!(t.query(&q).len(), 3);
        let q = q.between(600, 1200);
        let rows = t.query(&q);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].time, 600);
    }

    #[test]
    fn query_without_filters_spans_series_sorted_by_time() {
        let t = sample_table();
        let rows = t.query(&Query::measure("sps"));
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn measure_prefix_does_not_leak() {
        let mut t = sample_table();
        t.write(&Record::new(0, "sps_extra", 9.0)).unwrap();
        assert_eq!(t.query(&Query::measure("sps")).len(), 5);
        assert_eq!(t.query(&Query::measure("sps_extra")).len(), 1);
    }

    #[test]
    fn latest_and_value_at() {
        let t = sample_table();
        let q = Query::measure("sps").filter("instance_type", "m5.large");
        let latest = t.latest(&q);
        assert_eq!(latest.len(), 1);
        assert_eq!(latest[0].time, 1200);
        assert_eq!(latest[0].value, 2.0);
        let at = t.value_at(&q, 700);
        assert_eq!(at[0].time, 600);
        assert_eq!(at[0].value, 3.0);
        assert!(t.value_at(&Query::measure("nope"), 700).is_empty());
    }

    #[test]
    fn windowed_mean() {
        let t = sample_table();
        let rows = t.query_window(&Query::measure("sps"), 600, Aggregate::Mean);
        // Windows: [0,600) -> {3.0, 1.0}, [600,1200) -> {3.0, 2.0},
        // [1200,1800) -> {2.0}.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].value, 2.0);
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[1].value, 2.5);
        assert_eq!(rows[2].value, 2.0);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn zero_window_panics() {
        sample_table().query_window(&Query::measure("sps"), 0, Aggregate::Mean);
    }

    #[test]
    fn changepoint_table_stores_only_changes() {
        let mut t = Table::new(TableOptions {
            mode: WriteMode::ChangePoint,
            retention: None,
        });
        assert!(t.write(&Record::new(0, "price", 0.10)).unwrap());
        assert!(!t.write(&Record::new(600, "price", 0.10)).unwrap());
        assert!(t.write(&Record::new(1200, "price", 0.11)).unwrap());
        assert_eq!(t.point_count(), 2);
    }

    #[test]
    fn retention_drops_old_points_and_empty_series() {
        let mut t = Table::new(TableOptions {
            mode: WriteMode::Dense,
            retention: Some(1000),
        });
        t.write(&Record::new(0, "m", 1.0).dimension("k", "old"))
            .unwrap();
        t.write(&Record::new(5000, "m", 2.0).dimension("k", "new"))
            .unwrap();
        assert_eq!(t.series_count(), 2);
        let dropped = t.enforce_retention(5500);
        assert_eq!(dropped, 1);
        assert_eq!(t.series_count(), 1);
        // No retention configured -> no-op.
        let mut t2 = Table::new(TableOptions::default());
        t2.write(&Record::new(0, "m", 1.0)).unwrap();
        assert_eq!(t2.enforce_retention(u64::MAX), 0);
    }

    #[test]
    fn counts() {
        let t = sample_table();
        assert_eq!(t.series_count(), 2);
        assert_eq!(t.point_count(), 5);
    }
}
