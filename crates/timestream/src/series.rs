//! One series: the points of a single (measure, dimensions) pair.

/// Storage chunk size in points, for query cost accounting. The on-disk
/// codec compresses each series as one Gorilla stream, but a columnar
/// store pages data in fixed chunks; the cost model charges a query one
/// "chunk decompressed" per [`CHUNK_POINTS`]-point page its scan touches,
/// which keeps EXPLAIN costs meaningful without changing storage.
pub(crate) const CHUNK_POINTS: usize = 256;

/// Number of [`CHUNK_POINTS`]-sized pages the index range `[start, end)`
/// touches.
pub(crate) fn chunks_touched(start: usize, end: usize) -> u64 {
    if end <= start {
        0
    } else {
        ((end - 1) / CHUNK_POINTS - start / CHUNK_POINTS + 1) as u64
    }
}

/// A single time series, sorted by timestamp.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Series {
    /// The series' dimensions (sorted by key), kept for query filtering.
    pub(crate) dimensions: Vec<(String, String)>,
    /// Points, sorted by time, at most one per timestamp.
    points: Vec<(u64, f64)>,
}

impl Series {
    pub(crate) fn new(dimensions: Vec<(String, String)>) -> Self {
        Series {
            dimensions,
            points: Vec::new(),
        }
    }

    /// Inserts a point, keeping time order. A point at an existing
    /// timestamp overwrites it. Returns `true` if the series changed.
    pub(crate) fn insert(&mut self, time: u64, value: f64) -> bool {
        match self.points.binary_search_by_key(&time, |&(t, _)| t) {
            Ok(i) => {
                if self.points[i].1 == value {
                    false
                } else {
                    self.points[i].1 = value;
                    true
                }
            }
            Err(i) => {
                self.points.insert(i, (time, value));
                true
            }
        }
    }

    /// Inserts only if the value differs from the latest point's value
    /// (*change-point mode*). Returns `true` if stored.
    pub(crate) fn insert_changepoint(&mut self, time: u64, value: f64) -> bool {
        match self.points.last() {
            Some(&(last_t, last_v)) if time >= last_t => {
                if last_v == value {
                    false
                } else {
                    self.insert(time, value)
                }
            }
            _ => self.insert(time, value),
        }
    }

    pub(crate) fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Points with `from <= t <= to`, plus the number of storage chunks
    /// the scan touched, for query cost accounting.
    pub(crate) fn range_scan(&self, from: u64, to: u64) -> (&[(u64, f64)], u64) {
        let start = self.points.partition_point(|&(t, _)| t < from);
        let end = self.points.partition_point(|&(t, _)| t <= to);
        (&self.points[start..end], chunks_touched(start, end))
    }

    /// The latest point at or before `at`, plus the chunks touched (one
    /// when a point is found: the lookup decodes only the page holding
    /// it).
    pub(crate) fn value_at_scan(&self, at: u64) -> (Option<(u64, f64)>, u64) {
        let idx = self.points.partition_point(|&(t, _)| t <= at);
        match idx.checked_sub(1) {
            Some(i) => (Some(self.points[i]), 1),
            None => (None, 0),
        }
    }

    /// Whether any stored point could fall inside `[from, to]` — the
    /// cheap bounds check that lets a scan prune this series without
    /// touching its chunks.
    pub(crate) fn overlaps(&self, from: u64, to: u64) -> bool {
        match (self.points.first(), self.points.last()) {
            (Some(&(first, _)), Some(&(last, _))) => first <= to && last >= from,
            _ => false,
        }
    }

    /// Drops points strictly older than `cutoff`. Returns how many were
    /// dropped.
    pub(crate) fn prune_before(&mut self, cutoff: u64) -> usize {
        let n = self.points.partition_point(|&(t, _)| t < cutoff);
        self.points.drain(..n);
        n
    }

    pub(crate) fn len(&self) -> usize {
        self.points.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn range(s: &Series, from: u64, to: u64) -> &[(u64, f64)] {
        s.range_scan(from, to).0
    }

    fn value_at(s: &Series, at: u64) -> Option<(u64, f64)> {
        s.value_at_scan(at).0
    }

    #[test]
    fn insert_keeps_order_and_overwrites() {
        let mut s = Series::new(vec![]);
        assert!(s.insert(10, 1.0));
        assert!(s.insert(5, 0.5));
        assert!(s.insert(20, 2.0));
        assert_eq!(s.points(), &[(5, 0.5), (10, 1.0), (20, 2.0)]);
        // Overwrite.
        assert!(s.insert(10, 1.5));
        assert_eq!(value_at(&s, 10), Some((10, 1.5)));
        // Same value at same time: no change.
        assert!(!s.insert(10, 1.5));
    }

    #[test]
    fn changepoint_mode_skips_repeats() {
        let mut s = Series::new(vec![]);
        assert!(s.insert_changepoint(0, 3.0));
        assert!(!s.insert_changepoint(600, 3.0));
        assert!(!s.insert_changepoint(1200, 3.0));
        assert!(s.insert_changepoint(1800, 2.0));
        assert_eq!(s.len(), 2);
        // Out-of-order writes in changepoint mode fall back to plain insert.
        assert!(s.insert_changepoint(900, 9.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn range_and_value_at() {
        let mut s = Series::new(vec![]);
        for t in [0u64, 600, 1200, 1800] {
            s.insert(t, t as f64);
        }
        assert_eq!(range(&s, 600, 1200), &[(600, 600.0), (1200, 1200.0)]);
        assert_eq!(range(&s, 601, 1199), &[] as &[(u64, f64)]);
        assert_eq!(range(&s, 0, u64::MAX).len(), 4);
        assert_eq!(value_at(&s, 599), Some((0, 0.0)));
        assert_eq!(value_at(&s, 1800), Some((1800, 1800.0)));
        let empty = Series::new(vec![]);
        assert_eq!(value_at(&empty, 100), None);
    }

    #[test]
    fn chunk_accounting_counts_touched_pages() {
        assert_eq!(chunks_touched(0, 0), 0);
        assert_eq!(chunks_touched(5, 5), 0);
        assert_eq!(chunks_touched(0, 1), 1);
        assert_eq!(chunks_touched(0, CHUNK_POINTS), 1);
        assert_eq!(chunks_touched(0, CHUNK_POINTS + 1), 2);
        assert_eq!(chunks_touched(CHUNK_POINTS - 1, CHUNK_POINTS + 1), 2);
        assert_eq!(chunks_touched(10, 20), 1, "within one page");

        let mut s = Series::new(vec![]);
        for t in 0..600u64 {
            s.insert(t, t as f64);
        }
        let (pts, chunks) = s.range_scan(0, u64::MAX);
        assert_eq!(pts.len(), 600);
        assert_eq!(chunks, 3, "600 points span 3 pages of 256");
        let (pts, chunks) = s.range_scan(10, 20);
        assert_eq!(pts.len(), 11);
        assert_eq!(chunks, 1);
        let (found, chunks) = s.value_at_scan(300);
        assert_eq!(found, Some((300, 300.0)));
        assert_eq!(chunks, 1);
        let (found, chunks) = Series::new(vec![]).value_at_scan(300);
        assert_eq!(found, None);
        assert_eq!(chunks, 0);
    }

    #[test]
    fn overlaps_is_a_bounds_check() {
        let mut s = Series::new(vec![]);
        s.insert(100, 1.0);
        s.insert(200, 2.0);
        assert!(s.overlaps(0, 100));
        assert!(s.overlaps(150, 160), "range inside the bounds");
        assert!(s.overlaps(200, 300));
        assert!(!s.overlaps(0, 99));
        assert!(!s.overlaps(201, 300));
        assert!(!Series::new(vec![]).overlaps(0, u64::MAX));
    }

    #[test]
    fn prune() {
        let mut s = Series::new(vec![]);
        for t in 0..10u64 {
            s.insert(t * 100, t as f64);
        }
        assert_eq!(s.prune_before(500), 5);
        assert_eq!(s.points()[0].0, 500);
        assert_eq!(s.prune_before(0), 0);
    }

    proptest! {
        #[test]
        fn always_sorted_unique_times(writes in prop::collection::vec((0u64..1000, -100.0f64..100.0), 0..200)) {
            let mut s = Series::new(vec![]);
            for (t, v) in writes {
                s.insert(t, v);
            }
            let pts = s.points();
            for w in pts.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
        }
    }
}
