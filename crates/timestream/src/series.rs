//! One series: the points of a single (measure, dimensions) pair.

/// A single time series, sorted by timestamp.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Series {
    /// The series' dimensions (sorted by key), kept for query filtering.
    pub(crate) dimensions: Vec<(String, String)>,
    /// Points, sorted by time, at most one per timestamp.
    points: Vec<(u64, f64)>,
}

impl Series {
    pub(crate) fn new(dimensions: Vec<(String, String)>) -> Self {
        Series {
            dimensions,
            points: Vec::new(),
        }
    }

    /// Inserts a point, keeping time order. A point at an existing
    /// timestamp overwrites it. Returns `true` if the series changed.
    pub(crate) fn insert(&mut self, time: u64, value: f64) -> bool {
        match self.points.binary_search_by_key(&time, |&(t, _)| t) {
            Ok(i) => {
                if self.points[i].1 == value {
                    false
                } else {
                    self.points[i].1 = value;
                    true
                }
            }
            Err(i) => {
                self.points.insert(i, (time, value));
                true
            }
        }
    }

    /// Inserts only if the value differs from the latest point's value
    /// (*change-point mode*). Returns `true` if stored.
    pub(crate) fn insert_changepoint(&mut self, time: u64, value: f64) -> bool {
        match self.points.last() {
            Some(&(last_t, last_v)) if time >= last_t => {
                if last_v == value {
                    false
                } else {
                    self.insert(time, value)
                }
            }
            _ => self.insert(time, value),
        }
    }

    pub(crate) fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Points with `from <= t <= to`.
    pub(crate) fn range(&self, from: u64, to: u64) -> &[(u64, f64)] {
        let start = self.points.partition_point(|&(t, _)| t < from);
        let end = self.points.partition_point(|&(t, _)| t <= to);
        &self.points[start..end]
    }

    /// The latest point at or before `at`.
    pub(crate) fn value_at(&self, at: u64) -> Option<(u64, f64)> {
        let idx = self.points.partition_point(|&(t, _)| t <= at);
        idx.checked_sub(1).map(|i| self.points[i])
    }

    /// Drops points strictly older than `cutoff`. Returns how many were
    /// dropped.
    pub(crate) fn prune_before(&mut self, cutoff: u64) -> usize {
        let n = self.points.partition_point(|&(t, _)| t < cutoff);
        self.points.drain(..n);
        n
    }

    pub(crate) fn len(&self) -> usize {
        self.points.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_keeps_order_and_overwrites() {
        let mut s = Series::new(vec![]);
        assert!(s.insert(10, 1.0));
        assert!(s.insert(5, 0.5));
        assert!(s.insert(20, 2.0));
        assert_eq!(s.points(), &[(5, 0.5), (10, 1.0), (20, 2.0)]);
        // Overwrite.
        assert!(s.insert(10, 1.5));
        assert_eq!(s.value_at(10), Some((10, 1.5)));
        // Same value at same time: no change.
        assert!(!s.insert(10, 1.5));
    }

    #[test]
    fn changepoint_mode_skips_repeats() {
        let mut s = Series::new(vec![]);
        assert!(s.insert_changepoint(0, 3.0));
        assert!(!s.insert_changepoint(600, 3.0));
        assert!(!s.insert_changepoint(1200, 3.0));
        assert!(s.insert_changepoint(1800, 2.0));
        assert_eq!(s.len(), 2);
        // Out-of-order writes in changepoint mode fall back to plain insert.
        assert!(s.insert_changepoint(900, 9.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn range_and_value_at() {
        let mut s = Series::new(vec![]);
        for t in [0u64, 600, 1200, 1800] {
            s.insert(t, t as f64);
        }
        assert_eq!(s.range(600, 1200), &[(600, 600.0), (1200, 1200.0)]);
        assert_eq!(s.range(601, 1199), &[]);
        assert_eq!(s.range(0, u64::MAX).len(), 4);
        assert_eq!(s.value_at(599), Some((0, 0.0)));
        assert_eq!(s.value_at(1800), Some((1800, 1800.0)));
        let empty = Series::new(vec![]);
        assert_eq!(empty.value_at(100), None);
    }

    #[test]
    fn prune() {
        let mut s = Series::new(vec![]);
        for t in 0..10u64 {
            s.insert(t * 100, t as f64);
        }
        assert_eq!(s.prune_before(500), 5);
        assert_eq!(s.points()[0].0, 500);
        assert_eq!(s.prune_before(0), 0);
    }

    proptest! {
        #[test]
        fn always_sorted_unique_times(writes in prop::collection::vec((0u64..1000, -100.0f64..100.0), 0..200)) {
            let mut s = Series::new(vec![]);
            for (t, v) in writes {
                s.insert(t, v);
            }
            let pts = s.points();
            for w in pts.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
        }
    }
}
