//! Binary persistence codec.
//!
//! Hand-rolled, versioned format (no external serialization dependency):
//!
//! ```text
//! magic "SPTL" | u8 version | u32 table_count
//! per table: str name | u8 mode | u8 has_retention [u64 retention]
//!            | u32 series_count
//! per series: str measure | u32 dim_count | (str key, str value)*
//!             | u32 blob_len | <compressed points>
//! trailer:   u32 crc32 over everything before it
//! ```
//!
//! Integers are little-endian; strings are `u32` length + UTF-8 bytes.
//! Points are compressed with the delta-of-delta + XOR scheme of
//! [`crate::compress`]. Format version 3 added the whole-file CRC-32
//! trailer (version 2 had none; version 1 stored raw points), which is
//! what guarantees the corruption-matrix property: flipping *any* byte of
//! a saved archive makes [`load`] fail rather than decode garbage.
//!
//! [`save`] is atomic: the archive is serialized in memory, written to a
//! `.tmp` sibling, fsynced, and renamed over the target — a crash mid-save
//! leaves the previous archive untouched and loadable.

use crate::compress::{decode_series, encode_series};
use crate::crc::crc32;
use crate::db::Database;
use crate::error::TsError;
use crate::table::{Table, TableOptions, WriteMode};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"SPTL";
const VERSION: u8 = 3;
/// Bytes of `magic | version` before the first table.
const FILE_HEADER_LEN: usize = 5;
/// Guards length fields against corrupt files asking for absurd
/// allocations.
pub(crate) const MAX_LEN: u32 = 64 * 1024 * 1024;

pub(crate) fn save(db: &Database, path: &Path) -> Result<(), TsError> {
    atomic_write(path, &encode(db)?)?;
    Ok(())
}

pub(crate) fn load(path: &Path) -> Result<Database, TsError> {
    decode(&std::fs::read(path)?)
}

/// Serializes the database to the version-3 byte format, CRC trailer
/// included. Fails closed with [`TsError::TooLarge`] if any collection
/// cannot express its length as a `u32` — nothing is ever truncated into
/// a length field.
pub(crate) fn encode(db: &Database) -> Result<Vec<u8>, TsError> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_len(&mut out, db.tables().len(), "table count")?;
    for (name, table) in db.tables() {
        put_str(&mut out, name)?;
        let opts = table.options();
        let mode = match opts.mode {
            WriteMode::Dense => 0u8,
            WriteMode::ChangePoint => 1u8,
        };
        out.push(mode);
        match opts.retention {
            Some(r) => {
                out.push(1);
                put_u64(&mut out, r);
            }
            None => out.push(0),
        }
        let series: Vec<_> = table.series_entries().collect();
        put_len(&mut out, series.len(), "series count")?;
        for (measure, s) in series {
            put_str(&mut out, measure)?;
            put_len(&mut out, s.dimensions.len(), "dimension count")?;
            for (k, v) in &s.dimensions {
                put_str(&mut out, k)?;
                put_str(&mut out, v)?;
            }
            let blob = encode_series(s.points());
            put_len(&mut out, blob.len(), "series blob")?;
            out.extend_from_slice(&blob);
        }
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    Ok(out)
}

/// Decodes a version-3 archive. Every length field is bounded by the
/// bytes actually remaining in the buffer *before* any allocation, so a
/// corrupt file can never request an implausible allocation — and the CRC
/// trailer is verified first, so it never gets the chance to.
pub(crate) fn decode(bytes: &[u8]) -> Result<Database, TsError> {
    let body_len = match bytes.len().checked_sub(4) {
        Some(n) if n >= FILE_HEADER_LEN => n,
        _ => return Err(corrupt("file too short")),
    };
    if bytes.get(..MAGIC.len()) != Some(MAGIC.as_slice()) {
        return Err(corrupt("bad magic"));
    }
    match bytes.get(MAGIC.len()).copied() {
        Some(VERSION) => {}
        Some(version) => {
            return Err(TsError::Corrupt {
                detail: format!("unsupported version {version}"),
            })
        }
        None => return Err(corrupt("file too short")),
    }
    let body = bytes
        .get(..body_len)
        .ok_or_else(|| corrupt("file too short"))?;
    let stored = read_u32_le(bytes, body_len).ok_or_else(|| corrupt("file too short"))?;
    if crc32(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let mut db = Database::new();
    let frames = body
        .get(FILE_HEADER_LEN..)
        .ok_or_else(|| corrupt("file too short"))?;
    let mut c = Cursor::new(frames);
    let table_count = c.u32()?;
    for _ in 0..table_count {
        let name = c.str_()?;
        let mode = match c.u8()? {
            0 => WriteMode::Dense,
            1 => WriteMode::ChangePoint,
            m => {
                return Err(TsError::Corrupt {
                    detail: format!("unknown write mode {m}"),
                })
            }
        };
        let retention = match c.u8()? {
            0 => None,
            1 => Some(c.u64()?),
            f => {
                return Err(TsError::Corrupt {
                    detail: format!("bad retention flag {f}"),
                })
            }
        };
        let mut table = Table::new(TableOptions { mode, retention });
        let series_count = c.u32()?;
        for _ in 0..series_count {
            let measure = c.str_()?;
            let dims = c.dimensions()?;
            let blob_len = c.u32()?;
            check_len(blob_len)?;
            let blob = c.take(blob_len as usize)?;
            let points = decode_series(blob)?;
            table.insert_series_raw(dims, &measure, points);
        }
        db.insert_table_raw(name, table);
    }
    // Trailing garbage means the file is not what we wrote.
    if !c.is_done() {
        return Err(corrupt("trailing data"));
    }
    Ok(db)
}

/// Writes `bytes` to `path` atomically: temp sibling + fsync + rename.
/// A crash at any point leaves either the old file or the new one, never
/// a torn mixture.
///
/// This is the single designated write path for durable artifacts — the
/// workspace lint (rule `durability`) rejects raw `File::create` +
/// `write` anywhere else in the persistence layer.
///
/// # Errors
///
/// Returns [`TsError::Io`] on filesystem failure; the temp sibling may
/// remain but the target is untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), TsError> {
    let tmp = tmp_path(path);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Truncates `path` to `len` bytes and fsyncs — the designated helper for
/// cutting a torn WAL tail. Part of the audited durability surface next
/// to [`atomic_write`].
pub(crate) fn truncate_sync(path: &Path, len: u64) -> Result<(), TsError> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_all()?;
    Ok(())
}

/// The temp sibling [`atomic_write`] stages into: `<path>.tmp`.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

fn corrupt(detail: &str) -> TsError {
    TsError::Corrupt {
        detail: detail.to_owned(),
    }
}

pub(crate) fn check_len(n: u32) -> Result<(), TsError> {
    if n > MAX_LEN {
        return Err(TsError::Corrupt {
            detail: format!("length field {n} exceeds limit"),
        });
    }
    Ok(())
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes a collection/byte length as a `u32` field, failing closed with
/// [`TsError::TooLarge`] when it cannot fit — never narrowing silently.
pub(crate) fn put_len(out: &mut Vec<u8>, n: usize, what: &'static str) -> Result<(), TsError> {
    let v = u32::try_from(n).map_err(|_| TsError::TooLarge { what })?;
    put_u32(out, v);
    Ok(())
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), TsError> {
    put_len(out, s.len(), "string length")?;
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Reads a little-endian `u32` at byte offset `at`, if those four bytes
/// exist — the bounds-checked primitive frame scanning is built on.
pub(crate) fn read_u32_le(bytes: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let slice = bytes.get(at..end)?;
    <[u8; 4]>::try_from(slice).ok().map(u32::from_le_bytes)
}

/// Bounds-checked reader over an in-memory buffer. Every read verifies
/// the requested bytes actually remain, so no length field can drive an
/// allocation or read past the end.
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    pub(crate) fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], TsError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt("truncated input"))?;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or_else(|| corrupt("truncated input"))?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, TsError> {
        self.take(1)?
            .first()
            .copied()
            .ok_or_else(|| corrupt("truncated input"))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, TsError> {
        let arr = <[u8; 4]>::try_from(self.take(4)?).map_err(|_| corrupt("truncated input"))?;
        Ok(u32::from_le_bytes(arr))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, TsError> {
        let arr = <[u8; 8]>::try_from(self.take(8)?).map_err(|_| corrupt("truncated input"))?;
        Ok(u64::from_le_bytes(arr))
    }

    pub(crate) fn str_(&mut self) -> Result<String, TsError> {
        let len = self.u32()?;
        check_len(len)?;
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid utf-8 in string"))
    }

    /// Reads a dimension list: `u32 count | (str key, str value)*`. The
    /// count is bounded by the bytes remaining (each entry needs at least
    /// its two length prefixes) before the vector is allocated.
    pub(crate) fn dimensions(&mut self) -> Result<Vec<(String, String)>, TsError> {
        let count = self.u32()? as usize;
        if count > self.remaining() / 8 {
            return Err(corrupt("dimension count implausible for payload size"));
        }
        let mut dims = Vec::with_capacity(count);
        for _ in 0..count {
            let k = self.str_()?;
            let v = self.str_()?;
            dims.push((k, v));
        }
        Ok(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::record::Record;

    fn tempfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spotlake-ts-codec-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip() {
        let mut db = Database::new();
        db.create_table(
            "prices",
            TableOptions {
                mode: WriteMode::ChangePoint,
                retention: Some(7_776_000),
            },
        )
        .unwrap();
        db.create_table("scores", TableOptions::default()).unwrap();
        db.write(
            "scores",
            &[
                Record::new(0, "sps", 3.0).dimension("instance_type", "m5.large"),
                Record::new(600, "sps", 2.0).dimension("instance_type", "m5.large"),
                Record::new(0, "if_score", 2.5).dimension("region", "us-east-1"),
            ],
        )
        .unwrap();
        db.write("prices", &[Record::new(0, "spot_price", 0.0928)])
            .unwrap();

        let path = tempfile("roundtrip");
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.table_names(), vec!["prices", "scores"]);
        assert_eq!(loaded.point_count(), db.point_count());
        let rows = loaded
            .query(
                "scores",
                &Query::measure("sps").filter("instance_type", "m5.large"),
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].value, 3.0);
        let opts = loaded.table("prices").unwrap().options();
        assert_eq!(opts.mode, WriteMode::ChangePoint);
        assert_eq!(opts.retention, Some(7_776_000));
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let path = tempfile("bad-magic");
        std::fs::write(&path, b"NOPE.....").unwrap();
        assert!(matches!(
            Database::load(&path),
            Err(TsError::Corrupt { .. })
        ));
        std::fs::write(&path, b"SP").unwrap();
        assert!(Database::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut db = Database::new();
        db.create_table("t", TableOptions::default()).unwrap();
        let path = tempfile("trailing");
        db.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xFF);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Database::load(&path),
            Err(TsError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_database_roundtrip() {
        let db = Database::new();
        let path = tempfile("empty");
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.table_names().is_empty());
    }

    #[test]
    fn old_version_is_rejected_not_misread() {
        let db = Database::new();
        let mut bytes = encode(&db).unwrap();
        bytes[4] = 2; // pretend to be the pre-checksum format
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("unsupported version 2"), "{err}");
    }

    #[test]
    fn interrupted_save_leaves_the_old_archive_loadable() {
        // First generation saved successfully.
        let mut db = Database::new();
        db.create_table("t", TableOptions::default()).unwrap();
        db.write("t", &[Record::new(0, "m", 1.0)]).unwrap();
        let path = tempfile("interrupted");
        db.save(&path).unwrap();

        // Second save dies mid-write: only a prefix of the new bytes
        // reaches the temp sibling and the rename never happens — exactly
        // the state a crash inside `atomic_write` leaves behind.
        db.write("t", &[Record::new(600, "m", 2.0)]).unwrap();
        let next = encode(&db).unwrap();
        std::fs::write(tmp_path(&path), &next[..next.len() / 2]).unwrap();

        let loaded = Database::load(&path).expect("old archive survives a torn save");
        assert_eq!(loaded.point_count(), 1, "the first generation, untouched");
        // And the torn temp file itself never loads as a database.
        assert!(Database::load(tmp_path(&path)).is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(tmp_path(&path)).ok();
    }

    #[test]
    fn cursor_bounds_every_read() {
        let mut c = Cursor::new(&[1, 0, 0, 0]);
        assert_eq!(c.u32().unwrap(), 1);
        assert!(c.u8().is_err(), "reads past the end fail");
        // A dimension count far beyond the remaining bytes is rejected
        // before any allocation.
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        assert!(Cursor::new(&huge).dimensions().is_err());
        // A string length beyond the remaining bytes likewise.
        let mut s = Vec::new();
        put_u32(&mut s, 1000);
        s.extend_from_slice(b"short");
        assert!(Cursor::new(&s).str_().is_err());
    }
}
