//! Binary persistence codec.
//!
//! Hand-rolled, versioned format (no external serialization dependency):
//!
//! ```text
//! magic "SPTL" | u8 version | u32 table_count
//! per table: str name | u8 mode | u8 has_retention [u64 retention]
//!            | u32 series_count
//! per series: str measure | u32 dim_count | (str key, str value)*
//!             | u32 blob_len | <compressed points>
//! ```
//!
//! Integers are little-endian; strings are `u32` length + UTF-8 bytes.
//! Points are compressed with the delta-of-delta + XOR scheme of
//! [`crate::compress`] (format version 2; version 1 stored raw points).

use crate::compress::{decode_series, encode_series};
use crate::db::Database;
use crate::error::TsError;
use crate::table::{Table, TableOptions, WriteMode};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SPTL";
const VERSION: u8 = 2;
/// Guards length fields against corrupt files asking for absurd
/// allocations.
const MAX_LEN: u32 = 64 * 1024 * 1024;

pub(crate) fn save(db: &Database, path: &Path) -> Result<(), TsError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    write_u32(&mut w, db.tables().len() as u32)?;
    for (name, table) in db.tables() {
        write_str(&mut w, name)?;
        let opts = table.options();
        let mode = match opts.mode {
            WriteMode::Dense => 0u8,
            WriteMode::ChangePoint => 1u8,
        };
        w.write_all(&[mode])?;
        match opts.retention {
            Some(r) => {
                w.write_all(&[1])?;
                write_u64(&mut w, r)?;
            }
            None => w.write_all(&[0])?,
        }
        let series: Vec<_> = table.series_entries().collect();
        write_u32(&mut w, series.len() as u32)?;
        for (measure, s) in series {
            write_str(&mut w, measure)?;
            write_u32(&mut w, s.dimensions.len() as u32)?;
            for (k, v) in &s.dimensions {
                write_str(&mut w, k)?;
                write_str(&mut w, v)?;
            }
            let blob = encode_series(s.points());
            write_u32(&mut w, blob.len() as u32)?;
            w.write_all(&blob)?;
        }
    }
    w.flush()?;
    Ok(())
}

pub(crate) fn load(path: &Path) -> Result<Database, TsError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TsError::Corrupt {
            detail: "bad magic".into(),
        });
    }
    let version = read_u8(&mut r)?;
    if version != VERSION {
        return Err(TsError::Corrupt {
            detail: format!("unsupported version {version}"),
        });
    }
    let mut db = Database::new();
    let table_count = read_u32(&mut r)?;
    for _ in 0..table_count {
        let name = read_str(&mut r)?;
        let mode = match read_u8(&mut r)? {
            0 => WriteMode::Dense,
            1 => WriteMode::ChangePoint,
            m => {
                return Err(TsError::Corrupt {
                    detail: format!("unknown write mode {m}"),
                })
            }
        };
        let retention = match read_u8(&mut r)? {
            0 => None,
            1 => Some(read_u64(&mut r)?),
            f => {
                return Err(TsError::Corrupt {
                    detail: format!("bad retention flag {f}"),
                })
            }
        };
        let mut table = Table::new(TableOptions { mode, retention });
        let series_count = read_u32(&mut r)?;
        for _ in 0..series_count {
            let measure = read_str(&mut r)?;
            let dim_count = read_u32(&mut r)?;
            check_len(dim_count)?;
            let mut dims = Vec::with_capacity(dim_count as usize);
            for _ in 0..dim_count {
                let k = read_str(&mut r)?;
                let v = read_str(&mut r)?;
                dims.push((k, v));
            }
            let blob_len = read_u32(&mut r)?;
            check_len(blob_len)?;
            let mut blob = vec![0u8; blob_len as usize];
            r.read_exact(&mut blob)?;
            let points = decode_series(&blob)?;
            table.insert_series_raw(dims, &measure, points);
        }
        db.insert_table_raw(name, table);
    }
    // Trailing garbage means the file is not what we wrote.
    let mut rest = [0u8; 1];
    if r.read(&mut rest)? != 0 {
        return Err(TsError::Corrupt {
            detail: "trailing data".into(),
        });
    }
    Ok(db)
}

fn check_len(n: u32) -> Result<(), TsError> {
    if n > MAX_LEN {
        return Err(TsError::Corrupt {
            detail: format!("length field {n} exceeds limit"),
        });
    }
    Ok(())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> std::io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, TsError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, TsError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, TsError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_str<R: Read>(r: &mut R) -> Result<String, TsError> {
    let len = read_u32(r)?;
    check_len(len)?;
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| TsError::Corrupt {
        detail: "invalid utf-8 in string".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::record::Record;

    fn tempfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spotlake-ts-codec-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip() {
        let mut db = Database::new();
        db.create_table(
            "prices",
            TableOptions {
                mode: WriteMode::ChangePoint,
                retention: Some(7_776_000),
            },
        )
        .unwrap();
        db.create_table("scores", TableOptions::default()).unwrap();
        db.write(
            "scores",
            &[
                Record::new(0, "sps", 3.0).dimension("instance_type", "m5.large"),
                Record::new(600, "sps", 2.0).dimension("instance_type", "m5.large"),
                Record::new(0, "if_score", 2.5).dimension("region", "us-east-1"),
            ],
        )
        .unwrap();
        db.write("prices", &[Record::new(0, "spot_price", 0.0928)])
            .unwrap();

        let path = tempfile("roundtrip");
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.table_names(), vec!["prices", "scores"]);
        assert_eq!(loaded.point_count(), db.point_count());
        let rows = loaded
            .query(
                "scores",
                &Query::measure("sps").filter("instance_type", "m5.large"),
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].value, 3.0);
        let opts = loaded.table("prices").unwrap().options();
        assert_eq!(opts.mode, WriteMode::ChangePoint);
        assert_eq!(opts.retention, Some(7_776_000));
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let path = tempfile("bad-magic");
        std::fs::write(&path, b"NOPE....").unwrap();
        assert!(matches!(
            Database::load(&path),
            Err(TsError::Corrupt { .. })
        ));
        std::fs::write(&path, b"SP").unwrap();
        assert!(Database::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut db = Database::new();
        db.create_table("t", TableOptions::default()).unwrap();
        let path = tempfile("trailing");
        db.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0xFF);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Database::load(&path),
            Err(TsError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_database_roundtrip() {
        let db = Database::new();
        let path = tempfile("empty");
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.table_names().is_empty());
    }
}
