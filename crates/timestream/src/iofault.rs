//! Deterministic disk-fault injection for the durability layer.
//!
//! The storage-side twin of `cloud-api`'s `FaultPlan`: every write the WAL
//! or the checkpoint writer performs rolls a seeded hash of
//! `(kind, scope, attempt, seed)`, so a given seed reproduces the identical
//! fault sequence bit-for-bit — which is what makes crash-recovery testable.
//!
//! Two fault classes with different semantics:
//!
//! * **Transient** (`fsync-fail`, `short-write`): the writer undoes the
//!   partial append (truncating back to the last committed offset) and
//!   returns a retryable [`TsError::WalFault`](crate::TsError::WalFault).
//!   Retrying the same batch is always safe.
//! * **Crash** (`torn-write`, `bit-flip`): models the process dying mid
//!   write. A partial or mangled frame is left on disk, the log is marked
//!   *dead* ([`TsError::WalDead`](crate::TsError::WalDead); every later
//!   operation fails), and only a restart — i.e. recovery — brings the
//!   store back. Recovery truncates the mangled tail, so the surviving
//!   state is exactly the committed prefix.

use std::collections::BTreeMap;

/// Seeded disk-fault rates for the WAL and checkpoint writers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoFaultPlan {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Probability a write dies mid-frame, leaving a torn tail (crash).
    pub torn_write_rate: f64,
    /// Probability a written frame has one bit flipped on disk (crash).
    pub bit_flip_rate: f64,
    /// Probability a write lands only partially and is undone (transient).
    pub short_write_rate: f64,
    /// Probability the post-write fsync fails and the append is undone
    /// (transient).
    pub fsync_fail_rate: f64,
}

impl IoFaultPlan {
    /// A zero-rate plan: the injector is wired but never fires.
    pub fn none(seed: u64) -> Self {
        IoFaultPlan {
            seed,
            torn_write_rate: 0.0,
            bit_flip_rate: 0.0,
            short_write_rate: 0.0,
            fsync_fail_rate: 0.0,
        }
    }

    /// Transient-only weather: fsync failures and short writes the retry
    /// path absorbs. Never kills the log.
    pub fn transient(seed: u64) -> Self {
        IoFaultPlan {
            short_write_rate: 0.05,
            fsync_fail_rate: 0.05,
            ..IoFaultPlan::none(seed)
        }
    }

    /// Crash weather: torn writes and bit flips that kill the log mid-run
    /// and exercise the recovery path.
    pub fn crash(seed: u64) -> Self {
        IoFaultPlan {
            torn_write_rate: 0.02,
            bit_flip_rate: 0.01,
            ..IoFaultPlan::none(seed)
        }
    }

    /// A named profile, for CLI flags: `none`, `transient`, or `crash`.
    pub fn profile(name: &str, seed: u64) -> Option<Self> {
        match name {
            "none" => Some(IoFaultPlan::none(seed)),
            "transient" => Some(IoFaultPlan::transient(seed)),
            "crash" => Some(IoFaultPlan::crash(seed)),
            _ => None,
        }
    }

    /// Whether every rate is zero (the plan can never fire).
    pub fn is_zero(&self) -> bool {
        self.torn_write_rate <= 0.0
            && self.bit_flip_rate <= 0.0
            && self.short_write_rate <= 0.0
            && self.fsync_fail_rate <= 0.0
    }
}

/// One injected fault decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum IoFault {
    /// Die after writing this fraction of the frame.
    TornWrite(f64),
    /// Write the whole frame with this bit index flipped, then die.
    BitFlip(u64),
    /// Write only part of the frame; the writer undoes it (retryable).
    ShortWrite,
    /// The durability barrier fails; the writer undoes the append
    /// (retryable).
    FsyncFail,
}

impl IoFault {
    pub(crate) fn kind(self) -> &'static str {
        match self {
            IoFault::TornWrite(_) => "torn-write",
            IoFault::BitFlip(_) => "bit-flip",
            IoFault::ShortWrite => "short-write",
            IoFault::FsyncFail => "fsync-fail",
        }
    }

    /// Whether this fault models the process dying (vs. transient weather).
    pub(crate) fn is_crash(self) -> bool {
        matches!(self, IoFault::TornWrite(_) | IoFault::BitFlip(_))
    }
}

/// Rolls fault decisions against a plan, keeping a per-scope attempt
/// counter so a retried write (a new attempt) rolls a fresh decision —
/// the same scheme as `cloud-api::fault::FaultInjector`.
#[derive(Debug, Clone, Default)]
pub(crate) struct IoFaultState {
    plan: Option<IoFaultPlan>,
    attempts: BTreeMap<String, u64>,
    counts: BTreeMap<&'static str, u64>,
}

impl IoFaultState {
    pub(crate) fn set_plan(&mut self, plan: IoFaultPlan) {
        self.plan = (!plan.is_zero()).then_some(plan);
    }

    /// Rolls the next decision for `scope` (`"append"`, `"checkpoint"`).
    /// Crash kinds are checked first: when a crash and a transient fault
    /// would both fire on the same attempt, the crash wins — dying
    /// pre-empts retrying.
    pub(crate) fn next(&mut self, scope: &str) -> Option<IoFault> {
        let plan = self.plan?;
        let attempt = self.attempts.entry(scope.to_owned()).or_insert(0);
        *attempt += 1;
        let attempt = *attempt;
        let roll =
            |kind: &str, rate: f64| rate > 0.0 && hash01(kind, scope, attempt, plan.seed) < rate;
        let fault = if roll("torn-write", plan.torn_write_rate) {
            // Tear the frame at a seeded fraction of its length.
            Some(IoFault::TornWrite(hash01(
                "torn-frac",
                scope,
                attempt,
                plan.seed,
            )))
        } else if roll("bit-flip", plan.bit_flip_rate) {
            Some(IoFault::BitFlip(hash_u64(
                "bit-pos", scope, attempt, plan.seed,
            )))
        } else if roll("fsync-fail", plan.fsync_fail_rate) {
            Some(IoFault::FsyncFail)
        } else if roll("short-write", plan.short_write_rate) {
            Some(IoFault::ShortWrite)
        } else {
            None
        };
        if let Some(f) = fault {
            *self.counts.entry(f.kind()).or_insert(0) += 1;
        }
        fault
    }

    /// Running totals of injected faults per kind, for metric export.
    pub(crate) fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }
}

/// FNV-1a over the decision key — the same hash the store's write
/// throttling and the simulator use, inlined to keep this crate
/// dependency-free.
pub(crate) fn hash_u64(kind: &str, scope: &str, attempt: u64, seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [
        b"io-fault".as_slice(),
        kind.as_bytes(),
        scope.as_bytes(),
        &attempt.to_le_bytes(),
        &seed.to_le_bytes(),
    ] {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ("ab", "c") and ("a", "bc") differ.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hash01(kind: &str, scope: &str, attempt: u64, seed: u64) -> f64 {
    (hash_u64(kind, scope, attempt, seed) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_parse_and_classify() {
        assert!(IoFaultPlan::profile("none", 1).unwrap().is_zero());
        assert!(!IoFaultPlan::profile("transient", 1).unwrap().is_zero());
        assert!(!IoFaultPlan::profile("crash", 1).unwrap().is_zero());
        assert!(IoFaultPlan::profile("apocalyptic", 1).is_none());
        assert!(IoFault::TornWrite(0.5).is_crash());
        assert!(IoFault::BitFlip(3).is_crash());
        assert!(!IoFault::ShortWrite.is_crash());
        assert!(!IoFault::FsyncFail.is_crash());
    }

    #[test]
    fn decisions_replay_from_the_seed() {
        let run = || {
            let mut s = IoFaultState::default();
            s.set_plan(IoFaultPlan {
                seed: 42,
                torn_write_rate: 0.1,
                bit_flip_rate: 0.1,
                short_write_rate: 0.2,
                fsync_fail_rate: 0.2,
            });
            (0..200)
                .map(|_| s.next("append"))
                .collect::<Vec<Option<IoFault>>>()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same seed, same fault sequence");
        assert!(a.iter().any(Option::is_some), "rates this high must fire");
        assert!(a.iter().any(Option::is_none), "and must not always fire");
    }

    #[test]
    fn scopes_roll_independently_and_zero_plans_never_fire() {
        let mut s = IoFaultState::default();
        s.set_plan(IoFaultPlan {
            seed: 7,
            short_write_rate: 0.5,
            ..IoFaultPlan::none(7)
        });
        let appends: Vec<_> = (0..50).map(|_| s.next("append")).collect();
        let checkpoints: Vec<_> = (0..50).map(|_| s.next("checkpoint")).collect();
        assert_ne!(appends, checkpoints, "scope feeds the hash");
        assert!(s.counts().get("short-write").copied().unwrap_or(0) > 0);

        let mut zero = IoFaultState::default();
        zero.set_plan(IoFaultPlan::none(7));
        assert!((0..100).all(|_| zero.next("append").is_none()));
    }
}
