//! Time-series compression for the persistence codec.
//!
//! Spot-dataset series are extremely compressible: timestamps advance on a
//! fixed collection tick and values barely change (the placement score sits
//! at 3.0 for ~88% of samples). The on-disk format therefore encodes each
//! series with the two classic tricks of Facebook's Gorilla paper, byte-
//! aligned for simplicity:
//!
//! * **Timestamps** — delta-of-delta, zigzag + LEB128 varint: a fixed tick
//!   costs one zero byte per point after the first two.
//! * **Values** — XOR with the previous value's bits, varint-encoded: a
//!   repeated value costs one byte.
//!
//! [`encode_series`] and [`decode_series`] are exact inverses for every
//! finite and non-finite `f64` (bits are preserved verbatim).

use crate::error::TsError;

/// Encodes a time-ordered series.
pub(crate) fn encode_series(points: &[(u64, f64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(points.len() * 3 + 8);
    write_varint(&mut out, points.len() as u64);
    let mut prev_t = 0u64;
    let mut prev_delta = 0i128;
    let mut prev_bits = 0u64;
    for (i, &(t, v)) in points.iter().enumerate() {
        if i == 0 {
            write_varint(&mut out, t);
        } else {
            let delta = i128::from(t) - i128::from(prev_t);
            let dod = delta - prev_delta;
            write_varint(&mut out, zigzag(dod as i64));
            prev_delta = delta;
        }
        prev_t = t;

        let bits = v.to_bits();
        write_varint(&mut out, bits ^ prev_bits);
        prev_bits = bits;
    }
    out
}

/// Decodes a series produced by [`encode_series`].
///
/// # Errors
///
/// Returns [`TsError::Corrupt`] on truncated or malformed input, including
/// trailing bytes.
pub(crate) fn decode_series(data: &[u8]) -> Result<Vec<(u64, f64)>, TsError> {
    let mut cursor = 0usize;
    let n = read_varint(data, &mut cursor)? as usize;
    if n > data.len().saturating_mul(16).max(1024) {
        return Err(corrupt("series length implausible for payload size"));
    }
    let mut points = Vec::with_capacity(n);
    let mut prev_t = 0u64;
    let mut prev_delta = 0i128;
    let mut prev_bits = 0u64;
    for i in 0..n {
        let t = if i == 0 {
            read_varint(data, &mut cursor)?
        } else {
            let dod = unzigzag(read_varint(data, &mut cursor)?);
            let delta = prev_delta + i128::from(dod);
            prev_delta = delta;
            let t = i128::from(prev_t) + delta;
            u64::try_from(t).map_err(|_| corrupt("timestamp underflow"))?
        };
        prev_t = t;

        let bits = read_varint(data, &mut cursor)? ^ prev_bits;
        prev_bits = bits;
        points.push((t, f64::from_bits(bits)));
    }
    if cursor != data.len() {
        return Err(corrupt("trailing bytes after series"));
    }
    Ok(points)
}

fn corrupt(detail: &str) -> TsError {
    TsError::Corrupt {
        detail: detail.to_owned(),
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], cursor: &mut usize) -> Result<u64, TsError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = data
            .get(*cursor)
            .ok_or_else(|| corrupt("truncated varint"))?;
        *cursor += 1;
        if shift >= 64 {
            return Err(corrupt("varint too long"));
        }
        value |= u64::from(byte & 0x7F)
            .checked_shl(shift)
            .ok_or_else(|| corrupt("varint overflow"))?;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_single() {
        assert_eq!(decode_series(&encode_series(&[])).unwrap(), vec![]);
        let one = [(42u64, 1.5f64)];
        assert_eq!(decode_series(&encode_series(&one)).unwrap(), one.to_vec());
    }

    #[test]
    fn fixed_tick_constant_value_is_tiny() {
        // 1000 points on a 600s tick, all 3.0 — the archetypal SPS series.
        let points: Vec<(u64, f64)> = (0..1000).map(|i| (i * 600, 3.0)).collect();
        let encoded = encode_series(&points);
        // Raw storage is 16 KB; delta-of-delta + XOR collapses to ~2 bytes
        // per point.
        assert!(
            encoded.len() < points.len() * 3,
            "{} bytes for {} points",
            encoded.len(),
            points.len()
        );
        assert_eq!(decode_series(&encoded).unwrap(), points);
    }

    #[test]
    fn preserves_non_finite_bits() {
        let points = [
            (0u64, f64::NAN),
            (1, f64::INFINITY),
            (2, f64::NEG_INFINITY),
            (3, -0.0),
        ];
        let decoded = decode_series(&encode_series(&points)).unwrap();
        for (a, b) in points.iter().zip(&decoded) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode_series(&[0xFF]).is_err()); // truncated varint
                                                  // Valid header claiming many points with no payload.
        let mut data = Vec::new();
        write_varint(&mut data, 50);
        assert!(decode_series(&data).is_err());
        // Trailing bytes.
        let mut ok = encode_series(&[(1, 2.0)]);
        ok.push(0);
        assert!(decode_series(&ok).is_err());
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 600, -600] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_series(
            raw in prop::collection::vec((0u64..u64::MAX / 2, any::<f64>()), 0..300)
        ) {
            // Sort and dedup timestamps as the store guarantees.
            let mut points = raw;
            points.sort_by_key(|&(t, _)| t);
            points.dedup_by_key(|&mut (t, _)| t);
            let decoded = decode_series(&encode_series(&points)).unwrap();
            prop_assert_eq!(decoded.len(), points.len());
            for (a, b) in points.iter().zip(&decoded) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }

        #[test]
        fn varint_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut cursor = 0;
            prop_assert_eq!(read_varint(&buf, &mut cursor).unwrap(), v);
            prop_assert_eq!(cursor, buf.len());
        }
    }
}
