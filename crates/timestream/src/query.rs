//! Read-side types: queries, rows, aggregation.

/// A query over one table: a measure name, optional dimension equality
/// filters, and a time range.
///
/// # Example
///
/// ```
/// use spotlake_timestream::Query;
///
/// let q = Query::measure("sps")
///     .filter("region", "us-east-1")
///     .between(0, 86_400);
/// assert_eq!(q.measure_name(), "sps");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    measure: String,
    filters: Vec<(String, String)>,
    from: u64,
    to: u64,
}

impl Query {
    /// Creates a query for all series of `measure`, over all time.
    pub fn measure(measure: impl Into<String>) -> Self {
        Query {
            measure: measure.into(),
            filters: Vec::new(),
            from: 0,
            to: u64::MAX,
        }
    }

    /// Restricts to series whose dimension `key` equals `value`.
    pub fn filter(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.filters.push((key.into(), value.into()));
        self
    }

    /// Restricts to points with `from <= time <= to`.
    pub fn between(mut self, from: u64, to: u64) -> Self {
        self.from = from;
        self.to = to;
        self
    }

    /// The measure this query targets.
    pub fn measure_name(&self) -> &str {
        &self.measure
    }

    /// The dimension filters.
    pub fn filters(&self) -> &[(String, String)] {
        &self.filters
    }

    /// The inclusive time range.
    pub fn time_range(&self) -> (u64, u64) {
        (self.from, self.to)
    }

    /// Whether a series with these dimensions matches the filters.
    pub(crate) fn matches(&self, dimensions: &[(String, String)]) -> bool {
        self.filters
            .iter()
            .all(|(fk, fv)| dimensions.iter().any(|(k, v)| k == fk && v == fv))
    }
}

/// One query result row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Timestamp of the point.
    pub time: u64,
    /// The point's value.
    pub value: f64,
    /// Dimensions of the series the point came from.
    pub dimensions: Vec<(String, String)>,
}

/// Aggregation functions for windowed queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// Arithmetic mean of the window's points.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Number of points.
    Count,
    /// Sum.
    Sum,
    /// The chronologically last value.
    Last,
}

impl Aggregate {
    /// Applies the aggregate to `(time, value)` points. Returns `None` for
    /// an empty window.
    pub fn apply(self, points: &[(u64, f64)]) -> Option<f64> {
        if points.is_empty() {
            return None;
        }
        Some(match self {
            Aggregate::Mean => points.iter().map(|&(_, v)| v).sum::<f64>() / points.len() as f64,
            Aggregate::Min => points.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min),
            Aggregate::Max => points
                .iter()
                .map(|&(_, v)| v)
                .fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Count => points.len() as f64,
            Aggregate::Sum => points.iter().map(|&(_, v)| v).sum(),
            Aggregate::Last => points.iter().max_by_key(|&&(t, _)| t).expect("nonempty").1,
        })
    }
}

/// One row of a windowed aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRow {
    /// Start of the tumbling window.
    pub window_start: u64,
    /// Aggregated value over the window.
    pub value: f64,
    /// Number of points that contributed.
    pub count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_requires_all_filters() {
        let q = Query::measure("m").filter("a", "1").filter("b", "2");
        let dims = vec![
            ("a".to_string(), "1".to_string()),
            ("b".to_string(), "2".to_string()),
            ("c".to_string(), "3".to_string()),
        ];
        assert!(q.matches(&dims));
        let q2 = Query::measure("m").filter("a", "9");
        assert!(!q2.matches(&dims));
        assert!(Query::measure("m").matches(&dims), "no filters matches all");
    }

    #[test]
    fn aggregates() {
        let pts = vec![(0u64, 1.0), (10, 3.0), (5, 2.0)];
        assert_eq!(Aggregate::Mean.apply(&pts), Some(2.0));
        assert_eq!(Aggregate::Min.apply(&pts), Some(1.0));
        assert_eq!(Aggregate::Max.apply(&pts), Some(3.0));
        assert_eq!(Aggregate::Count.apply(&pts), Some(3.0));
        assert_eq!(Aggregate::Sum.apply(&pts), Some(6.0));
        assert_eq!(
            Aggregate::Last.apply(&pts),
            Some(3.0),
            "last by time, not by position"
        );
        assert_eq!(Aggregate::Mean.apply(&[]), None);
    }

    #[test]
    fn default_range_is_everything() {
        let q = Query::measure("m");
        assert_eq!(q.time_range(), (0, u64::MAX));
        let q = q.between(5, 10);
        assert_eq!(q.time_range(), (5, 10));
    }
}
