//! Write-ahead log: the durability half of the archive.
//!
//! Every committed write batch is appended here — checksummed and
//! length-prefixed — *before* it is applied in memory, so a crash at any
//! instant loses at most the batch being written, never a committed one.
//!
//! ```text
//! wal.log:  magic "SPWL" | u8 version
//! frame:    u32 payload_len | u32 crc32(payload) | payload
//! payload:  u8 kind (1 = batch) | str table | u8 mode
//!           | u8 has_retention [u64 retention] | u64 tick
//!           | u32 record_count
//!           | per record: u64 time | str measure | u64 value_bits
//!                         | u32 dim_count | (str key, str value)*
//! ```
//!
//! Frames carry the table's [`TableOptions`] so recovery can re-create a
//! table that was born after the last checkpoint. [`Wal::checkpoint`]
//! rotates a full snapshot atomically (temp + fsync + rename, via the
//! codec) and then truncates the log back to its header — the snapshot
//! now owns everything the truncated prefix recorded.
//!
//! Fault semantics (see [`crate::iofault`]): transient faults undo the
//! partial append (truncate back to the last committed offset) and return
//! a retryable [`TsError::WalFault`]; crash faults leave the torn/mangled
//! bytes on disk and mark the log **dead** — every later call returns
//! [`TsError::WalDead`] until a restart runs recovery.

use crate::codec::{self, check_len, Cursor};
use crate::crc::crc32;
use crate::db::Database;
use crate::error::TsError;
use crate::iofault::{IoFault, IoFaultPlan, IoFaultState};
use crate::record::Record;
use crate::table::{TableOptions, WriteMode};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const WAL_MAGIC: &[u8; 4] = b"SPWL";
const WAL_VERSION: u8 = 1;
/// Bytes of `magic | version` before the first frame.
pub(crate) const HEADER_LEN: u64 = 5;
const FRAME_KIND_BATCH: u8 = 1;

/// The log file inside a WAL directory.
pub(crate) fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

/// The checkpoint snapshot inside a WAL directory.
pub(crate) fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.db")
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    /// Committed length: every byte below this offset is a fully written,
    /// fsynced frame (or the header).
    len: u64,
    dead: bool,
    faults: IoFaultState,
    frames_appended: u64,
    bytes_appended: u64,
    checkpoints: u64,
}

/// A snapshot of a [`Wal`]'s counters, for metric export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalStats {
    /// Frames successfully appended and fsynced.
    pub frames_appended: u64,
    /// Bytes those frames occupied (headers included).
    pub bytes_appended: u64,
    /// Checkpoints successfully rotated.
    pub checkpoints: u64,
    /// Current size of `wal.log`, committed bytes only.
    pub wal_bytes: u64,
    /// Whether an injected crash fault has killed the log.
    pub dead: bool,
    /// Injected faults per kind, sorted by kind name.
    pub faults_injected: Vec<(&'static str, u64)>,
}

impl Wal {
    /// Opens (or creates) the log in `dir`, truncating any torn tail left
    /// by a previous crash. Run [`crate::recovery::recover`] first when
    /// in-memory state must be rebuilt — opening alone does not replay.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::Io`] on filesystem failure.
    pub fn open(dir: &Path) -> Result<Wal, TsError> {
        std::fs::create_dir_all(dir)?;
        let path = wal_path(dir);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let bytes = std::fs::read(&path)?;
        let scan = scan_frames(&bytes);
        let len = if scan.valid_len < HEADER_LEN {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            file.write_all(&[WAL_VERSION])?;
            file.sync_data()?;
            HEADER_LEN
        } else {
            if scan.valid_len < bytes.len() as u64 {
                file.set_len(scan.valid_len)?;
            }
            scan.valid_len
        };
        file.seek(SeekFrom::Start(len))?;
        Ok(Wal {
            dir: dir.to_owned(),
            file,
            len,
            dead: false,
            faults: IoFaultState::default(),
            frames_appended: 0,
            bytes_appended: 0,
            checkpoints: 0,
        })
    }

    /// Arms deterministic disk-fault injection for this log.
    pub fn set_faults(&mut self, plan: IoFaultPlan) {
        self.faults.set_plan(plan);
    }

    /// Appends one committed batch. On success the frame is fully written
    /// and fsynced — it *will* survive a crash.
    ///
    /// # Errors
    ///
    /// * [`TsError::BadRecord`] if any record is invalid (nothing is
    ///   written — bad data never becomes durable).
    /// * [`TsError::WalFault`] for an injected transient fault; the
    ///   append was undone and retrying it is safe.
    /// * [`TsError::WalDead`] after an injected crash fault; the log is
    ///   unusable until recovery.
    pub fn append(
        &mut self,
        table: &str,
        options: TableOptions,
        tick: u64,
        records: &[Record],
    ) -> Result<(), TsError> {
        if self.dead {
            return Err(TsError::WalDead);
        }
        for r in records {
            r.validate()?;
        }
        let frame = WalFrame {
            table: table.to_owned(),
            options,
            tick,
            records: records.to_vec(),
        };
        let payload = frame.encode()?;
        let mut full = Vec::with_capacity(payload.len().saturating_add(8));
        codec::put_len(&mut full, payload.len(), "WAL frame payload")?;
        codec::put_u32(&mut full, crc32(&payload));
        full.extend_from_slice(&payload);

        match self.faults.next("append") {
            None => {
                self.file.write_all(&full)?;
                self.file.sync_data()?;
                self.len = self.len.saturating_add(full.len() as u64);
                self.frames_appended = self.frames_appended.saturating_add(1);
                self.bytes_appended = self.bytes_appended.saturating_add(full.len() as u64);
                Ok(())
            }
            Some(IoFault::ShortWrite) => {
                self.file.write_all(prefix(&full, full.len() / 2))?;
                self.undo_partial_append()?;
                Err(TsError::WalFault {
                    kind: "short-write",
                })
            }
            Some(IoFault::FsyncFail) => {
                self.file.write_all(&full)?;
                self.undo_partial_append()?;
                Err(TsError::WalFault { kind: "fsync-fail" })
            }
            Some(IoFault::TornWrite(frac)) => {
                // lint:allow(unchecked-arith): fault-injected fraction of the frame length, clamped to a strict prefix below
                let n = ((frac * full.len() as f64) as usize).clamp(1, full.len() - 1);
                self.file.write_all(prefix(&full, n))?;
                let _ = self.file.sync_data();
                self.dead = true;
                Err(TsError::WalDead)
            }
            Some(IoFault::BitFlip(pos)) => {
                let bit = (pos % (full.len() as u64 * 8)) as usize;
                if let Some(byte) = full.get_mut(bit / 8) {
                    *byte ^= 1 << (bit % 8);
                }
                self.file.write_all(&full)?;
                let _ = self.file.sync_data();
                self.dead = true;
                Err(TsError::WalDead)
            }
        }
    }

    /// Rotates a checkpoint: snapshots `db` atomically (temp + fsync +
    /// rename) and truncates the log back to its header — the frames
    /// below are now owned by the snapshot.
    ///
    /// # Errors
    ///
    /// * [`TsError::WalFault`] for an injected transient fault; nothing
    ///   changed and the checkpoint can be retried (e.g. next round).
    /// * [`TsError::WalDead`] after an injected crash fault: a mangled
    ///   temp file is left behind but never renamed, so the previous
    ///   checkpoint and the full log both survive for recovery.
    pub fn checkpoint(&mut self, db: &Database) -> Result<(), TsError> {
        if self.dead {
            return Err(TsError::WalDead);
        }
        let target = checkpoint_path(&self.dir);
        match self.faults.next("checkpoint") {
            None => {
                codec::atomic_write(&target, &codec::encode(db)?)?;
                self.file.set_len(HEADER_LEN)?;
                self.file.seek(SeekFrom::Start(HEADER_LEN))?;
                self.file.sync_data()?;
                self.len = HEADER_LEN;
                self.checkpoints += 1;
                Ok(())
            }
            Some(f @ (IoFault::ShortWrite | IoFault::FsyncFail)) => {
                std::fs::remove_file(codec::tmp_path(&target)).ok();
                Err(TsError::WalFault { kind: f.kind() })
            }
            Some(f) => {
                // Crash mid-checkpoint: a torn temp file is left on disk
                // but the rename never happens, so nothing of value is
                // lost — recovery discards the temp and replays the log.
                debug_assert!(f.is_crash());
                let bytes = codec::encode(db)?;
                let torn = prefix(&bytes, bytes.len() / 2);
                // lint:allow(durability): fault injection deliberately leaves a torn, never-renamed temp artifact
                std::fs::write(codec::tmp_path(&target), torn)?;
                self.dead = true;
                Err(TsError::WalDead)
            }
        }
    }

    /// Whether a crash fault has killed this log.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Counter snapshot for metric export.
    pub fn stats(&self) -> WalStats {
        WalStats {
            frames_appended: self.frames_appended,
            bytes_appended: self.bytes_appended,
            checkpoints: self.checkpoints,
            wal_bytes: self.len,
            dead: self.dead,
            faults_injected: self.faults.counts().iter().map(|(&k, &v)| (k, v)).collect(),
        }
    }

    /// Truncates back to the last committed offset after a transient
    /// fault, so no partial bytes precede a later good frame.
    fn undo_partial_append(&mut self) -> Result<(), TsError> {
        self.file.set_len(self.len)?;
        self.file.seek(SeekFrom::Start(self.len))?;
        Ok(())
    }
}

/// The first `n` bytes of `buf` (all of it when shorter) — what a torn
/// write leaves on disk, without any panicking slice arithmetic.
fn prefix(buf: &[u8], n: usize) -> &[u8] {
    buf.get(..n).unwrap_or(buf)
}

/// One decoded log frame.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WalFrame {
    pub(crate) table: String,
    pub(crate) options: TableOptions,
    pub(crate) tick: u64,
    pub(crate) records: Vec<Record>,
}

impl WalFrame {
    pub(crate) fn encode(&self) -> Result<Vec<u8>, TsError> {
        let mut out = Vec::new();
        out.push(FRAME_KIND_BATCH);
        codec::put_str(&mut out, &self.table)?;
        out.push(match self.options.mode {
            WriteMode::Dense => 0u8,
            WriteMode::ChangePoint => 1u8,
        });
        match self.options.retention {
            Some(r) => {
                out.push(1);
                codec::put_u64(&mut out, r);
            }
            None => out.push(0),
        }
        codec::put_u64(&mut out, self.tick);
        codec::put_len(&mut out, self.records.len(), "record count")?;
        for r in &self.records {
            codec::put_u64(&mut out, r.time);
            codec::put_str(&mut out, &r.measure)?;
            codec::put_u64(&mut out, r.value.to_bits());
            codec::put_len(&mut out, r.dimensions.len(), "dimension count")?;
            for (k, v) in &r.dimensions {
                codec::put_str(&mut out, k)?;
                codec::put_str(&mut out, v)?;
            }
        }
        Ok(out)
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<WalFrame, TsError> {
        let mut c = Cursor::new(payload);
        let kind = c.u8()?;
        if kind != FRAME_KIND_BATCH {
            return Err(TsError::Corrupt {
                detail: format!("unknown WAL frame kind {kind}"),
            });
        }
        let table = c.str_()?;
        let mode = match c.u8()? {
            0 => WriteMode::Dense,
            1 => WriteMode::ChangePoint,
            m => {
                return Err(TsError::Corrupt {
                    detail: format!("unknown write mode {m}"),
                })
            }
        };
        let retention = match c.u8()? {
            0 => None,
            1 => Some(c.u64()?),
            f => {
                return Err(TsError::Corrupt {
                    detail: format!("bad retention flag {f}"),
                })
            }
        };
        let tick = c.u64()?;
        let count = c.u32()? as usize;
        // Each record needs at least 24 bytes of fixed fields; bound the
        // allocation by what is actually present.
        if count > c.remaining() / 24 {
            return Err(TsError::Corrupt {
                detail: "record count implausible for frame size".to_owned(),
            });
        }
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let time = c.u64()?;
            let measure = c.str_()?;
            let value = f64::from_bits(c.u64()?);
            let dimensions = c.dimensions()?;
            records.push(Record {
                time,
                measure,
                value,
                dimensions,
            });
        }
        if !c.is_done() {
            return Err(TsError::Corrupt {
                detail: "trailing data in WAL frame".to_owned(),
            });
        }
        Ok(WalFrame {
            table,
            options: TableOptions { mode, retention },
            tick,
            records,
        })
    }
}

/// The outcome of scanning a `wal.log` byte image.
#[derive(Debug)]
pub(crate) struct ScanOutcome {
    /// Frames decoded from the valid prefix, in append order.
    pub(crate) frames: Vec<WalFrame>,
    /// Offset up to which every frame is intact; a torn tail (if any)
    /// starts here.
    pub(crate) valid_len: u64,
    /// What made the scan stop early, when something did.
    pub(crate) torn_detail: Option<String>,
}

/// Scans a WAL image frame by frame, stopping at the first bad frame
/// (short header, implausible length, checksum mismatch, or payload that
/// fails to decode). Everything before the stop point is committed;
/// everything after is a torn tail a crash left behind.
pub(crate) fn scan_frames(bytes: &[u8]) -> ScanOutcome {
    let header_ok =
        bytes.get(..4) == Some(WAL_MAGIC.as_slice()) && bytes.get(4).copied() == Some(WAL_VERSION);
    if !header_ok {
        return ScanOutcome {
            frames: Vec::new(),
            valid_len: 0,
            torn_detail: (!bytes.is_empty()).then(|| "bad WAL header".to_owned()),
        };
    }
    let mut frames = Vec::new();
    let mut offset = HEADER_LEN as usize;
    let mut torn_detail = None;
    while offset < bytes.len() {
        let header = (
            codec::read_u32_le(bytes, offset),
            codec::read_u32_le(bytes, offset.saturating_add(4)),
        );
        let ((payload_len, stored_crc), start) = match (header, offset.checked_add(8)) {
            ((Some(l), Some(c)), Some(s)) => ((l, c), s),
            _ => {
                torn_detail = Some(format!("torn frame header at offset {offset}"));
                break;
            }
        };
        if check_len(payload_len).is_err() {
            torn_detail = Some(format!("implausible frame length at offset {offset}"));
            break;
        }
        let payload = start
            .checked_add(payload_len as usize)
            .and_then(|end| bytes.get(start..end).map(|p| (p, end)));
        let Some((payload, end)) = payload else {
            torn_detail = Some(format!("torn frame payload at offset {offset}"));
            break;
        };
        if crc32(payload) != stored_crc {
            torn_detail = Some(format!("frame checksum mismatch at offset {offset}"));
            break;
        }
        match WalFrame::decode(payload) {
            Ok(f) => frames.push(f),
            Err(e) => {
                torn_detail = Some(format!("undecodable frame at offset {offset}: {e}"));
                break;
            }
        }
        offset = end;
    }
    ScanOutcome {
        frames,
        valid_len: offset as u64,
        torn_detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spotlake-ts-wal-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn batch(n: u64) -> Vec<Record> {
        (0..3)
            .map(|i| {
                Record::new(n * 600 + i, "sps", (n + i) as f64)
                    .dimension("instance_type", "m5.large")
            })
            .collect()
    }

    #[test]
    fn append_then_scan_roundtrips_frames() {
        let dir = tempdir("roundtrip");
        let mut wal = Wal::open(&dir).unwrap();
        let opts = TableOptions::default();
        wal.append("sps", opts, 1, &batch(1)).unwrap();
        wal.append("sps", opts, 2, &batch(2)).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.frames_appended, 2);
        assert_eq!(stats.wal_bytes, HEADER_LEN + stats.bytes_appended);
        assert!(!stats.dead);

        let scan = scan_frames(&std::fs::read(wal_path(&dir)).unwrap());
        assert!(scan.torn_detail.is_none());
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[0].tick, 1);
        assert_eq!(scan.frames[1].records, batch(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_faults_undo_the_append_and_stay_retryable() {
        let dir = tempdir("transient");
        let mut wal = Wal::open(&dir).unwrap();
        wal.set_faults(IoFaultPlan {
            short_write_rate: 1.0,
            ..IoFaultPlan::none(9)
        });
        let err = wal
            .append("sps", TableOptions::default(), 1, &batch(1))
            .unwrap_err();
        assert!(err.is_retryable(), "{err}");
        assert!(!wal.is_dead());
        // The partial bytes were truncated away: the file is back to just
        // its header and a later good append scans cleanly.
        assert_eq!(std::fs::metadata(wal_path(&dir)).unwrap().len(), HEADER_LEN);
        wal.set_faults(IoFaultPlan::none(9));
        wal.append("sps", TableOptions::default(), 1, &batch(1))
            .unwrap();
        let scan = scan_frames(&std::fs::read(wal_path(&dir)).unwrap());
        assert!(scan.torn_detail.is_none());
        assert_eq!(scan.frames.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_faults_kill_the_log_and_leave_a_torn_tail() {
        let dir = tempdir("crash");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append("sps", TableOptions::default(), 1, &batch(1))
            .unwrap();
        wal.set_faults(IoFaultPlan {
            torn_write_rate: 1.0,
            ..IoFaultPlan::none(9)
        });
        let err = wal
            .append("sps", TableOptions::default(), 2, &batch(2))
            .unwrap_err();
        assert!(matches!(err, TsError::WalDead));
        assert!(wal.is_dead());
        // Everything now fails until recovery.
        assert!(matches!(
            wal.append("sps", TableOptions::default(), 3, &batch(3)),
            Err(TsError::WalDead)
        ));
        assert!(matches!(
            wal.checkpoint(&Database::new()),
            Err(TsError::WalDead)
        ));
        // The scan finds exactly the committed prefix.
        let scan = scan_frames(&std::fs::read(wal_path(&dir)).unwrap());
        assert_eq!(scan.frames.len(), 1, "only the committed frame");
        assert!(scan.torn_detail.is_some());
        // Re-opening truncates the torn tail.
        drop(wal);
        let wal = Wal::open(&dir).unwrap();
        assert_eq!(
            std::fs::metadata(wal_path(&dir)).unwrap().len(),
            wal.stats().wal_bytes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flips_never_pass_the_frame_checksum() {
        let dir = tempdir("bitflip");
        let mut wal = Wal::open(&dir).unwrap();
        wal.set_faults(IoFaultPlan {
            bit_flip_rate: 1.0,
            ..IoFaultPlan::none(17)
        });
        assert!(matches!(
            wal.append("sps", TableOptions::default(), 1, &batch(1)),
            Err(TsError::WalDead)
        ));
        let scan = scan_frames(&std::fs::read(wal_path(&dir)).unwrap());
        assert!(scan.frames.is_empty(), "mangled frame must not decode");
        assert!(scan.torn_detail.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rotates_the_snapshot_and_truncates_the_log() {
        let dir = tempdir("checkpoint");
        let mut db = Database::new();
        db.create_table("sps", TableOptions::default()).unwrap();
        let mut wal = Wal::open(&dir).unwrap();
        wal.append("sps", TableOptions::default(), 1, &batch(1))
            .unwrap();
        db.write("sps", &batch(1)).unwrap();
        wal.checkpoint(&db).unwrap();
        assert_eq!(wal.stats().checkpoints, 1);
        assert_eq!(wal.stats().wal_bytes, HEADER_LEN);
        let snap = Database::load(checkpoint_path(&dir)).unwrap();
        assert_eq!(snap.point_count(), 3);
        // Appends after the rotation land in the fresh log.
        wal.append("sps", TableOptions::default(), 2, &batch(2))
            .unwrap();
        let scan = scan_frames(&std::fs::read(wal_path(&dir)).unwrap());
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.frames[0].tick, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_records_are_rejected_before_becoming_durable() {
        let dir = tempdir("invalid");
        let mut wal = Wal::open(&dir).unwrap();
        let bad = vec![Record::new(0, "", 1.0)];
        assert!(matches!(
            wal.append("sps", TableOptions::default(), 1, &bad),
            Err(TsError::BadRecord { .. })
        ));
        assert_eq!(wal.stats().frames_appended, 0);
        assert_eq!(std::fs::metadata(wal_path(&dir)).unwrap().len(), HEADER_LEN);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frame_codec_roundtrips_and_bounds_lengths() {
        let frame = WalFrame {
            table: "prices".to_owned(),
            options: TableOptions {
                mode: WriteMode::ChangePoint,
                retention: Some(7_776_000),
            },
            tick: 42,
            records: batch(1),
        };
        let payload = frame.encode().unwrap();
        assert_eq!(WalFrame::decode(&payload).unwrap(), frame);
        // An implausible record count is rejected before any allocation.
        let mut mangled = Vec::new();
        mangled.push(FRAME_KIND_BATCH);
        codec::put_str(&mut mangled, "t").unwrap();
        mangled.push(0);
        mangled.push(0);
        codec::put_u64(&mut mangled, 1);
        codec::put_u32(&mut mangled, u32::MAX);
        assert!(WalFrame::decode(&mangled).is_err());
    }
}
