//! A time-series database substrate — the reproduction's stand-in for
//! Amazon Timestream.
//!
//! The paper stores every collected spot dataset in Timestream ("The spot
//! dataset can be well represented using a time-series format, and we use an
//! Amazon Timestream database", Section 4). This crate provides the slice of
//! that service SpotLake needs, embedded and dependency-free:
//!
//! * **Tables** of **records**: a record is (time, measure name, value,
//!   dimensions). Dimensions are free-form key/value tags — SpotLake uses
//!   `instance_type`, `region`, `az`.
//! * **Write paths**: dense append or *change-point* mode (a write is
//!   stored only when the value differs from the series' latest — how the
//!   price and advisor datasets are naturally represented).
//! * **Queries**: dimension-filtered time-range scans, last-value lookups,
//!   and tumbling-window aggregation (mean/min/max/count/last), which is
//!   what the analysis layer uses for daily heatmap averages.
//! * **Retention**: optional per-table retention window.
//! * **Persistence**: a compact hand-rolled binary codec
//!   ([`Database::save`] / [`Database::load`]), checksummed and written
//!   atomically.
//! * **Durability**: a checksummed write-ahead log ([`Wal`]) with
//!   checkpoint rotation, crash [`recover`]y that replays exactly the
//!   committed prefix, an offline [`fsck`], and deterministic disk-fault
//!   injection ([`IoFaultPlan`]) to prove all of it.
//!
//! # Example
//!
//! ```
//! use spotlake_timestream::{Database, Record, Query};
//!
//! # fn main() -> Result<(), spotlake_timestream::TsError> {
//! let mut db = Database::new();
//! db.create_table("scores", Default::default())?;
//! db.write(
//!     "scores",
//!     &[Record::new(600, "sps", 3.0).dimension("instance_type", "m5.large")],
//! )?;
//! let rows = db.query("scores", &Query::measure("sps"))?;
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0].value, 3.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod compress;
mod crc;
mod db;
mod error;
mod iofault;
mod profile;
mod query;
mod record;
mod recovery;
mod series;
mod shard;
mod table;
mod wal;

pub use codec::atomic_write;
pub use db::Database;
pub use error::TsError;
pub use iofault::IoFaultPlan;
pub use profile::QueryProfile;
pub use query::{Aggregate, Query, Row, WindowRow};
pub use record::Record;
pub use recovery::{fsck, recover, FsckReport, RecoveryReport};
pub use shard::{
    fsck_shards, is_sharded_root, manifest_path, repair_shards, shard_dir, ShardCommitOutcome,
    ShardFaultConfig, ShardFsckRow, ShardHealthRow, ShardKey, ShardSetHealth, ShardSetReport,
    ShardState, ShardVerdict, ShardedArchive,
};
pub use table::{Table, TableOptions, WriteMode};
pub use wal::{Wal, WalStats};
