//! The database: a named collection of tables with save/load.

use crate::codec;
use crate::error::TsError;
use crate::query::{Aggregate, Query, Row, WindowRow};
use crate::record::Record;
use crate::table::{Table, TableOptions};
use std::collections::BTreeMap;
use std::path::Path;

/// An embedded time-series database.
///
/// See the [crate docs](crate) for an overview and example.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::TableExists`] if the name is taken.
    pub fn create_table(&mut self, name: &str, options: TableOptions) -> Result<(), TsError> {
        if self.tables.contains_key(name) {
            return Err(TsError::TableExists(name.to_owned()));
        }
        self.tables.insert(name.to_owned(), Table::new(options));
        Ok(())
    }

    /// The table named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if absent.
    pub fn table(&self, name: &str) -> Result<&Table, TsError> {
        self.tables
            .get(name)
            .ok_or_else(|| TsError::NoSuchTable(name.to_owned()))
    }

    /// Mutable access to the table named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if absent.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, TsError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| TsError::NoSuchTable(name.to_owned()))
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Writes a batch of records to a table. Returns how many were stored
    /// (change-point tables skip repeats).
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] or [`TsError::BadRecord`]; on a bad
    /// record, records earlier in the batch remain written.
    pub fn write(&mut self, table: &str, records: &[Record]) -> Result<usize, TsError> {
        let table = self.table_mut(table)?;
        let mut stored = 0;
        for r in records {
            if table.write(r)? {
                stored += 1;
            }
        }
        Ok(stored)
    }

    /// Runs a raw query against a table.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn query(&self, table: &str, q: &Query) -> Result<Vec<Row>, TsError> {
        Ok(self.table(table)?.query(q))
    }

    /// Latest point per matching series.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn latest(&self, table: &str, q: &Query) -> Result<Vec<Row>, TsError> {
        Ok(self.table(table)?.latest(q))
    }

    /// Value in effect at `at` per matching series.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn value_at(&self, table: &str, q: &Query, at: u64) -> Result<Vec<Row>, TsError> {
        Ok(self.table(table)?.value_at(q, at))
    }

    /// Tumbling-window aggregation.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn query_window(
        &self,
        table: &str,
        q: &Query,
        window: u64,
        agg: Aggregate,
    ) -> Result<Vec<WindowRow>, TsError> {
        Ok(self.table(table)?.query_window(q, window, agg))
    }

    /// Total points across all tables.
    pub fn point_count(&self) -> usize {
        self.tables.values().map(Table::point_count).sum()
    }

    /// Serializes the database to `path` using the crate's binary codec.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::Io`] on filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TsError> {
        codec::save(self, path.as_ref())
    }

    /// Loads a database from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::Io`] on filesystem errors or [`TsError::Corrupt`]
    /// on malformed files.
    pub fn load(path: impl AsRef<Path>) -> Result<Database, TsError> {
        codec::load(path.as_ref())
    }

    pub(crate) fn tables(&self) -> &BTreeMap<String, Table> {
        &self.tables
    }

    pub(crate) fn insert_table_raw(&mut self, name: String, table: Table) {
        self.tables.insert(name, table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_query_roundtrip() {
        let mut db = Database::new();
        db.create_table("t", TableOptions::default()).unwrap();
        assert!(matches!(
            db.create_table("t", TableOptions::default()),
            Err(TsError::TableExists(_))
        ));
        let stored = db
            .write(
                "t",
                &[
                    Record::new(0, "m", 1.0),
                    Record::new(600, "m", 2.0),
                ],
            )
            .unwrap();
        assert_eq!(stored, 2);
        assert_eq!(db.query("t", &Query::measure("m")).unwrap().len(), 2);
        assert_eq!(db.point_count(), 2);
        assert_eq!(db.table_names(), vec!["t"]);
    }

    #[test]
    fn missing_table_errors() {
        let db = Database::new();
        assert!(matches!(
            db.query("nope", &Query::measure("m")),
            Err(TsError::NoSuchTable(_))
        ));
        let mut db = Database::new();
        assert!(db.write("nope", &[Record::new(0, "m", 1.0)]).is_err());
    }

    #[test]
    fn bad_record_keeps_earlier_writes() {
        let mut db = Database::new();
        db.create_table("t", TableOptions::default()).unwrap();
        let err = db.write(
            "t",
            &[Record::new(0, "m", 1.0), Record::new(1, "", 2.0)],
        );
        assert!(err.is_err());
        assert_eq!(db.point_count(), 1);
    }
}
