//! The database: a named collection of tables with save/load.

use crate::codec;
use crate::error::TsError;
use crate::profile::QueryProfile;
use crate::query::{Aggregate, Query, Row, WindowRow};
use crate::record::Record;
use crate::table::{Table, TableOptions};
use spotlake_obs::{QueryCtx, Registry};
use std::collections::BTreeMap;
use std::path::Path;

/// Deterministic write-throttling state: a seeded rate plus a running
/// write-call counter. Every [`Database::write`] call hashes
/// `(seed, table, call#)` against the rate, so a given seed reproduces
/// the identical throttle sequence — and a retried write (a new call)
/// rolls a fresh decision.
#[derive(Debug, Clone, Copy, Default)]
struct WriteFaults {
    rate: f64,
    seed: u64,
    calls: u64,
}

impl WriteFaults {
    /// FNV-1a over the decision key, mapped to `[0, 1)` — the same scheme
    /// the simulator uses for pool parameters, inlined here to keep this
    /// crate dependency-free.
    fn roll(&mut self, table: &str) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        let call = self.calls;
        self.calls += 1;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for chunk in [
            b"write-throttle".as_slice(),
            table.as_bytes(),
            &call.to_le_bytes(),
            &self.seed.to_le_bytes(),
        ] {
            for &b in chunk {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // Separator so ("ab", "c") and ("a", "bc") differ.
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.rate
    }
}

/// An embedded time-series database.
///
/// See the [crate docs](crate) for an overview and example.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    write_faults: WriteFaults,
    /// In-process metrics (`spotlake_store_*` families). Not persisted by
    /// [`Database::save`]; a loaded database starts with a fresh registry.
    metrics: Registry,
    /// Cumulative `(submitted, stored)` per table, feeding the
    /// compression-ratio gauge without reading values back out of the
    /// registry.
    write_tallies: BTreeMap<String, (u64, u64)>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables deterministic write throttling: each [`Database::write`]
    /// call fails with [`TsError::Throttled`] with probability `rate`,
    /// decided by a hash of `(seed, table, call#)`. A throttled call
    /// stores nothing, so retrying the same batch is safe. Pass a zero
    /// rate to disable. Throttle state is not persisted by
    /// [`Database::save`].
    pub fn set_write_faults(&mut self, rate: f64, seed: u64) {
        self.write_faults = WriteFaults {
            rate,
            seed,
            calls: 0,
        };
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::TableExists`] if the name is taken.
    pub fn create_table(&mut self, name: &str, options: TableOptions) -> Result<(), TsError> {
        if self.tables.contains_key(name) {
            return Err(TsError::TableExists(name.to_owned()));
        }
        self.tables.insert(name.to_owned(), Table::new(options));
        Ok(())
    }

    /// The table named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if absent.
    pub fn table(&self, name: &str) -> Result<&Table, TsError> {
        self.tables
            .get(name)
            .ok_or_else(|| TsError::NoSuchTable(name.to_owned()))
    }

    /// Mutable access to the table named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if absent.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, TsError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| TsError::NoSuchTable(name.to_owned()))
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Writes a batch of records to a table. Returns how many were stored
    /// (change-point tables skip repeats).
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] or [`TsError::BadRecord`]; on a bad
    /// record, records earlier in the batch remain written. With write
    /// faults enabled (see [`Database::set_write_faults`]) the call may
    /// fail with [`TsError::Throttled`] *before* storing anything, so a
    /// throttled batch can be retried without duplication.
    pub fn write(&mut self, table: &str, records: &[Record]) -> Result<usize, TsError> {
        if self.write_faults.roll(table) {
            self.metrics.counter_add(
                "spotlake_store_write_throttled_total",
                "Write batches rejected by deterministic throttling.",
                &[("table", table)],
                1,
            );
            return Err(TsError::Throttled);
        }
        let tbl = self.table_mut(table)?;
        let mut stored = 0;
        for r in records {
            if tbl.write(r)? {
                stored += 1;
            }
        }
        self.record_write_metrics(table, records.len() as u64, stored as u64);
        Ok(stored)
    }

    /// Writes a batch that is already durable — appended to a write-ahead
    /// log or replayed from one. Identical to [`Database::write`] except
    /// that the deterministic write-throttle never fires: a committed
    /// batch must land in memory unconditionally, or the in-memory state
    /// would diverge from what WAL replay reconstructs after a crash.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] or [`TsError::BadRecord`].
    pub fn apply_committed(&mut self, table: &str, records: &[Record]) -> Result<usize, TsError> {
        let tbl = self.table_mut(table)?;
        let mut stored = 0;
        for r in records {
            if tbl.write(r)? {
                stored += 1;
            }
        }
        self.record_write_metrics(table, records.len() as u64, stored as u64);
        Ok(stored)
    }

    /// Updates the `spotlake_store_*` write families after a successful
    /// batch. Deduped records are those a change-point table skipped as
    /// repeats of the series' current value — the dataset's own
    /// compression, which the ratio gauge tracks cumulatively.
    fn record_write_metrics(&mut self, table: &str, submitted: u64, stored: u64) {
        let labels = [("table", table)];
        let m = &self.metrics;
        m.counter_add(
            "spotlake_store_write_batches_total",
            "Write batches accepted per table.",
            &labels,
            1,
        );
        m.counter_add(
            "spotlake_store_records_submitted_total",
            "Records submitted to write batches per table.",
            &labels,
            submitted,
        );
        m.counter_add(
            "spotlake_store_records_stored_total",
            "Records actually stored per table.",
            &labels,
            stored,
        );
        m.counter_add(
            "spotlake_store_records_deduped_total",
            "Records skipped by change-point deduplication per table.",
            &labels,
            submitted - stored,
        );
        m.histogram_record(
            "spotlake_store_write_batch_records",
            "Records per accepted write batch.",
            &labels,
            submitted as f64,
        );
        let tally = self.write_tallies.entry(table.to_owned()).or_insert((0, 0));
        tally.0 += submitted;
        tally.1 += stored;
        if tally.0 > 0 {
            m.gauge_set(
                "spotlake_store_compression_ratio",
                "Cumulative stored/submitted record ratio per table (lower = more change-point dedup).",
                &labels,
                tally.1 as f64 / tally.0 as f64,
            );
        }
    }

    /// Updates the `spotlake_store_*` read families after a query. Rows
    /// returned stand in for latency: scan cost in this in-memory store is
    /// proportional to result size, and wall-clock timing would break the
    /// byte-identical-metrics contract.
    fn record_query_metrics(&self, table: &str, op: &str, rows: usize) {
        let labels = [("table", table), ("op", op)];
        self.metrics.counter_add(
            "spotlake_store_queries_total",
            "Queries served per table and operation.",
            &labels,
            1,
        );
        self.metrics.histogram_record(
            "spotlake_store_query_rows",
            "Rows returned per query (deterministic latency proxy).",
            &labels,
            rows as f64,
        );
    }

    /// Records a completed cost profile into the `spotlake_query_*`
    /// histograms — scan-side stages only; the serving layer records the
    /// final cost once it knows the response size.
    fn record_profile_metrics(&self, profile: &QueryProfile) {
        let labels = [("table", profile.table.as_str()), ("op", profile.op)];
        let m = &self.metrics;
        m.histogram_record(
            "spotlake_query_series_scanned",
            "Series scanned per query after pruning.",
            &labels,
            profile.series_scanned as f64,
        );
        m.histogram_record(
            "spotlake_query_chunks_decompressed",
            "Storage chunks decompressed per query.",
            &labels,
            profile.chunks_decompressed as f64,
        );
        m.histogram_record(
            "spotlake_query_rows_decoded",
            "Points decoded per query.",
            &labels,
            profile.rows_decoded as f64,
        );
        m.histogram_record(
            "spotlake_query_rows_post_filter",
            "Result rows per query before response limits.",
            &labels,
            profile.rows_post_filter as f64,
        );
    }

    /// Runs a raw query against a table.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn query(&self, table: &str, q: &Query) -> Result<Vec<Row>, TsError> {
        let rows = self.table(table)?.query(q);
        self.record_query_metrics(table, "query", rows.len());
        Ok(rows)
    }

    /// [`Database::query`] with cost profiling: returns the rows plus the
    /// completed scan-side [`QueryProfile`], and records the
    /// `spotlake_query_*` stage histograms.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn query_profiled(
        &self,
        table: &str,
        q: &Query,
        ctx: QueryCtx,
    ) -> Result<(Vec<Row>, QueryProfile), TsError> {
        let mut profile = QueryProfile::start("query", table).with_ctx(ctx);
        let rows = self.table(table)?.query_profiled(q, &mut profile);
        self.record_query_metrics(table, "query", rows.len());
        self.record_profile_metrics(&profile);
        Ok((rows, profile))
    }

    /// [`Database::latest`] with cost profiling; see
    /// [`Database::query_profiled`].
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn latest_profiled(
        &self,
        table: &str,
        q: &Query,
        ctx: QueryCtx,
    ) -> Result<(Vec<Row>, QueryProfile), TsError> {
        let mut profile = QueryProfile::start("latest", table).with_ctx(ctx);
        let rows = self.table(table)?.latest_profiled(q, &mut profile);
        self.record_query_metrics(table, "latest", rows.len());
        self.record_profile_metrics(&profile);
        Ok((rows, profile))
    }

    /// [`Database::value_at`] with cost profiling; see
    /// [`Database::query_profiled`].
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn value_at_profiled(
        &self,
        table: &str,
        q: &Query,
        at: u64,
        ctx: QueryCtx,
    ) -> Result<(Vec<Row>, QueryProfile), TsError> {
        let mut profile = QueryProfile::start("value_at", table).with_ctx(ctx);
        let rows = self.table(table)?.value_at_profiled(q, at, &mut profile);
        self.record_query_metrics(table, "value_at", rows.len());
        self.record_profile_metrics(&profile);
        Ok((rows, profile))
    }

    /// [`Database::query_window`] with cost profiling; see
    /// [`Database::query_profiled`].
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn query_window_profiled(
        &self,
        table: &str,
        q: &Query,
        window: u64,
        agg: Aggregate,
        ctx: QueryCtx,
    ) -> Result<(Vec<WindowRow>, QueryProfile), TsError> {
        let mut profile = QueryProfile::start("window", table).with_ctx(ctx);
        let rows = self
            .table(table)?
            .query_window_profiled(q, window, agg, &mut profile);
        self.record_query_metrics(table, "query_window", rows.len());
        self.record_profile_metrics(&profile);
        Ok((rows, profile))
    }

    /// Latest point per matching series.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn latest(&self, table: &str, q: &Query) -> Result<Vec<Row>, TsError> {
        let rows = self.table(table)?.latest(q);
        self.record_query_metrics(table, "latest", rows.len());
        Ok(rows)
    }

    /// Value in effect at `at` per matching series.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn value_at(&self, table: &str, q: &Query, at: u64) -> Result<Vec<Row>, TsError> {
        let rows = self.table(table)?.value_at(q, at);
        self.record_query_metrics(table, "value_at", rows.len());
        Ok(rows)
    }

    /// Tumbling-window aggregation.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NoSuchTable`] if the table is absent.
    pub fn query_window(
        &self,
        table: &str,
        q: &Query,
        window: u64,
        agg: Aggregate,
    ) -> Result<Vec<WindowRow>, TsError> {
        let rows = self.table(table)?.query_window(q, window, agg);
        self.record_query_metrics(table, "query_window", rows.len());
        Ok(rows)
    }

    /// The store's metric registry (`spotlake_store_*` families).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Total points across all tables.
    pub fn point_count(&self) -> usize {
        self.tables.values().map(Table::point_count).sum()
    }

    /// Serializes the database to `path` using the crate's binary codec.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::Io`] on filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TsError> {
        codec::save(self, path.as_ref())
    }

    /// Loads a database from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::Io`] on filesystem errors or [`TsError::Corrupt`]
    /// on malformed files.
    pub fn load(path: impl AsRef<Path>) -> Result<Database, TsError> {
        codec::load(path.as_ref())
    }

    pub(crate) fn tables(&self) -> &BTreeMap<String, Table> {
        &self.tables
    }

    pub(crate) fn insert_table_raw(&mut self, name: String, table: Table) {
        self.tables.insert(name, table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_query_roundtrip() {
        let mut db = Database::new();
        db.create_table("t", TableOptions::default()).unwrap();
        assert!(matches!(
            db.create_table("t", TableOptions::default()),
            Err(TsError::TableExists(_))
        ));
        let stored = db
            .write("t", &[Record::new(0, "m", 1.0), Record::new(600, "m", 2.0)])
            .unwrap();
        assert_eq!(stored, 2);
        assert_eq!(db.query("t", &Query::measure("m")).unwrap().len(), 2);
        assert_eq!(db.point_count(), 2);
        assert_eq!(db.table_names(), vec!["t"]);
    }

    #[test]
    fn missing_table_errors() {
        let db = Database::new();
        assert!(matches!(
            db.query("nope", &Query::measure("m")),
            Err(TsError::NoSuchTable(_))
        ));
        let mut db = Database::new();
        assert!(db.write("nope", &[Record::new(0, "m", 1.0)]).is_err());
    }

    #[test]
    fn write_faults_throttle_deterministically_and_store_nothing() {
        let build = || {
            let mut db = Database::new();
            db.create_table("t", TableOptions::default()).unwrap();
            db.set_write_faults(0.5, 7);
            db
        };
        let run = |db: &mut Database| {
            (0..40)
                .map(|i| {
                    db.write("t", &[Record::new(i * 600, "m", f64::from(i as u32))])
                        .is_err()
                })
                .collect::<Vec<bool>>()
        };
        let (mut a, mut b) = (build(), build());
        let (fa, fb) = (run(&mut a), run(&mut b));
        assert_eq!(fa, fb, "same seed, same throttle sequence");
        let throttled = fa.iter().filter(|&&t| t).count();
        assert!((5..35).contains(&throttled), "throttled {throttled}/40");
        // Throttled batches stored nothing: points == successful writes.
        assert_eq!(a.point_count(), 40 - throttled);
        // Zero rate is inert.
        let mut c = Database::new();
        c.create_table("t", TableOptions::default()).unwrap();
        c.set_write_faults(0.0, 7);
        for i in 0..40 {
            c.write("t", &[Record::new(i * 600, "m", 1.0)]).unwrap();
        }
    }

    #[test]
    fn writes_and_queries_feed_the_metric_registry() {
        let mut db = Database::new();
        let opts = TableOptions {
            mode: crate::table::WriteMode::ChangePoint,
            retention: None,
        };
        db.create_table("sps", opts).unwrap();
        // Second record repeats the value → change-point dedup drops it.
        let stored = db
            .write(
                "sps",
                &[Record::new(0, "score", 3.0), Record::new(600, "score", 3.0)],
            )
            .unwrap();
        assert_eq!(stored, 1);
        db.query("sps", &Query::measure("score")).unwrap();
        db.latest("sps", &Query::measure("score")).unwrap();
        let text = db.metrics().render();
        assert!(text.contains("spotlake_store_records_submitted_total{table=\"sps\"} 2"));
        assert!(text.contains("spotlake_store_records_stored_total{table=\"sps\"} 1"));
        assert!(text.contains("spotlake_store_records_deduped_total{table=\"sps\"} 1"));
        assert!(text.contains("spotlake_store_compression_ratio{table=\"sps\"} 0.5"));
        assert!(text.contains("spotlake_store_queries_total{op=\"query\",table=\"sps\"} 1"));
        assert!(text.contains("spotlake_store_queries_total{op=\"latest\",table=\"sps\"} 1"));
        assert!(text.contains("spotlake_store_query_rows_bucket"));
        // A throttled write counts without storing.
        db.set_write_faults(1.0, 3);
        assert!(db.write("sps", &[Record::new(1200, "score", 4.0)]).is_err());
        assert!(db
            .metrics()
            .render()
            .contains("spotlake_store_write_throttled_total{table=\"sps\"} 1"));
    }

    #[test]
    fn profiled_queries_return_profiles_and_feed_query_histograms() {
        let mut db = Database::new();
        db.create_table("sps", TableOptions::default()).unwrap();
        for i in 0..5u64 {
            db.write(
                "sps",
                &[
                    Record::new(i * 600, "score", i as f64).dimension("instance_type", "m5.large"),
                    Record::new(i * 600, "score", 1.0).dimension("instance_type", "c5.xlarge"),
                ],
            )
            .unwrap();
        }
        let ctx = QueryCtx {
            trace_id: 9,
            tick: 3,
            request_id: 0,
        };
        let q = Query::measure("score").filter("instance_type", "m5.large");
        let (rows, profile) = db.query_profiled("sps", &q, ctx).unwrap();
        assert_eq!(rows, db.query("sps", &q).unwrap());
        assert_eq!(profile.trace_id, 9);
        assert_eq!(profile.tick, 3);
        assert_eq!(profile.op, "query");
        assert_eq!(profile.table, "sps");
        assert_eq!(profile.series_scanned, 1);
        assert_eq!(profile.rows_decoded, 5);
        assert!(profile.cost() > 0);

        let (latest, _) = db.latest_profiled("sps", &q, ctx).unwrap();
        assert_eq!(latest.len(), 1);
        let (at, _) = db.value_at_profiled("sps", &q, 700, ctx).unwrap();
        assert_eq!(at[0].time, 600);
        let (win, wp) = db
            .query_window_profiled("sps", &q, 1200, Aggregate::Mean, ctx)
            .unwrap();
        assert!(!win.is_empty());
        assert_eq!(wp.op, "window");

        let text = db.metrics().render();
        // One observation per profiled call, stage sums match the profile.
        assert!(text.contains("spotlake_query_series_scanned_count{op=\"query\",table=\"sps\"} 1"));
        assert!(text.contains("spotlake_query_rows_decoded_sum{op=\"query\",table=\"sps\"} 5"));
        assert!(text
            .contains("spotlake_query_chunks_decompressed_count{op=\"latest\",table=\"sps\"} 1"));
        assert!(
            text.contains("spotlake_query_rows_post_filter_sum{op=\"value_at\",table=\"sps\"} 1")
        );
        // The unprofiled read path recorded the legacy families too.
        assert!(text.contains("spotlake_store_queries_total{op=\"query\",table=\"sps\"} 2"));

        assert!(db.query_profiled("nope", &q, ctx).is_err());
    }

    #[test]
    fn bad_record_keeps_earlier_writes() {
        let mut db = Database::new();
        db.create_table("t", TableOptions::default()).unwrap();
        let err = db.write("t", &[Record::new(0, "m", 1.0), Record::new(1, "", 2.0)]);
        assert!(err.is_err());
        assert_eq!(db.point_count(), 1);
    }
}
