//! Error type for the time-series store.

use std::error::Error;
use std::fmt;

/// Errors returned by the time-series store.
#[derive(Debug)]
pub enum TsError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name exists.
    NoSuchTable(String),
    /// A record was rejected (empty measure, non-finite value, ...).
    BadRecord {
        /// Why the record was rejected.
        reason: &'static str,
    },
    /// The persisted file is corrupt or has an unsupported version.
    Corrupt {
        /// What went wrong while decoding.
        detail: String,
    },
    /// An I/O error during save/load.
    Io(std::io::Error),
    /// The store throttled the write (injected via
    /// [`Database::set_write_faults`](crate::Database::set_write_faults)).
    /// Transient: the batch was not stored and a retry may succeed.
    Throttled,
    /// A transient disk fault (injected via
    /// [`Wal::set_faults`](crate::Wal::set_faults)) interrupted a WAL
    /// write. The partial append was undone, so retrying is safe.
    WalFault {
        /// The injected fault kind (`short-write`, `fsync-fail`).
        kind: &'static str,
    },
    /// A crash fault killed the write-ahead log mid-write. Nothing else
    /// can be appended; only a restart (recovery) brings the store back.
    WalDead,
    /// An in-memory structure is too large for the on-disk format (a
    /// length field would overflow its `u32` slot). Practically
    /// unreachable — the store throttles long before — but the encoder
    /// refuses rather than silently truncating.
    TooLarge {
        /// Which length field would have overflowed.
        what: &'static str,
    },
}

impl TsError {
    /// Whether a retry of the failed operation may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, TsError::Throttled | TsError::WalFault { .. })
    }
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::TableExists(name) => write!(f, "table already exists: {name:?}"),
            TsError::NoSuchTable(name) => write!(f, "no such table: {name:?}"),
            TsError::BadRecord { reason } => write!(f, "bad record: {reason}"),
            TsError::Corrupt { detail } => write!(f, "corrupt database file: {detail}"),
            TsError::Io(e) => write!(f, "i/o error: {e}"),
            TsError::Throttled => write!(f, "write throttled; retry may succeed"),
            TsError::WalFault { kind } => {
                write!(f, "wal write fault ({kind}); retry may succeed")
            }
            TsError::WalDead => write!(
                f,
                "write-ahead log dead after crash fault; restart required"
            ),
            TsError::TooLarge { what } => {
                write!(f, "too large to serialize: {what} exceeds u32 range")
            }
        }
    }
}

impl Error for TsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TsError {
    fn from(e: std::io::Error) -> Self {
        TsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            TsError::NoSuchTable("x".into()).to_string(),
            "no such table: \"x\""
        );
        assert_eq!(
            TsError::BadRecord {
                reason: "empty measure"
            }
            .to_string(),
            "bad record: empty measure"
        );
    }

    #[test]
    fn io_error_has_source() {
        let e = TsError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
