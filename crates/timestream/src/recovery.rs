//! Crash recovery and offline consistency checking.
//!
//! [`recover`] rebuilds the in-memory database a crashed process would
//! have held: load the newest valid checkpoint, replay every intact WAL
//! frame on top, and truncate the torn tail a crash may have left
//! mid-frame. The invariants it restores:
//!
//! 1. **Committed prefix, exactly.** Every batch whose frame was fully
//!    appended and fsynced is recovered; the batch being written when the
//!    process died is discarded whole — no partially applied batch.
//! 2. **Idempotent replay.** Frames replayed over a checkpoint that
//!    already contains them change nothing (point inserts overwrite by
//!    timestamp; change-point inserts skip repeats).
//! 3. **Determinism.** The same directory bytes produce the same
//!    database and the same [`RecoveryReport`], byte for byte.
//!
//! [`fsck`] runs the same scan without mutating anything and renders a
//! corruption/coverage report — what the `spotlake fsck` subcommand
//! prints.

use crate::codec;
use crate::db::Database;
use crate::error::TsError;
use crate::table::Table;
use crate::wal::{checkpoint_path, scan_frames, wal_path, HEADER_LEN};
use std::collections::BTreeSet;
use std::path::Path;

/// What [`recover`] did to bring the archive back.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Whether a checkpoint snapshot was present and loaded.
    pub checkpoint_loaded: bool,
    /// Points the checkpoint contributed before replay.
    pub checkpoint_points: usize,
    /// Intact WAL frames replayed on top of the checkpoint.
    pub frames_replayed: u64,
    /// Records those frames carried.
    pub records_replayed: u64,
    /// Distinct round ticks among the replayed frames.
    pub rounds_recovered: u64,
    /// Torn-tail bytes truncated from the log.
    pub bytes_truncated: u64,
    /// Why the scan stopped early, when it did.
    pub truncated_detail: Option<String>,
    /// The newest round tick recovered, if any frame was replayed.
    pub last_tick: Option<u64>,
    /// Total points in the recovered database.
    pub point_count: usize,
}

impl RecoveryReport {
    /// Whether recovery found anything to do (a checkpoint, frames, or a
    /// torn tail) — `false` means a cold start on an empty directory.
    pub fn recovered_anything(&self) -> bool {
        self.checkpoint_loaded || self.frames_replayed > 0 || self.bytes_truncated > 0
    }

    /// A deterministic, human-readable rendering. Same-seed runs produce
    /// byte-identical output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("recovery report\n");
        out.push_str(&format!(
            "  checkpoint loaded: {} ({} points)\n",
            self.checkpoint_loaded, self.checkpoint_points
        ));
        out.push_str(&format!(
            "  frames replayed:   {} ({} records, {} rounds)\n",
            self.frames_replayed, self.records_replayed, self.rounds_recovered
        ));
        out.push_str(&format!("  bytes truncated:   {}", self.bytes_truncated));
        if let Some(detail) = &self.truncated_detail {
            out.push_str(&format!(" ({detail})"));
        }
        out.push('\n');
        match self.last_tick {
            Some(t) => out.push_str(&format!("  last tick:         {t}\n")),
            None => out.push_str("  last tick:         none\n"),
        }
        out.push_str(&format!("  point count:       {}\n", self.point_count));
        out
    }
}

/// Rebuilds the database from a WAL directory: newest valid checkpoint +
/// WAL replay, truncating any torn tail at the first bad frame.
///
/// # Errors
///
/// * [`TsError::Corrupt`] if the checkpoint snapshot itself fails to
///   load — the snapshot is supposed to be atomic, so this means outside
///   interference and needs an operator, not silent data loss.
/// * [`TsError::Io`] on filesystem failure.
pub fn recover(dir: &Path) -> Result<(Database, RecoveryReport), TsError> {
    std::fs::create_dir_all(dir)?;
    let mut report = RecoveryReport::default();

    // A stale temp file means a crash mid-checkpoint: the rename never
    // happened, so it holds nothing the log doesn't. Discard it.
    let checkpoint = checkpoint_path(dir);
    std::fs::remove_file(codec::tmp_path(&checkpoint)).ok();

    let mut db = if checkpoint.exists() {
        let db = Database::load(&checkpoint)?;
        report.checkpoint_loaded = true;
        report.checkpoint_points = db.point_count();
        db
    } else {
        Database::new()
    };

    let wal = wal_path(dir);
    if wal.exists() {
        let bytes = std::fs::read(&wal)?;
        let scan = scan_frames(&bytes);
        if scan.valid_len < bytes.len() as u64 {
            report.bytes_truncated = bytes.len() as u64 - scan.valid_len;
            report.truncated_detail = scan.torn_detail.clone();
            // Cut the torn tail so the next writer appends after the last
            // committed frame. A file too mangled to even hold a header
            // is dropped entirely; Wal::open rewrites it.
            if scan.valid_len >= HEADER_LEN {
                codec::truncate_sync(&wal, scan.valid_len)?;
            } else {
                std::fs::remove_file(&wal)?;
            }
        }
        let mut ticks = BTreeSet::new();
        for frame in &scan.frames {
            if db.table(&frame.table).is_err() {
                db.create_table(&frame.table, frame.options)?;
            }
            report.records_replayed = report
                .records_replayed
                .saturating_add(frame.records.len() as u64);
            db.apply_committed(&frame.table, &frame.records)?;
            ticks.insert(frame.tick);
        }
        report.frames_replayed = scan.frames.len() as u64;
        report.rounds_recovered = ticks.len() as u64;
        report.last_tick = ticks.last().copied();
    }

    report.point_count = db.point_count();
    Ok((db, report))
}

/// What [`fsck`] found in a WAL directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FsckReport {
    /// Whether a checkpoint snapshot is present.
    pub checkpoint_present: bool,
    /// Whether the snapshot loaded cleanly (vacuously true when absent).
    pub checkpoint_ok: bool,
    /// Points inside the snapshot.
    pub checkpoint_points: usize,
    /// The load error, when the snapshot is corrupt.
    pub checkpoint_detail: Option<String>,
    /// Whether a stale checkpoint temp file (crash mid-rotation) exists.
    pub stale_tmp: bool,
    /// Whether a `wal.log` is present.
    pub wal_present: bool,
    /// Intact frames in the log.
    pub wal_frames: u64,
    /// Records those frames carry.
    pub wal_records: u64,
    /// Committed bytes in the log.
    pub wal_bytes: u64,
    /// Torn-tail bytes after the last intact frame.
    pub torn_bytes: u64,
    /// Why the frame scan stopped early, when it did.
    pub torn_detail: Option<String>,
    /// Distinct round ticks covered by checkpoint + log together.
    pub rounds: u64,
    /// The newest round tick among intact WAL frames, if any — the
    /// recoverable watermark shard fsck compares against the manifest.
    pub last_tick: Option<u64>,
    /// Per-table point counts of the state recovery would produce.
    pub tables: Vec<(String, usize)>,
}

impl FsckReport {
    /// Whether the directory is consistent: any checkpoint loads, no torn
    /// tail, no stale temp file. A crash leaves this `false`; running
    /// recovery (any restart) makes it `true` again.
    pub fn clean(&self) -> bool {
        self.checkpoint_ok && self.torn_bytes == 0 && !self.stale_tmp
    }

    /// A deterministic, human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fsck: {}\n",
            if self.clean() { "clean" } else { "NOT CLEAN" }
        ));
        if self.checkpoint_present {
            out.push_str(&format!(
                "  checkpoint: {} ({} points)\n",
                if self.checkpoint_ok { "ok" } else { "CORRUPT" },
                self.checkpoint_points
            ));
            if let Some(detail) = &self.checkpoint_detail {
                out.push_str(&format!("    {detail}\n"));
            }
        } else {
            out.push_str("  checkpoint: absent\n");
        }
        if self.stale_tmp {
            out.push_str("  stale checkpoint temp file present (crash mid-rotation)\n");
        }
        if self.wal_present {
            out.push_str(&format!(
                "  wal: {} frames, {} records, {} bytes committed\n",
                self.wal_frames, self.wal_records, self.wal_bytes
            ));
            if self.torn_bytes > 0 {
                out.push_str(&format!("  torn tail: {} bytes", self.torn_bytes));
                if let Some(detail) = &self.torn_detail {
                    out.push_str(&format!(" ({detail})"));
                }
                out.push('\n');
            }
        } else {
            out.push_str("  wal: absent\n");
        }
        out.push_str(&format!("  rounds covered: {}\n", self.rounds));
        for (name, points) in &self.tables {
            out.push_str(&format!("  table {name}: {points} points\n"));
        }
        out
    }
}

/// Scans a WAL directory without mutating it and reports corruption and
/// coverage — the library half of the `spotlake fsck` subcommand.
///
/// # Errors
///
/// Returns [`TsError::Io`] on filesystem failure. Corruption is not an
/// error: it is what the report exists to describe.
pub fn fsck(dir: &Path) -> Result<FsckReport, TsError> {
    let mut report = FsckReport {
        checkpoint_ok: true,
        ..FsckReport::default()
    };
    let checkpoint = checkpoint_path(dir);
    report.stale_tmp = codec::tmp_path(&checkpoint).exists();

    let mut db = Database::new();
    if checkpoint.exists() {
        report.checkpoint_present = true;
        match Database::load(&checkpoint) {
            Ok(loaded) => {
                report.checkpoint_points = loaded.point_count();
                db = loaded;
            }
            Err(e) => {
                report.checkpoint_ok = false;
                report.checkpoint_detail = Some(e.to_string());
            }
        }
    }

    let wal = wal_path(dir);
    let mut ticks = BTreeSet::new();
    if wal.exists() {
        report.wal_present = true;
        let bytes = std::fs::read(&wal)?;
        let scan = scan_frames(&bytes);
        report.wal_bytes = scan.valid_len;
        report.torn_bytes = bytes.len() as u64 - scan.valid_len;
        report.torn_detail = scan.torn_detail.clone();
        for frame in &scan.frames {
            report.wal_records = report
                .wal_records
                .saturating_add(frame.records.len() as u64);
            ticks.insert(frame.tick);
            if db.table(&frame.table).is_err() {
                db.create_table(&frame.table, frame.options)?;
            }
            db.apply_committed(&frame.table, &frame.records)?;
        }
        report.wal_frames = scan.frames.len() as u64;
    }
    report.rounds = ticks.len() as u64;
    report.last_tick = ticks.last().copied();
    report.tables = db
        .table_names()
        .into_iter()
        .map(|name| {
            let points = db.table(name).map(Table::point_count).unwrap_or(0);
            (name.to_owned(), points)
        })
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iofault::IoFaultPlan;
    use crate::record::Record;
    use crate::table::TableOptions;
    use crate::wal::Wal;
    use std::path::PathBuf;

    fn tempdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spotlake-ts-rec-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn batch(n: u64) -> Vec<Record> {
        (0..3)
            .map(|i| {
                Record::new(n * 600 + i, "sps", (n + i) as f64)
                    .dimension("instance_type", "m5.large")
            })
            .collect()
    }

    #[test]
    fn cold_start_recovers_nothing() {
        let dir = tempdir("cold");
        let (db, report) = recover(&dir).unwrap();
        assert_eq!(db.point_count(), 0);
        assert!(!report.recovered_anything());
        assert_eq!(report.point_count, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_replays_checkpoint_plus_log() {
        let dir = tempdir("replay");
        let mut db = Database::new();
        db.create_table("sps", TableOptions::default()).unwrap();
        let mut wal = Wal::open(&dir).unwrap();
        // Round 1 lands in the checkpoint, rounds 2 and 3 in the log.
        wal.append("sps", TableOptions::default(), 1, &batch(1))
            .unwrap();
        db.write("sps", &batch(1)).unwrap();
        wal.checkpoint(&db).unwrap();
        wal.append("sps", TableOptions::default(), 2, &batch(2))
            .unwrap();
        db.write("sps", &batch(2)).unwrap();
        wal.append("sps", TableOptions::default(), 3, &batch(3))
            .unwrap();
        db.write("sps", &batch(3)).unwrap();
        drop(wal);

        let (recovered, report) = recover(&dir).unwrap();
        assert_eq!(recovered.point_count(), db.point_count());
        assert!(report.checkpoint_loaded);
        assert_eq!(report.frames_replayed, 2);
        assert_eq!(report.rounds_recovered, 2);
        assert_eq!(report.last_tick, Some(3));
        assert_eq!(report.bytes_truncated, 0);
        assert_eq!(report.point_count, recovered.point_count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_without_checkpoint_creates_tables_from_frames() {
        let dir = tempdir("no-checkpoint");
        let mut wal = Wal::open(&dir).unwrap();
        let opts = TableOptions {
            mode: crate::table::WriteMode::ChangePoint,
            retention: Some(1000),
        };
        wal.append("prices", opts, 1, &[Record::new(0, "price", 0.1)])
            .unwrap();
        drop(wal);
        let (db, report) = recover(&dir).unwrap();
        assert!(!report.checkpoint_loaded);
        assert_eq!(db.table("prices").unwrap().options(), opts);
        assert_eq!(db.point_count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tempdir("torn");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append("sps", TableOptions::default(), 1, &batch(1))
            .unwrap();
        wal.set_faults(IoFaultPlan {
            torn_write_rate: 1.0,
            ..IoFaultPlan::none(5)
        });
        wal.append("sps", TableOptions::default(), 2, &batch(2))
            .unwrap_err();
        drop(wal);

        let before = fsck(&dir).unwrap();
        assert!(!before.clean());
        assert!(before.torn_bytes > 0);

        let (db, report) = recover(&dir).unwrap();
        assert_eq!(db.point_count(), 3, "only the committed round");
        assert_eq!(report.frames_replayed, 1);
        assert!(report.bytes_truncated > 0);
        assert!(report.truncated_detail.is_some());

        // Recovery healed the directory: fsck is clean, and a second
        // recovery is a no-op producing the identical report sans tail.
        let after = fsck(&dir).unwrap();
        assert!(after.clean(), "{}", after.render());
        let (db2, report2) = recover(&dir).unwrap();
        assert_eq!(db2.point_count(), 3);
        assert_eq!(report2.bytes_truncated, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_checkpoint_tmp_is_flagged_then_discarded() {
        let dir = tempdir("stale-tmp");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append("sps", TableOptions::default(), 1, &batch(1))
            .unwrap();
        wal.set_faults(IoFaultPlan {
            bit_flip_rate: 1.0,
            ..IoFaultPlan::none(3)
        });
        // Crash mid-checkpoint leaves a torn temp file, never renamed.
        wal.checkpoint(&Database::new()).unwrap_err();
        drop(wal);
        let before = fsck(&dir).unwrap();
        assert!(before.stale_tmp);
        assert!(!before.clean());

        let (db, _) = recover(&dir).unwrap();
        assert_eq!(db.point_count(), 3, "log survived the failed rotation");
        assert!(fsck(&dir).unwrap().clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reports_render_deterministically() {
        let dir = tempdir("determinism");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append("sps", TableOptions::default(), 1, &batch(1))
            .unwrap();
        drop(wal);
        let (_, a) = recover(&dir).unwrap();
        let (_, b) = recover(&dir).unwrap();
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("frames replayed:   1"));
        let f = fsck(&dir).unwrap();
        assert_eq!(f.render(), fsck(&dir).unwrap().render());
        assert!(f.render().contains("fsck: clean"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
