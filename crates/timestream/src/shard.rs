//! Sharded fault-isolated archive: dataset × region fault domains.
//!
//! The single-WAL durability layer ([`crate::Wal`] + [`crate::recover`])
//! makes the whole archive one fault domain: a torn write or bit flip in
//! any dataset takes down everything. This module generalizes that
//! machinery so each **dataset × region** pair is its own shard with its
//! own WAL, checkpoint rotation, and crash recovery:
//!
//! ```text
//! root/
//!   shards.map                  manifest: key -> (last_tick, checkpoint_tick)
//!   shard-sps-us-test-1/
//!     wal.log                   per-shard WAL (SPWL format)
//!     checkpoint.db             per-shard snapshot
//!     QUARANTINE                present only while quarantined
//!   shard-price-eu-test-1/
//!     ...
//! ```
//!
//! The manifest is the committed-data watermark: after every round it
//! records, per shard, the newest acked round tick and the tick the last
//! checkpoint covered, written atomically via [`crate::atomic_write`].
//! On open, each shard runs independent recovery and is compared against
//! its watermark:
//!
//! * **Auto-heal** — a torn tail past the watermark was an in-flight,
//!   never-acked round; recovery truncates it and the shard rejoins
//!   silently (the committed prefix is intact).
//! * **Quarantine** — recovery yields *less* than the watermark (a
//!   committed frame was corrupted, a checkpoint fails to load, the dir
//!   was damaged): the shard is excluded from the merged database, a
//!   `QUARANTINE` marker records why, and every other shard keeps
//!   serving. [`repair_shards`] (the `fsck --repair` path) truncates to
//!   the surviving committed prefix, lowers the watermark to match, and
//!   clears the marker so the next open re-admits the shard.
//!
//! Commits fan out to shards with bounded parallelism; a crash fault in
//! one shard fails only that shard's batch for the round — the round
//! itself, and every other shard, proceed.

use crate::codec::{self, Cursor};
use crate::crc::crc32;
use crate::db::Database;
use crate::error::TsError;
use crate::iofault::IoFaultPlan;
use crate::record::Record;
use crate::recovery::{fsck, recover, RecoveryReport};
use crate::table::TableOptions;
use crate::wal::{Wal, WalStats};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

const MANIFEST_MAGIC: &[u8; 4] = b"SPSM";
const MANIFEST_VERSION: u8 = 1;
const MANIFEST_FILE: &str = "shards.map";
const QUARANTINE_FILE: &str = "QUARANTINE";
/// Shards whose batches are appended concurrently per commit wave.
const COMMIT_PARALLELISM: usize = 4;

/// Identifies one fault domain: a dataset (table) in one region.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardKey {
    /// The dataset (table name): `sps`, `advisor`, `price`.
    pub dataset: String,
    /// The region whose records this shard owns.
    pub region: String,
}

impl ShardKey {
    /// Builds a key from a dataset (table) name and a region.
    pub fn new(dataset: &str, region: &str) -> Self {
        ShardKey {
            dataset: dataset.to_owned(),
            region: region.to_owned(),
        }
    }

    /// Parses `dataset/region`, the CLI spelling of a key.
    pub fn parse(spec: &str) -> Option<ShardKey> {
        let (dataset, region) = spec.split_once('/')?;
        if dataset.is_empty() || region.is_empty() {
            return None;
        }
        Some(ShardKey::new(dataset, region))
    }

    /// The shard's directory name under the archive root, with any
    /// non-portable characters replaced.
    pub fn dir_name(&self) -> String {
        fn sanitize(s: &str) -> String {
            s.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        format!(
            "shard-{}-{}",
            sanitize(&self.dataset),
            sanitize(&self.region)
        )
    }
}

impl std::fmt::Display for ShardKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.dataset, self.region)
    }
}

/// The path of a shard's directory under `root`.
pub fn shard_dir(root: &Path, key: &ShardKey) -> PathBuf {
    root.join(key.dir_name())
}

/// The shard map manifest inside an archive root.
pub fn manifest_path(root: &Path) -> PathBuf {
    root.join(MANIFEST_FILE)
}

/// Whether `root` holds a sharded archive (a shard map manifest exists).
pub fn is_sharded_root(root: &Path) -> bool {
    manifest_path(root).exists()
}

/// Disk-fault injection for a sharded archive: the base plan's rates are
/// applied per shard under a seed derived from `(seed, dataset, region)`,
/// so every shard rolls an independent, reproducible fault sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFaultConfig {
    /// Rates and base seed.
    pub plan: IoFaultPlan,
    /// When set, only this shard receives injected faults — the induced
    /// single-shard-loss drill.
    pub only: Option<ShardKey>,
}

/// One shard's committed-data watermark in the manifest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ManifestEntry {
    /// Newest round tick whose commit was acked to the collector.
    last_tick: Option<u64>,
    /// Round tick the last successful checkpoint covered.
    checkpoint_tick: Option<u64>,
}

/// A quarantined shard: excluded from serving, awaiting `fsck --repair`.
#[derive(Debug, Clone)]
struct Quarantined {
    reason: String,
    entry: ManifestEntry,
}

/// One live (non-quarantined) shard.
#[derive(Debug)]
struct Shard {
    dir: PathBuf,
    wal: Wal,
    db: Database,
    last_tick: Option<u64>,
    checkpoint_tick: Option<u64>,
    rounds_since_checkpoint: u64,
    commits: u64,
    commit_failures: u64,
}

/// A shard's health classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Committing and serving normally.
    Healthy,
    /// A crash fault killed the shard's WAL mid-run; its committed prefix
    /// still serves, and a restart runs recovery.
    Failed,
    /// Recovery could not verify the committed prefix; excluded from
    /// queries until `fsck --repair` re-admits it.
    Quarantined,
}

impl ShardState {
    /// Stable lowercase name, used in reports and metric values.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardState::Healthy => "healthy",
            ShardState::Failed => "failed",
            ShardState::Quarantined => "quarantined",
        }
    }

    /// Numeric encoding for the `spotlake_shard_state` gauge.
    pub fn code(self) -> u64 {
        match self {
            ShardState::Healthy => 0,
            ShardState::Failed => 1,
            ShardState::Quarantined => 2,
        }
    }
}

/// One row of [`ShardSetHealth`].
#[derive(Debug, Clone)]
pub struct ShardHealthRow {
    /// The shard's dataset.
    pub dataset: String,
    /// The shard's region.
    pub region: String,
    /// Health classification.
    pub state: ShardState,
    /// Why, for failed/quarantined shards; empty when healthy.
    pub detail: String,
    /// Points in the shard's database (0 while quarantined).
    pub points: usize,
    /// Batches committed since open.
    pub commits: u64,
    /// Batches that failed to commit since open.
    pub commit_failures: u64,
    /// Newest acked round tick.
    pub last_tick: Option<u64>,
}

/// Per-shard health of the whole archive, for `/health`, `/quality`,
/// `/stats`, and the `spotlake_shard_*` metric families.
#[derive(Debug, Clone, Default)]
pub struct ShardSetHealth {
    /// One row per shard, sorted by (dataset, region).
    pub shards: Vec<ShardHealthRow>,
}

impl ShardSetHealth {
    /// Total shards, quarantined included.
    pub fn total(&self) -> usize {
        self.shards.len()
    }

    /// Shards committing and serving normally.
    pub fn healthy(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.state == ShardState::Healthy)
            .count()
    }

    /// Rows that are not healthy, in order.
    pub fn impaired(&self) -> impl Iterator<Item = &ShardHealthRow> {
        self.shards
            .iter()
            .filter(|s| s.state != ShardState::Healthy)
    }

    /// Quarantined rows, in order.
    pub fn quarantined(&self) -> impl Iterator<Item = &ShardHealthRow> {
        self.shards
            .iter()
            .filter(|s| s.state == ShardState::Quarantined)
    }

    /// Whether any shard is failed or quarantined (the archive still
    /// serves, degraded).
    pub fn degraded(&self) -> bool {
        self.shards.iter().any(|s| s.state != ShardState::Healthy)
    }

    /// Whether every shard is lost — the only case `/health` reports the
    /// store unhealthy.
    pub fn all_lost(&self) -> bool {
        !self.shards.is_empty() && self.shards.iter().all(|s| s.state != ShardState::Healthy)
    }
}

/// What one [`ShardedArchive::commit`] call did.
#[derive(Debug, Clone, Default)]
pub struct ShardCommitOutcome {
    /// Records stored across all shards that accepted their batch.
    pub written: usize,
    /// The records that were durably committed (quarantined/failed
    /// shards' records are not in here).
    pub committed: Vec<Record>,
    /// Transient-fault retries absorbed across shards.
    pub retries: u64,
    /// Shards that could not commit this round, with why.
    pub failures: Vec<ShardHealthRow>,
}

/// An archive sharded by dataset × region, each shard an independent
/// WAL + checkpoint fault domain. See the [module docs](self).
#[derive(Debug)]
pub struct ShardedArchive {
    root: PathBuf,
    checkpoint_every: u64,
    faults: Option<ShardFaultConfig>,
    shards: BTreeMap<ShardKey, Shard>,
    quarantined: BTreeMap<ShardKey, Quarantined>,
    recovery: RecoveryReport,
}

impl ShardedArchive {
    /// Opens (or creates) a sharded archive under `root`, recovering
    /// every shard named by the manifest or by `keys` independently.
    /// Shards whose committed prefix cannot be verified are quarantined —
    /// never a reason for this call to fail. Returns the archive plus the
    /// merged database rebuilt from every healthy shard.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::Corrupt`] if the root manifest itself is
    /// mangled (outside any shard's fault domain) or [`TsError::Io`] on
    /// root-level filesystem failure.
    pub fn open(
        root: &Path,
        keys: &[ShardKey],
        checkpoint_every: u64,
        faults: Option<ShardFaultConfig>,
    ) -> Result<(ShardedArchive, Database), TsError> {
        std::fs::create_dir_all(root)?;
        let manifest = read_manifest(root)?;
        let mut all_keys: BTreeSet<ShardKey> = manifest.keys().cloned().collect();
        all_keys.extend(keys.iter().cloned());

        let mut archive = ShardedArchive {
            root: root.to_owned(),
            checkpoint_every,
            faults,
            shards: BTreeMap::new(),
            quarantined: BTreeMap::new(),
            recovery: RecoveryReport::default(),
        };
        let mut merged = Database::new();
        for key in all_keys {
            let entry = manifest.get(&key).copied().unwrap_or_default();
            archive.admit_shard(&key, entry, &mut merged)?;
        }
        archive.recovery.point_count = merged.point_count();
        archive.write_manifest()?;
        Ok((archive, merged))
    }

    /// Recovers one shard into the archive: healthy, or quarantined with
    /// a marker on disk. Only root-level I/O failures propagate.
    fn admit_shard(
        &mut self,
        key: &ShardKey,
        entry: ManifestEntry,
        merged: &mut Database,
    ) -> Result<(), TsError> {
        let dir = shard_dir(&self.root, key);
        let marker = dir.join(QUARANTINE_FILE);
        if marker.exists() {
            let reason = std::fs::read_to_string(&marker)
                .unwrap_or_else(|_| "quarantine marker unreadable".to_owned());
            self.quarantined
                .insert(key.clone(), Quarantined { reason, entry });
            return Ok(());
        }
        let (db, report) = match recover(&dir) {
            Ok(pair) => pair,
            Err(e) => {
                let reason = format!("recovery failed: {e}");
                self.quarantine_on_disk(key, entry, &reason)?;
                return Ok(());
            }
        };
        let checkpoint_tick = entry.checkpoint_tick.filter(|_| report.checkpoint_loaded);
        let recovered_tick = match (checkpoint_tick, report.last_tick) {
            (Some(c), Some(f)) => Some(c.max(f)),
            (c, f) => c.or(f),
        };
        if let Some(acked) = entry.last_tick {
            if recovered_tick.is_none_or(|r| r < acked) {
                let reason = format!(
                    "committed rounds lost: manifest acked tick {acked}, recovered {}",
                    match recovered_tick {
                        Some(r) => r.to_string(),
                        None => "nothing".to_owned(),
                    }
                );
                self.quarantine_on_disk(key, entry, &reason)?;
                return Ok(());
            }
        }
        let mut wal = match Wal::open(&dir) {
            Ok(w) => w,
            Err(e) => {
                let reason = format!("wal open failed: {e}");
                self.quarantine_on_disk(key, entry, &reason)?;
                return Ok(());
            }
        };
        if let Some(cfg) = &self.faults {
            wal.set_faults(derive_plan(cfg, key));
        }
        self.recovery.checkpoint_loaded |= report.checkpoint_loaded;
        self.recovery.checkpoint_points = self
            .recovery
            .checkpoint_points
            .saturating_add(report.checkpoint_points);
        self.recovery.frames_replayed = self
            .recovery
            .frames_replayed
            .saturating_add(report.frames_replayed);
        self.recovery.records_replayed = self
            .recovery
            .records_replayed
            .saturating_add(report.records_replayed);
        self.recovery.rounds_recovered = self
            .recovery
            .rounds_recovered
            .saturating_add(report.rounds_recovered);
        self.recovery.bytes_truncated = self
            .recovery
            .bytes_truncated
            .saturating_add(report.bytes_truncated);
        if let Some(detail) = &report.truncated_detail {
            if self.recovery.truncated_detail.is_none() {
                self.recovery.truncated_detail = Some(format!("shard {key}: {detail}"));
            }
        }
        self.recovery.last_tick = self.recovery.last_tick.max(recovered_tick);
        merge_into(merged, &db)?;
        self.shards.insert(
            key.clone(),
            Shard {
                dir,
                wal,
                db,
                last_tick: recovered_tick.max(entry.last_tick),
                checkpoint_tick,
                rounds_since_checkpoint: 0,
                commits: 0,
                commit_failures: 0,
            },
        );
        Ok(())
    }

    /// Quarantines a shard, writing the marker atomically so the state
    /// survives restarts.
    fn quarantine_on_disk(
        &mut self,
        key: &ShardKey,
        entry: ManifestEntry,
        reason: &str,
    ) -> Result<(), TsError> {
        let dir = shard_dir(&self.root, key);
        std::fs::create_dir_all(&dir)?;
        codec::atomic_write(&dir.join(QUARANTINE_FILE), reason.as_bytes())?;
        self.quarantined.insert(
            key.clone(),
            Quarantined {
                reason: reason.to_owned(),
                entry,
            },
        );
        Ok(())
    }

    /// Commits one dataset's round batch, fanned out to its region
    /// shards with bounded parallelism. Each shard appends to its own
    /// WAL (absorbing transient faults up to `max_attempts` tries) and,
    /// on success, applies the batch to both its shard database and
    /// `merged`. A shard that fails — quarantined, dead, or killed by a
    /// crash fault mid-append — contributes a failure row and drops its
    /// batch for this round; every other shard commits normally.
    pub fn commit(
        &mut self,
        merged: &mut Database,
        table: &str,
        options: TableOptions,
        tick: u64,
        records: &[Record],
        max_attempts: u32,
    ) -> ShardCommitOutcome {
        let mut outcome = ShardCommitOutcome::default();
        let mut groups: BTreeMap<String, Vec<Record>> = BTreeMap::new();
        for r in records {
            let region = r.dimension_value("region").unwrap_or("none").to_owned();
            groups.entry(region).or_default().push(r.clone());
        }
        let mut work: Vec<(ShardKey, Vec<Record>)> = Vec::new();
        for (region, batch) in groups {
            let key = ShardKey::new(table, &region);
            if let Some(q) = self.quarantined.get(&key) {
                outcome.failures.push(failure_row(
                    &key,
                    ShardState::Quarantined,
                    &format!("quarantined: {}", q.reason),
                ));
                continue;
            }
            if !self.shards.contains_key(&key) {
                let entry = ManifestEntry::default();
                let mut scratch = Database::new();
                if let Err(e) = self.admit_shard(&key, entry, &mut scratch) {
                    outcome.failures.push(failure_row(
                        &key,
                        ShardState::Failed,
                        &format!("shard open failed: {e}"),
                    ));
                    continue;
                }
                if let Some(q) = self.quarantined.get(&key) {
                    outcome.failures.push(failure_row(
                        &key,
                        ShardState::Quarantined,
                        &format!("quarantined: {}", q.reason),
                    ));
                    continue;
                }
            }
            work.push((key, batch));
        }

        let wanted: BTreeSet<ShardKey> = work.iter().map(|(k, _)| k.clone()).collect();
        let mut shard_refs: Vec<&mut Shard> = self
            .shards
            .iter_mut()
            .filter(|(k, _)| wanted.contains(*k))
            .map(|(_, s)| s)
            .collect();
        // Both `work` and `shard_refs` are in key order, so zipping pairs
        // each batch with its shard.
        let mut pairs: Vec<(&ShardKey, &mut Shard, &[Record])> = work
            .iter()
            .zip(shard_refs.drain(..))
            .map(|((key, batch), shard)| (key, shard, batch.as_slice()))
            .collect();

        for wave in pairs.chunks_mut(COMMIT_PARALLELISM) {
            let results: Vec<(Result<usize, TsError>, u64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter_mut()
                    .map(|(_, shard, batch)| {
                        let shard: &mut Shard = shard;
                        let batch: &[Record] = batch;
                        scope.spawn(move || {
                            commit_one(shard, table, options, tick, batch, max_attempts)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        Err(_) => (
                            Err(TsError::Corrupt {
                                detail: "shard commit thread panicked".to_owned(),
                            }),
                            0,
                        ),
                    })
                    .collect()
            });
            for ((key, shard, batch), (result, retries)) in wave.iter().zip(results) {
                outcome.retries = outcome.retries.saturating_add(retries);
                match result {
                    Ok(written) => {
                        // The shard acked: mirror the batch into the
                        // merged serving view.
                        if let Err(e) = merged.apply_committed(table, batch) {
                            outcome.failures.push(failure_row(
                                key,
                                ShardState::Failed,
                                &format!("merged apply failed: {e}"),
                            ));
                            continue;
                        }
                        outcome.written = outcome.written.saturating_add(written);
                        outcome.committed.extend(batch.iter().cloned());
                    }
                    Err(e) => {
                        let state = if shard.wal.is_dead() {
                            ShardState::Failed
                        } else {
                            ShardState::Healthy
                        };
                        outcome.failures.push(failure_row(
                            key,
                            state,
                            &format!("commit failed: {e}"),
                        ));
                    }
                }
            }
        }
        outcome
    }

    /// Per-round maintenance: rotates checkpoints on shards that reached
    /// the cadence (transient faults postpone to the next round; crash
    /// faults kill only that shard) and rewrites the manifest watermark
    /// atomically.
    ///
    /// # Errors
    ///
    /// Returns an error only for root-level manifest I/O failure — shard
    /// faults are isolated, never propagated.
    pub fn maintain(&mut self) -> Result<(), TsError> {
        for shard in self.shards.values_mut() {
            if shard.wal.is_dead() || self.checkpoint_every == 0 {
                continue;
            }
            if shard.rounds_since_checkpoint >= self.checkpoint_every {
                match shard.wal.checkpoint(&shard.db) {
                    Ok(()) => {
                        shard.checkpoint_tick = shard.last_tick;
                        shard.rounds_since_checkpoint = 0;
                    }
                    // Transient: retry at the next round's maintenance.
                    Err(e) if e.is_retryable() => {}
                    // Crash: this shard is dead until restart; the torn
                    // temp file is never renamed, so its committed state
                    // (checkpoint + full WAL) is intact for recovery.
                    Err(_) => {}
                }
            }
        }
        self.write_manifest()
    }

    /// Rewrites the shard map manifest from current in-memory watermarks.
    fn write_manifest(&self) -> Result<(), TsError> {
        let mut entries: BTreeMap<ShardKey, ManifestEntry> = BTreeMap::new();
        for (key, shard) in &self.shards {
            entries.insert(
                key.clone(),
                ManifestEntry {
                    last_tick: shard.last_tick,
                    checkpoint_tick: shard.checkpoint_tick,
                },
            );
        }
        for (key, q) in &self.quarantined {
            entries.insert(key.clone(), q.entry);
        }
        codec::atomic_write(&manifest_path(&self.root), &encode_manifest(&entries)?)
    }

    /// Aggregate recovery report from the last [`ShardedArchive::open`].
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The archive root directory (the one holding the shard manifest).
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Per-shard health rows, sorted by (dataset, region).
    pub fn health(&self) -> ShardSetHealth {
        let mut rows: BTreeMap<ShardKey, ShardHealthRow> = BTreeMap::new();
        for (key, shard) in &self.shards {
            let (state, detail) = if shard.wal.is_dead() {
                (
                    ShardState::Failed,
                    "wal dead after crash fault; restart required".to_owned(),
                )
            } else {
                (ShardState::Healthy, String::new())
            };
            rows.insert(
                key.clone(),
                ShardHealthRow {
                    dataset: key.dataset.clone(),
                    region: key.region.clone(),
                    state,
                    detail,
                    points: shard.db.point_count(),
                    commits: shard.commits,
                    commit_failures: shard.commit_failures,
                    last_tick: shard.last_tick,
                },
            );
        }
        for (key, q) in &self.quarantined {
            rows.insert(
                key.clone(),
                ShardHealthRow {
                    dataset: key.dataset.clone(),
                    region: key.region.clone(),
                    state: ShardState::Quarantined,
                    detail: q.reason.clone(),
                    points: 0,
                    commits: 0,
                    commit_failures: 0,
                    last_tick: q.entry.last_tick,
                },
            );
        }
        ShardSetHealth {
            shards: rows.into_values().collect(),
        }
    }

    /// WAL counters summed across every live shard (`dead` is set when
    /// *any* shard's log is dead).
    pub fn wal_stats(&self) -> WalStats {
        let mut total = WalStats::default();
        let mut faults: BTreeMap<&'static str, u64> = BTreeMap::new();
        for shard in self.shards.values() {
            let s = shard.wal.stats();
            total.frames_appended = total.frames_appended.saturating_add(s.frames_appended);
            total.bytes_appended = total.bytes_appended.saturating_add(s.bytes_appended);
            total.checkpoints = total.checkpoints.saturating_add(s.checkpoints);
            total.wal_bytes = total.wal_bytes.saturating_add(s.wal_bytes);
            total.dead |= s.dead;
            for (kind, n) in s.faults_injected {
                let slot = faults.entry(kind).or_insert(0);
                *slot = slot.saturating_add(n);
            }
        }
        total.faults_injected = faults.into_iter().collect();
        total
    }

    /// Saves each healthy shard's database as `state.db` inside its shard
    /// directory — the per-shard byte-identity artifact crash tests
    /// compare across same-seed runs.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::Io`] on filesystem failure.
    pub fn save_shard_states(&self) -> Result<(), TsError> {
        for shard in self.shards.values() {
            shard.db.save(shard.dir.join("state.db"))?;
        }
        Ok(())
    }
}

/// Appends one shard's batch with transient-fault retries, applying it
/// to the shard database on success. Runs on a commit worker thread.
fn commit_one(
    shard: &mut Shard,
    table: &str,
    options: TableOptions,
    tick: u64,
    batch: &[Record],
    max_attempts: u32,
) -> (Result<usize, TsError>, u64) {
    let mut retries: u64 = 0;
    let mut attempt: u32 = 0;
    loop {
        attempt = attempt.saturating_add(1);
        match shard.wal.append(table, options, tick, batch) {
            Ok(()) => break,
            Err(e) if e.is_retryable() && attempt < max_attempts.max(1) => {
                retries = retries.saturating_add(1);
            }
            Err(e) => {
                shard.commit_failures = shard.commit_failures.saturating_add(1);
                return (Err(e), retries);
            }
        }
    }
    if shard.db.table(table).is_err() {
        if let Err(e) = shard.db.create_table(table, options) {
            shard.commit_failures = shard.commit_failures.saturating_add(1);
            return (Err(e), retries);
        }
    }
    match shard.db.apply_committed(table, batch) {
        Ok(written) => {
            shard.last_tick = Some(shard.last_tick.map_or(tick, |t| t.max(tick)));
            shard.rounds_since_checkpoint = shard.rounds_since_checkpoint.saturating_add(1);
            shard.commits = shard.commits.saturating_add(1);
            (Ok(written), retries)
        }
        Err(e) => {
            shard.commit_failures = shard.commit_failures.saturating_add(1);
            (Err(e), retries)
        }
    }
}

/// A failure row for [`ShardCommitOutcome`].
fn failure_row(key: &ShardKey, state: ShardState, detail: &str) -> ShardHealthRow {
    ShardHealthRow {
        dataset: key.dataset.clone(),
        region: key.region.clone(),
        state,
        detail: detail.to_owned(),
        points: 0,
        commits: 0,
        commit_failures: 0,
        last_tick: None,
    }
}

/// Rebuilds `merged` series from one recovered shard database.
fn merge_into(merged: &mut Database, shard_db: &Database) -> Result<(), TsError> {
    for (name, table) in shard_db.tables() {
        if merged.table(name).is_err() {
            merged.create_table(name, table.options())?;
        }
        let dst = merged.table_mut(name)?;
        for (measure, series) in table.series_entries() {
            dst.insert_series_raw(series.dimensions.clone(), measure, series.points().to_vec());
        }
    }
    Ok(())
}

/// Derives a shard's fault plan: independent seed per (dataset, region),
/// zeroed when the drill targets a different single shard.
fn derive_plan(cfg: &ShardFaultConfig, key: &ShardKey) -> IoFaultPlan {
    if let Some(only) = &cfg.only {
        if only != key {
            return IoFaultPlan::none(cfg.plan.seed);
        }
    }
    let mut plan = cfg.plan;
    // Independent, reproducible seed per shard, via the fault layer's own
    // FNV derivation hash.
    plan.seed = crate::iofault::hash_u64(&key.dataset, &key.region, 0, cfg.plan.seed);
    plan
}

// ---- manifest codec ----------------------------------------------------

fn encode_manifest(entries: &BTreeMap<ShardKey, ManifestEntry>) -> Result<Vec<u8>, TsError> {
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    out.push(MANIFEST_VERSION);
    codec::put_len(&mut out, entries.len(), "shard manifest entries")?;
    for (key, e) in entries {
        codec::put_str(&mut out, &key.dataset)?;
        codec::put_str(&mut out, &key.region)?;
        put_opt_u64(&mut out, e.last_tick);
        put_opt_u64(&mut out, e.checkpoint_tick);
    }
    let checksum = crc32(&out);
    codec::put_u32(&mut out, checksum);
    Ok(out)
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(n) => {
            out.push(1);
            codec::put_u64(out, n);
        }
        None => out.push(0),
    }
}

fn read_opt_u64(c: &mut Cursor<'_>) -> Result<Option<u64>, TsError> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(c.u64()?)),
        f => Err(TsError::Corrupt {
            detail: format!("bad manifest option flag {f}"),
        }),
    }
}

fn read_manifest(root: &Path) -> Result<BTreeMap<ShardKey, ManifestEntry>, TsError> {
    let path = manifest_path(root);
    if !path.exists() {
        return Ok(BTreeMap::new());
    }
    decode_manifest(&std::fs::read(&path)?)
}

fn decode_manifest(bytes: &[u8]) -> Result<BTreeMap<ShardKey, ManifestEntry>, TsError> {
    let corrupt = |detail: &str| TsError::Corrupt {
        detail: format!("shard manifest: {detail}"),
    };
    let body_bytes = bytes
        .len()
        .checked_sub(4)
        .ok_or_else(|| corrupt("too short"))?;
    let body = bytes
        .get(..body_bytes)
        .ok_or_else(|| corrupt("too short"))?;
    let stored =
        codec::read_u32_le(bytes, body_bytes).ok_or_else(|| corrupt("missing checksum"))?;
    if crc32(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let mut c = Cursor::new(body);
    if c.take(4)? != MANIFEST_MAGIC.as_slice() {
        return Err(corrupt("bad magic"));
    }
    let version = c.u8()?;
    if version != MANIFEST_VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let count = c.u32()? as usize;
    // Each entry needs at least 10 bytes; bound the loop by what exists.
    if count > c.remaining() / 10 {
        return Err(corrupt("entry count implausible for manifest size"));
    }
    let mut entries = BTreeMap::new();
    for _ in 0..count {
        let dataset = c.str_()?;
        let region = c.str_()?;
        let last_tick = read_opt_u64(&mut c)?;
        let checkpoint_tick = read_opt_u64(&mut c)?;
        entries.insert(
            ShardKey { dataset, region },
            ManifestEntry {
                last_tick,
                checkpoint_tick,
            },
        );
    }
    if !c.is_done() {
        return Err(corrupt("trailing data"));
    }
    Ok(entries)
}

// ---- fsck / repair -----------------------------------------------------

/// A shard's offline verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardVerdict {
    /// Checkpoint loads, no torn tail, watermark satisfied.
    Clean,
    /// Recoverable damage only: a torn (unacked) tail or stale checkpoint
    /// temp file that the next recovery truncates or discards.
    Degraded,
    /// A quarantine marker is present; `--repair` clears it.
    Quarantined,
    /// Committed data is lost: the checkpoint is unreadable or recovery
    /// would yield less than the manifest watermark.
    Corrupt,
}

impl ShardVerdict {
    /// Stable lowercase name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardVerdict::Clean => "clean",
            ShardVerdict::Degraded => "degraded",
            ShardVerdict::Quarantined => "quarantined",
            ShardVerdict::Corrupt => "corrupt",
        }
    }
}

/// One row of a [`ShardSetReport`].
#[derive(Debug, Clone)]
pub struct ShardFsckRow {
    /// The shard's dataset.
    pub dataset: String,
    /// The shard's region.
    pub region: String,
    /// The verdict.
    pub verdict: ShardVerdict,
    /// Points recovery would produce for this shard.
    pub points: usize,
    /// Distinct round ticks covered by checkpoint + log.
    pub rounds: u64,
    /// What is wrong, when something is; empty when clean.
    pub detail: String,
}

/// The per-shard verdict table `spotlake fsck` prints for a sharded
/// archive, with the exit-code policy (0 clean / 1 degraded / 2 corrupt
/// or quarantined).
#[derive(Debug, Clone, Default)]
pub struct ShardSetReport {
    /// One row per manifest shard, sorted by (dataset, region).
    pub rows: Vec<ShardFsckRow>,
    /// Repair actions taken, in order (empty for a plain fsck).
    pub actions: Vec<String>,
}

impl ShardSetReport {
    /// The process exit code the verdicts map to: 0 when every shard is
    /// clean, 1 when the worst is degraded (self-healing damage), 2 when
    /// any shard is corrupt or quarantined.
    pub fn exit_code(&self) -> u8 {
        let worst = self
            .rows
            .iter()
            .map(|r| r.verdict)
            .fold(ShardVerdict::Clean, |acc, v| match (acc, v) {
                (ShardVerdict::Corrupt, _) | (_, ShardVerdict::Corrupt) => ShardVerdict::Corrupt,
                (ShardVerdict::Quarantined, _) | (_, ShardVerdict::Quarantined) => {
                    ShardVerdict::Quarantined
                }
                (ShardVerdict::Degraded, _) | (_, ShardVerdict::Degraded) => ShardVerdict::Degraded,
                _ => ShardVerdict::Clean,
            });
        match worst {
            ShardVerdict::Clean => 0,
            ShardVerdict::Degraded => 1,
            ShardVerdict::Quarantined | ShardVerdict::Corrupt => 2,
        }
    }

    /// Whether every shard is clean.
    pub fn clean(&self) -> bool {
        self.exit_code() == 0
    }

    /// A deterministic, aligned verdict table.
    pub fn render(&self) -> String {
        let clean_n = self
            .rows
            .iter()
            .filter(|r| r.verdict == ShardVerdict::Clean)
            .count();
        let mut out = format!(
            "shard fsck: {} shards, {} clean (exit {})\n",
            self.rows.len(),
            clean_n,
            self.exit_code()
        );
        let mut w_dataset = "DATASET".len();
        let mut w_region = "REGION".len();
        let mut w_verdict = "VERDICT".len();
        let mut w_points = "POINTS".len();
        for r in &self.rows {
            w_dataset = w_dataset.max(r.dataset.chars().count());
            w_region = w_region.max(r.region.chars().count());
            w_verdict = w_verdict.max(r.verdict.as_str().chars().count());
            w_points = w_points.max(r.points.to_string().chars().count());
        }
        out.push_str(&format!(
            "  {:<w_dataset$}  {:<w_region$}  {:<w_verdict$}  {:>w_points$}  {:>6}  DETAIL\n",
            "DATASET", "REGION", "VERDICT", "POINTS", "ROUNDS"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<w_dataset$}  {:<w_region$}  {:<w_verdict$}  {:>w_points$}  {:>6}  {}\n",
                r.dataset,
                r.region,
                r.verdict.as_str(),
                r.points,
                r.rounds,
                r.detail
            ));
        }
        for a in &self.actions {
            out.push_str(&format!("  repair: {a}\n"));
        }
        out
    }
}

/// Builds one shard's fsck row from its directory and manifest entry.
fn fsck_row(root: &Path, key: &ShardKey, entry: ManifestEntry) -> ShardFsckRow {
    let dir = shard_dir(root, key);
    let quarantined = dir.join(QUARANTINE_FILE).exists();
    let report = match fsck(&dir) {
        Ok(r) => r,
        Err(e) => {
            return ShardFsckRow {
                dataset: key.dataset.clone(),
                region: key.region.clone(),
                verdict: ShardVerdict::Corrupt,
                points: 0,
                rounds: 0,
                detail: format!("fsck failed: {e}"),
            }
        }
    };
    let checkpoint_tick = entry
        .checkpoint_tick
        .filter(|_| report.checkpoint_present && report.checkpoint_ok);
    let recovered_tick = match (checkpoint_tick, report.last_tick) {
        (Some(c), Some(f)) => Some(c.max(f)),
        (c, f) => c.or(f),
    };
    let lost = entry
        .last_tick
        .is_some_and(|acked| recovered_tick.is_none_or(|r| r < acked));
    let mut details: Vec<String> = Vec::new();
    if !report.checkpoint_ok {
        details.push(format!(
            "checkpoint corrupt: {}",
            report.checkpoint_detail.clone().unwrap_or_default()
        ));
    }
    if lost {
        details.push(format!(
            "committed rounds lost (manifest acked tick {}, recoverable {})",
            entry.last_tick.unwrap_or(0),
            match recovered_tick {
                Some(r) => r.to_string(),
                None => "nothing".to_owned(),
            }
        ));
    }
    if report.torn_bytes > 0 {
        details.push(format!(
            "torn tail: {} bytes ({})",
            report.torn_bytes,
            report.torn_detail.clone().unwrap_or_default()
        ));
    }
    if report.stale_tmp {
        details.push("stale checkpoint temp file".to_owned());
    }
    if quarantined {
        details.push("quarantine marker present".to_owned());
    }
    let verdict = if !report.checkpoint_ok || lost {
        ShardVerdict::Corrupt
    } else if quarantined {
        ShardVerdict::Quarantined
    } else if !report.clean() {
        ShardVerdict::Degraded
    } else {
        ShardVerdict::Clean
    };
    let points = report.tables.iter().map(|(_, p)| p).sum();
    ShardFsckRow {
        dataset: key.dataset.clone(),
        region: key.region.clone(),
        verdict,
        points,
        rounds: report.rounds,
        detail: details.join("; "),
    }
}

/// Scans every manifest shard without mutating anything and returns the
/// per-shard verdict table.
///
/// # Errors
///
/// Returns [`TsError::Corrupt`] if the root manifest is mangled or
/// [`TsError::Io`] on root-level filesystem failure.
pub fn fsck_shards(root: &Path) -> Result<ShardSetReport, TsError> {
    let manifest = read_manifest(root)?;
    let rows = manifest
        .iter()
        .map(|(key, entry)| fsck_row(root, key, *entry))
        .collect();
    Ok(ShardSetReport {
        rows,
        actions: Vec::new(),
    })
}

/// Repairs every shard to its surviving committed prefix: drops
/// unreadable checkpoints, truncates torn WAL tails, lowers the manifest
/// watermark to what is actually recoverable, and clears quarantine
/// markers — after which the next open re-admits every shard. Returns
/// the post-repair verdict table with the actions taken.
///
/// # Errors
///
/// Returns [`TsError::Corrupt`] if the root manifest is mangled or
/// [`TsError::Io`] on root-level filesystem failure.
pub fn repair_shards(root: &Path) -> Result<ShardSetReport, TsError> {
    let mut manifest = read_manifest(root)?;
    let mut actions = Vec::new();
    for (key, entry) in manifest.iter_mut() {
        let dir = shard_dir(root, key);
        let checkpoint = dir.join("checkpoint.db");
        if checkpoint.exists() && Database::load(&checkpoint).is_err() {
            std::fs::remove_file(&checkpoint)?;
            entry.checkpoint_tick = None;
            actions.push(format!("{key}: dropped unreadable checkpoint"));
        }
        let (_, report) = match recover(&dir) {
            Ok(pair) => pair,
            Err(e) => {
                actions.push(format!("{key}: recovery still failing: {e}"));
                continue;
            }
        };
        if report.bytes_truncated > 0 {
            actions.push(format!(
                "{key}: truncated {} torn bytes",
                report.bytes_truncated
            ));
        }
        let checkpoint_tick = entry.checkpoint_tick.filter(|_| report.checkpoint_loaded);
        let recovered_tick = match (checkpoint_tick, report.last_tick) {
            (Some(c), Some(f)) => Some(c.max(f)),
            (c, f) => c.or(f),
        };
        if entry.last_tick != recovered_tick {
            actions.push(format!(
                "{key}: watermark {} -> {}",
                render_tick(entry.last_tick),
                render_tick(recovered_tick)
            ));
            entry.last_tick = recovered_tick;
        }
        entry.checkpoint_tick = checkpoint_tick;
        let marker = dir.join(QUARANTINE_FILE);
        if marker.exists() {
            std::fs::remove_file(&marker)?;
            actions.push(format!("{key}: cleared quarantine marker"));
        }
    }
    codec::atomic_write(&manifest_path(root), &encode_manifest(&manifest)?)?;
    let mut report = fsck_shards(root)?;
    report.actions = actions;
    Ok(report)
}

fn render_tick(t: Option<u64>) -> String {
    match t {
        Some(t) => t.to_string(),
        None => "none".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    fn tempdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spotlake-ts-shard-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn batch(region: &str, tick: u64) -> Vec<Record> {
        (0..3u64)
            .map(|i| {
                Record::new(tick * 600 + i, "score", (tick + i) as f64)
                    .dimension("instance_type", "m5.large")
                    .dimension("region", region)
                    .dimension("az", format!("{region}a"))
            })
            .collect()
    }

    fn keys() -> Vec<ShardKey> {
        vec![
            ShardKey::new("sps", "eu-test-1"),
            ShardKey::new("sps", "us-test-1"),
        ]
    }

    fn run_rounds(root: &Path, rounds: u64, faults: Option<ShardFaultConfig>) -> Database {
        let (mut archive, mut merged) = ShardedArchive::open(root, &keys(), 2, faults).unwrap();
        let _ = merged.create_table("sps", TableOptions::default());
        for tick in 1..=rounds {
            let mut records = batch("eu-test-1", tick);
            records.extend(batch("us-test-1", tick));
            archive.commit(
                &mut merged,
                "sps",
                TableOptions::default(),
                tick,
                &records,
                3,
            );
            archive.maintain().unwrap();
        }
        merged
    }

    #[test]
    fn manifest_roundtrips_and_rejects_corruption() {
        let mut entries = BTreeMap::new();
        entries.insert(
            ShardKey::new("sps", "us-test-1"),
            ManifestEntry {
                last_tick: Some(9),
                checkpoint_tick: None,
            },
        );
        entries.insert(
            ShardKey::new("price", "eu-test-1"),
            ManifestEntry {
                last_tick: None,
                checkpoint_tick: Some(4),
            },
        );
        let bytes = encode_manifest(&entries).unwrap();
        assert_eq!(decode_manifest(&bytes).unwrap(), entries);
        let mut mangled = bytes.clone();
        mangled[10] ^= 0x40;
        assert!(matches!(
            decode_manifest(&mangled),
            Err(TsError::Corrupt { .. })
        ));
        assert!(decode_manifest(&bytes[..3]).is_err());
    }

    #[test]
    fn commit_fans_out_and_merged_view_matches_shards() {
        let root = tempdir("fanout");
        let merged = run_rounds(&root, 4, None);
        assert_eq!(merged.point_count(), 4 * 6);
        // Reopen: the merged rebuild equals the pre-crash view.
        let (archive, reopened) = ShardedArchive::open(&root, &keys(), 2, None).unwrap();
        assert_eq!(reopened.point_count(), merged.point_count());
        let health = archive.health();
        assert_eq!(health.total(), 2);
        assert_eq!(health.healthy(), 2);
        assert!(!health.degraded());
        // Checkpoints rotated during the run (cadence 2, 4 rounds).
        assert!(shard_dir(&root, &keys()[0]).join("checkpoint.db").exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn crash_fault_in_one_shard_leaves_the_other_committing() {
        let root = tempdir("isolate");
        let target = ShardKey::new("sps", "eu-test-1");
        let cfg = ShardFaultConfig {
            plan: IoFaultPlan {
                torn_write_rate: 1.0,
                ..IoFaultPlan::none(7)
            },
            only: Some(target.clone()),
        };
        let (mut archive, mut merged) = ShardedArchive::open(&root, &keys(), 2, Some(cfg)).unwrap();
        merged.create_table("sps", TableOptions::default()).unwrap();
        let mut records = batch("eu-test-1", 1);
        records.extend(batch("us-test-1", 1));
        let outcome = archive.commit(&mut merged, "sps", TableOptions::default(), 1, &records, 3);
        assert_eq!(outcome.written, 3, "us shard committed");
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].region, "eu-test-1");
        assert_eq!(outcome.committed.len(), 3);
        let health = archive.health();
        assert_eq!(health.healthy(), 1);
        assert!(health.degraded());
        assert!(!health.all_lost());
        archive.maintain().unwrap();
        // Only the committed region's records are in the merged view.
        let rows = merged.query("sps", &Query::measure("score")).unwrap();
        assert!(rows.iter().all(|r| r
            .dimensions
            .iter()
            .any(|(k, v)| k == "region" && v == "us-test-1")));
        // Restart: the torn tail was never acked, so the shard self-heals
        // without quarantine.
        drop(archive);
        let (archive, merged2) = ShardedArchive::open(&root, &keys(), 2, None).unwrap();
        assert_eq!(archive.health().healthy(), 2);
        assert_eq!(merged2.point_count(), 3);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupting_committed_frames_quarantines_only_that_shard() {
        let root = tempdir("quarantine");
        let before = run_rounds(&root, 3, None);
        assert_eq!(before.point_count(), 18);
        // Flip a byte inside the committed region of one shard's WAL.
        let wal = shard_dir(&root, &ShardKey::new("sps", "eu-test-1")).join("wal.log");
        let mut bytes = std::fs::read(&wal).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&wal, &bytes).unwrap();

        let (archive, merged) = ShardedArchive::open(&root, &keys(), 2, None).unwrap();
        let health = archive.health();
        assert_eq!(health.healthy(), 1);
        let quarantined: Vec<_> = health.quarantined().collect();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].region, "eu-test-1");
        assert!(
            quarantined[0].detail.contains("committed rounds lost"),
            "{}",
            quarantined[0].detail
        );
        // The healthy shard's data survives byte-identically.
        let rows = merged.query("sps", &Query::measure("score")).unwrap();
        assert_eq!(rows.len(), 9);
        // fsck says corrupt (exit 2); repair clears it (exit 0) and the
        // next open re-admits the shard with the surviving prefix.
        let fsck_report = fsck_shards(&root).unwrap();
        assert_eq!(fsck_report.exit_code(), 2, "{}", fsck_report.render());
        drop(archive);
        let repaired = repair_shards(&root).unwrap();
        assert_eq!(repaired.exit_code(), 0, "{}", repaired.render());
        assert!(repaired
            .actions
            .iter()
            .any(|a| a.contains("cleared quarantine marker")));
        let (archive, _) = ShardedArchive::open(&root, &keys(), 2, None).unwrap();
        assert_eq!(archive.health().healthy(), 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn same_seed_recovery_is_byte_identical_per_shard() {
        let root_a = tempdir("det-a");
        let root_b = tempdir("det-b");
        let cfg = || {
            Some(ShardFaultConfig {
                plan: IoFaultPlan::transient(11),
                only: None,
            })
        };
        run_rounds(&root_a, 5, cfg());
        run_rounds(&root_b, 5, cfg());
        for key in keys() {
            let (a, b) = (
                std::fs::read(shard_dir(&root_a, &key).join("wal.log")).unwrap(),
                std::fs::read(shard_dir(&root_b, &key).join("wal.log")).unwrap(),
            );
            assert_eq!(a, b, "same-seed WAL bytes for {key}");
        }
        assert_eq!(
            std::fs::read(manifest_path(&root_a)).unwrap(),
            std::fs::read(manifest_path(&root_b)).unwrap()
        );
        std::fs::remove_dir_all(&root_a).ok();
        std::fs::remove_dir_all(&root_b).ok();
    }

    #[test]
    fn verdict_table_renders_deterministically() {
        let root = tempdir("render");
        run_rounds(&root, 2, None);
        let a = fsck_shards(&root).unwrap();
        let b = fsck_shards(&root).unwrap();
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("DATASET"));
        assert!(a.clean());
        assert_eq!(a.exit_code(), 0);
        std::fs::remove_dir_all(&root).ok();
    }
}
