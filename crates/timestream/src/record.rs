//! Records: the write-side unit.

use crate::error::TsError;

/// One data point: time (seconds since the epoch), a measure name, a value,
/// and free-form dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Timestamp, in seconds since the (simulation) epoch.
    pub time: u64,
    /// Measure name, e.g. `"sps"`, `"if_score"`, `"spot_price"`.
    pub measure: String,
    /// Measured value.
    pub value: f64,
    /// Dimension tags, e.g. `("instance_type", "m5.large")`. Kept sorted by
    /// key.
    pub dimensions: Vec<(String, String)>,
}

impl Record {
    /// Creates a record with no dimensions.
    pub fn new(time: u64, measure: impl Into<String>, value: f64) -> Self {
        Record {
            time,
            measure: measure.into(),
            value,
            dimensions: Vec::new(),
        }
    }

    /// Adds a dimension tag (builder-style). Dimensions are kept sorted by
    /// key; setting an existing key overwrites its value.
    pub fn dimension(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        let key = key.into();
        let value = value.into();
        match self.dimensions.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => self.dimensions[i].1 = value,
            Err(i) => self.dimensions.insert(i, (key, value)),
        }
        self
    }

    /// The value of dimension `key`, if set.
    pub fn dimension_value(&self, key: &str) -> Option<&str> {
        self.dimensions
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.dimensions[i].1.as_str())
    }

    /// Validates the record for ingestion.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::BadRecord`] for empty measure names, non-finite
    /// values, or empty dimension keys.
    pub fn validate(&self) -> Result<(), TsError> {
        if self.measure.is_empty() {
            return Err(TsError::BadRecord {
                reason: "empty measure name",
            });
        }
        if !self.value.is_finite() {
            return Err(TsError::BadRecord {
                reason: "non-finite value",
            });
        }
        if self.dimensions.iter().any(|(k, _)| k.is_empty()) {
            return Err(TsError::BadRecord {
                reason: "empty dimension key",
            });
        }
        Ok(())
    }

    /// The canonical series key this record belongs to:
    /// `measure|k1=v1|k2=v2|...` with dimensions sorted by key.
    pub fn series_key(&self) -> String {
        series_key(&self.measure, &self.dimensions)
    }
}

/// Builds the canonical series key for a measure + sorted dimensions.
pub(crate) fn series_key(measure: &str, dims: &[(String, String)]) -> String {
    let mut key = String::with_capacity(
        measure.len()
            + dims
                .iter()
                .map(|(k, v)| k.len() + v.len() + 2)
                .sum::<usize>(),
    );
    key.push_str(measure);
    for (k, v) in dims {
        key.push('|');
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_stay_sorted_and_overwrite() {
        let r = Record::new(0, "sps", 3.0)
            .dimension("region", "us-east-1")
            .dimension("az", "us-east-1a")
            .dimension("region", "eu-west-1");
        assert_eq!(r.dimensions.len(), 2);
        assert_eq!(r.dimension_value("az"), Some("us-east-1a"));
        assert_eq!(r.dimension_value("region"), Some("eu-west-1"));
        assert_eq!(r.dimension_value("missing"), None);
        assert_eq!(r.series_key(), "sps|az=us-east-1a|region=eu-west-1");
    }

    #[test]
    fn series_key_is_order_independent() {
        let a = Record::new(0, "m", 1.0)
            .dimension("a", "1")
            .dimension("b", "2");
        let b = Record::new(9, "m", 2.0)
            .dimension("b", "2")
            .dimension("a", "1");
        assert_eq!(a.series_key(), b.series_key());
    }

    #[test]
    fn validation() {
        assert!(Record::new(0, "", 1.0).validate().is_err());
        assert!(Record::new(0, "m", f64::NAN).validate().is_err());
        assert!(Record::new(0, "m", f64::INFINITY).validate().is_err());
        assert!(Record::new(0, "m", 1.0)
            .dimension("", "v")
            .validate()
            .is_err());
        assert!(Record::new(0, "m", 1.0).validate().is_ok());
    }
}
