//! Per-query cost profiles: the deterministic work accounting behind
//! EXPLAIN, the slow-query flight recorder, and the `spotlake_query_*`
//! histograms.
//!
//! Wall-clock latency is banned from this workspace's telemetry (it would
//! break the byte-identical replay contract), so query cost is denominated
//! in *work units* instead: series examined, storage chunks decompressed,
//! rows decoded and filtered, bytes serialized. The store fills a
//! [`QueryProfile`] as a query executes; the serving layer finishes it
//! with response size and turns it into spans, flight-recorder entries,
//! and EXPLAIN bodies.

use crate::query::Query;
use spotlake_obs::QueryCtx;

/// Cost profile of one query, accumulated stage by stage.
///
/// The store fills the scan-side fields; the serving layer sets
/// `rows_returned` and `response_bytes` after serialization. All fields
/// are pure functions of the archive contents and the query — two
/// same-seed runs produce identical profiles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryProfile {
    /// Store operation: `query`, `latest`, `value_at`, or `window`.
    pub op: &'static str,
    /// Table queried.
    pub table: String,
    /// Measure queried.
    pub measure: String,
    /// Dimension equality filters applied.
    pub filters: Vec<(String, String)>,
    /// Inclusive time range queried.
    pub from: u64,
    /// See `from`.
    pub to: u64,
    /// Trace id correlating this profile with journal spans and flight
    /// records (0 when the query ran without a context).
    pub trace_id: u64,
    /// Wire-level request id (0 for in-process queries) — joins the
    /// profile to the server's request timeline.
    pub request_id: u64,
    /// Simulation tick of the request.
    pub tick: u64,
    /// Tables examined while resolving the query (1 once resolved).
    pub tables_considered: u64,
    /// Series under the measure before any pruning.
    pub series_total: u64,
    /// Series skipped without scanning (filter mismatch or time range
    /// disjoint from the series' bounds).
    pub series_pruned: u64,
    /// Series actually scanned.
    pub series_scanned: u64,
    /// Storage chunks decompressed across scanned series.
    pub chunks_decompressed: u64,
    /// Points decoded out of those chunks.
    pub rows_decoded: u64,
    /// Rows surviving time/aggregation filtering (result rows before any
    /// response limit).
    pub rows_post_filter: u64,
    /// Rows actually returned to the client (after response limits).
    pub rows_returned: u64,
    /// Serialized response body size in bytes.
    pub response_bytes: u64,
}

impl QueryProfile {
    /// Starts a profile for `op` against `table`.
    pub fn start(op: &'static str, table: &str) -> Self {
        QueryProfile {
            op,
            table: table.to_owned(),
            tables_considered: 1,
            ..QueryProfile::default()
        }
    }

    /// Stamps the query context (trace id, request id, tick) into the
    /// profile.
    pub fn with_ctx(mut self, ctx: QueryCtx) -> Self {
        self.trace_id = ctx.trace_id;
        self.request_id = ctx.request_id;
        self.tick = ctx.tick;
        self
    }

    /// Copies the query's shape (measure, filters, time range) into the
    /// profile, so EXPLAIN can echo back exactly what was executed.
    pub fn observe_query(&mut self, q: &Query) {
        self.measure = q.measure_name().to_owned();
        self.filters = q.filters().to_vec();
        let (from, to) = q.time_range();
        self.from = from;
        self.to = to;
    }

    /// The deterministic cost proxy, in work units:
    ///
    /// ```text
    /// cost = series_total            // candidate enumeration
    ///      + 4  * series_scanned     // per-series scan setup
    ///      + 16 * chunks_decompressed// decompression dominates scans
    ///      + rows_decoded            // decode per point
    ///      + rows_post_filter        // filter/aggregate per row
    ///      + response_bytes / 64     // serialization per 64-byte unit
    /// ```
    ///
    /// The weights are a fixed model, not a measurement: they make
    /// expensive queries rank above cheap ones the way decompression and
    /// scan volume dominate a real columnar store, while staying exactly
    /// reproducible. Integer arithmetic throughout.
    pub fn cost(&self) -> u64 {
        self.series_total
            + 4 * self.series_scanned
            + 16 * self.chunks_decompressed
            + self.rows_decoded
            + self.rows_post_filter
            + self.response_bytes / 64
    }

    /// The stage costs as `(stage, name, value)` triples in execution
    /// order — the EXPLAIN body and the journal's child spans are both
    /// generated from this one list so they cannot drift apart.
    pub fn stages(&self) -> Vec<(&'static str, &'static str, u64)> {
        vec![
            ("resolve", "tables_considered", self.tables_considered),
            ("prune", "series_total", self.series_total),
            ("prune", "series_pruned", self.series_pruned),
            ("scan", "series_scanned", self.series_scanned),
            ("scan", "chunks_decompressed", self.chunks_decompressed),
            ("decode", "rows_decoded", self.rows_decoded),
            ("filter", "rows_post_filter", self.rows_post_filter),
            ("serialize", "rows_returned", self.rows_returned),
            ("serialize", "response_bytes", self.response_bytes),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_weights_scan_work_over_row_count() {
        let mut p = QueryProfile::start("query", "sps");
        p.series_total = 10;
        p.series_scanned = 2;
        p.chunks_decompressed = 3;
        p.rows_decoded = 100;
        p.rows_post_filter = 100;
        p.response_bytes = 640;
        assert_eq!(p.cost(), 10 + 8 + 48 + 100 + 100 + 10);
        assert_eq!(p.tables_considered, 1);
    }

    #[test]
    fn ctx_stamps_trace_id_and_tick() {
        let p = QueryProfile::start("latest", "price").with_ctx(QueryCtx {
            trace_id: 7,
            tick: 42,
            request_id: 19,
        });
        assert_eq!(p.trace_id, 7);
        assert_eq!(p.tick, 42);
        assert_eq!(p.request_id, 19);
        assert_eq!(p.op, "latest");
    }

    #[test]
    fn stages_enumerate_every_cost_field_in_order() {
        let p = QueryProfile::start("query", "t");
        let stages = p.stages();
        assert_eq!(stages.len(), 9);
        assert_eq!(stages[0], ("resolve", "tables_considered", 1));
        assert_eq!(stages.last().unwrap().1, "response_bytes");
        // Stage grouping is contiguous, matching span emission order.
        let order: Vec<&str> = stages.iter().map(|s| s.0).collect();
        let mut dedup = order.clone();
        dedup.dedup();
        assert_eq!(
            dedup,
            ["resolve", "prune", "scan", "decode", "filter", "serialize"]
        );
    }
}
