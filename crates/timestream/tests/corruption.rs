//! Corruption-matrix hardening tests for the persistence codec.
//!
//! The archive is the product — a corrupt file must *always* surface as
//! an error, never as a panic, an absurd allocation, or silently wrong
//! data. These tests mutate a real saved archive exhaustively: every
//! byte flipped (two patterns each), every truncation length, and random
//! garbage, asserting `Database::load` returns `Err` each time.

use spotlake_timestream::{Database, Record, TableOptions, TsError, WriteMode};
use std::path::PathBuf;

fn tempfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("spotlake-corruption-{}-{name}", std::process::id()));
    p
}

/// A small but representative archive: two tables, both write modes,
/// retention set, multiple series and dimensions.
fn sample_archive() -> Database {
    let mut db = Database::new();
    db.create_table("sps", TableOptions::default()).unwrap();
    db.create_table(
        "prices",
        TableOptions {
            mode: WriteMode::ChangePoint,
            retention: Some(7_776_000),
        },
    )
    .unwrap();
    for i in 0..4u64 {
        db.write(
            "sps",
            &[
                Record::new(i * 600, "score", i as f64)
                    .dimension("instance_type", "m5.large")
                    .dimension("az", "us-east-1a"),
                Record::new(i * 600, "score", 3.0 - i as f64)
                    .dimension("instance_type", "c5.xlarge"),
            ],
        )
        .unwrap();
        db.write(
            "prices",
            &[Record::new(i * 600, "spot_price", 0.09 + 0.01 * i as f64)
                .dimension("instance_type", "m5.large")],
        )
        .unwrap();
    }
    db
}

#[test]
fn every_single_byte_flip_fails_to_load() {
    let path = tempfile("byte-flip");
    sample_archive().save(&path).unwrap();
    let clean = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(clean.len() > 100, "archive should be non-trivial");

    let mutated_path = tempfile("byte-flip-mutant");
    // Two flip patterns per byte: invert everything, and flip one bit —
    // the latter catches checks that only notice gross damage.
    for pattern in [0xFFu8, 0x01] {
        let mut mutated = clean.clone();
        for i in 0..mutated.len() {
            mutated[i] ^= pattern;
            std::fs::write(&mutated_path, &mutated).unwrap();
            let result = Database::load(&mutated_path);
            assert!(
                result.is_err(),
                "flip ^{pattern:#04x} at byte {i} of {} must fail to load",
                mutated.len()
            );
            mutated[i] ^= pattern;
        }
    }
    std::fs::remove_file(&mutated_path).ok();
}

#[test]
fn every_truncation_fails_to_load() {
    let path = tempfile("truncation");
    sample_archive().save(&path).unwrap();
    let clean = std::fs::read(&path).unwrap();
    let mutated_path = tempfile("truncation-mutant");
    for len in 0..clean.len() {
        std::fs::write(&mutated_path, &clean[..len]).unwrap();
        assert!(
            Database::load(&mutated_path).is_err(),
            "truncation to {len} of {} bytes must fail to load",
            clean.len()
        );
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&mutated_path).ok();
}

#[test]
fn appended_garbage_fails_to_load() {
    let path = tempfile("garbage");
    sample_archive().save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(b"junk");
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Database::load(&path),
        Err(TsError::Corrupt { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn implausible_length_fields_do_not_allocate() {
    // A hand-built file with a huge claimed table count and a valid CRC
    // must be rejected by the bounds checks, not by an allocation
    // failure. (The CRC is recomputed so the check actually reaches the
    // length-validation path.)
    let mut body = Vec::new();
    body.extend_from_slice(b"SPTL");
    body.push(3u8);
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // table_count
    let crc = {
        // CRC-32 (IEEE), matching the codec's trailer.
        let mut crc = 0xFFFF_FFFFu32;
        for &b in &body {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    };
    body.extend_from_slice(&crc.to_le_bytes());
    let path = tempfile("implausible");
    std::fs::write(&path, &body).unwrap();
    let err = Database::load(&path).unwrap_err();
    assert!(matches!(err, TsError::Corrupt { .. }), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn atomic_save_never_tears_the_previous_archive() {
    // Overwriting an archive goes through temp + rename: at no point does
    // the target path hold a partially written file. Simulate the crash
    // window by checking the target still loads while a half-written temp
    // sibling exists.
    let path = tempfile("atomic");
    let db = sample_archive();
    db.save(&path).unwrap();
    let before = std::fs::read(&path).unwrap();

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    std::fs::write(PathBuf::from(&tmp), &before[..before.len() / 3]).unwrap();

    let loaded = Database::load(&path).expect("target archive intact during a torn save");
    assert_eq!(loaded.point_count(), db.point_count());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(PathBuf::from(&tmp)).ok();
}
