//! Property tests for the time-series store: persistence roundtrips,
//! query/window consistency, and change-point compression invariants.

use proptest::prelude::*;
use spotlake_timestream::{Aggregate, Database, Query, Record, TableOptions, WriteMode};

/// Strategy: a batch of records over a few series.
fn record_batch() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec(
        (
            0u64..100_000,
            0usize..4,          // measure index
            0usize..6,          // series index
            -1000.0f64..1000.0, // value
        ),
        1..120,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(time, m, s, value)| {
                Record::new(time, format!("measure{m}"), value)
                    .dimension("series", s.to_string())
                    .dimension("region", format!("r{}", s % 2))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Save → load preserves every query result.
    #[test]
    fn persistence_roundtrip(batch in record_batch(), changepoint in any::<bool>()) {
        let mut db = Database::new();
        let options = TableOptions {
            mode: if changepoint { WriteMode::ChangePoint } else { WriteMode::Dense },
            retention: None,
        };
        db.create_table("t", options).unwrap();
        db.write("t", &batch).unwrap();

        let mut path = std::env::temp_dir();
        path.push(format!(
            "spotlake-prop-{}-{}.db",
            std::process::id(),
            batch.len() as u64 ^ batch.first().map(|r| r.time).unwrap_or(0)
        ));
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(loaded.point_count(), db.point_count());
        for m in 0..4 {
            let q = Query::measure(format!("measure{m}"));
            prop_assert_eq!(
                loaded.query("t", &q).unwrap(),
                db.query("t", &q).unwrap()
            );
        }
    }

    /// A windowed COUNT over everything equals the raw row count, and MIN ≤
    /// MEAN ≤ MAX per window.
    #[test]
    fn window_aggregates_consistent(batch in record_batch()) {
        let mut db = Database::new();
        db.create_table("t", TableOptions::default()).unwrap();
        db.write("t", &batch).unwrap();
        let q = Query::measure("measure0");
        let raw = db.query("t", &q).unwrap();
        let counts = db.query_window("t", &q, 10_000, Aggregate::Count).unwrap();
        let total: f64 = counts.iter().map(|w| w.value).sum();
        prop_assert_eq!(total as usize, raw.len());

        let mins = db.query_window("t", &q, 10_000, Aggregate::Min).unwrap();
        let means = db.query_window("t", &q, 10_000, Aggregate::Mean).unwrap();
        let maxs = db.query_window("t", &q, 10_000, Aggregate::Max).unwrap();
        for ((lo, mid), hi) in mins.iter().zip(&means).zip(&maxs) {
            prop_assert_eq!(lo.window_start, mid.window_start);
            prop_assert!(lo.value <= mid.value + 1e-9);
            prop_assert!(mid.value <= hi.value + 1e-9);
        }
    }

    /// Change-point tables never store more points than dense tables, and
    /// consecutive stored values per series always differ when writes are
    /// in time order.
    #[test]
    fn changepoint_compresses(
        values in prop::collection::vec(-5.0f64..5.0, 2..80),
    ) {
        let mut dense = Database::new();
        dense.create_table("t", TableOptions::default()).unwrap();
        let mut cp = Database::new();
        cp.create_table(
            "t",
            TableOptions { mode: WriteMode::ChangePoint, retention: None },
        )
        .unwrap();
        for (i, &v) in values.iter().enumerate() {
            // Round to one decimal so repeats actually happen.
            let v = (v * 2.0).round() / 2.0;
            let r = Record::new(i as u64 * 600, "m", v);
            dense.write("t", std::slice::from_ref(&r)).unwrap();
            cp.write("t", &[r]).unwrap();
        }
        prop_assert!(cp.point_count() <= dense.point_count());
        let rows = cp.query("t", &Query::measure("m")).unwrap();
        for w in rows.windows(2) {
            prop_assert_ne!(w[0].value, w[1].value, "stored a non-change");
        }
    }

    /// `value_at` always returns the newest point at-or-before the probe.
    #[test]
    fn value_at_is_supremum(batch in record_batch(), probe in 0u64..120_000) {
        let mut db = Database::new();
        db.create_table("t", TableOptions::default()).unwrap();
        db.write("t", &batch).unwrap();
        let q = Query::measure("measure1").filter("series", "2");
        let rows = db.query("t", &q).unwrap();
        let at = db.value_at("t", &q, probe).unwrap();
        let expected: Option<u64> = rows
            .iter()
            .filter(|r| r.time <= probe)
            .map(|r| r.time)
            .max();
        match expected {
            None => prop_assert!(at.is_empty()),
            Some(t) => {
                prop_assert_eq!(at.len(), 1);
                prop_assert_eq!(at[0].time, t);
            }
        }
    }
}
