//! Figure 7: placement score versus the number of requested instances.
//!
//! The paper picked representative `xlarge`-sized types from each family
//! (smallest available size where `xlarge` does not exist, e.g. P4's
//! 24xlarge) and swept the query's target capacity, finding accelerated
//! (P, G, Inf) and dense-storage (D) types lose score fastest.

use spotlake_bench::{print_table, Scale};
use spotlake_cloud_api::{AccountId, SpsClient, SpsRequest};
use spotlake_cloud_sim::{SimCloud, SimConfig};
use spotlake_types::Catalog;

/// Representative types per family (xlarge where available, as in the
/// paper).
const REPRESENTATIVES: &[&str] = &[
    "t3.xlarge",
    "m5.xlarge",
    "a1.xlarge",
    "c5.xlarge",
    "r5.xlarge",
    "x1e.xlarge",
    "z1d.xlarge",
    "p2.xlarge",
    "g4dn.xlarge",
    "dl1.24xlarge",
    "inf1.xlarge",
    "f1.2xlarge",
    "vt1.3xlarge",
    "i3.xlarge",
    "d2.xlarge",
    "h1.2xlarge",
];

const CAPACITIES: &[u32] = &[1, 5, 10, 20, 50, 100];

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Figure 7: placement score vs requested capacity");

    let mut config = SimConfig::with_seed(scale.seed);
    config.tick = scale.tick();
    let mut cloud = SimCloud::new(Catalog::aws_2022(), config);
    cloud.run_days(2);
    let mut client = SpsClient::new();

    let mut rows = Vec::new();
    let mut drops: Vec<(String, f64)> = Vec::new();
    for name in REPRESENTATIVES {
        let account = AccountId::new(format!("fig7-{name}"));
        let mut cells = vec![name.to_string()];
        let mut first = None;
        let mut last = None;
        for &capacity in CAPACITIES {
            let request = SpsRequest::new(
                vec![name.to_string()],
                vec!["us-east-1".to_owned()],
                capacity,
            )
            .expect("non-empty request");
            let scores = client
                .get_spot_placement_scores(&cloud, &account, &request)
                .expect("representative types exist");
            match scores.first() {
                Some(s) => {
                    let v = f64::from(s.score.value());
                    if first.is_none() {
                        first = Some(v);
                    }
                    last = Some(v);
                    cells.push(format!("{v:.0}"));
                }
                None => cells.push("NA".to_owned()),
            }
        }
        if let (Some(f), Some(l)) = (first, last) {
            drops.push((name.to_string(), f - l));
        }
        rows.push(cells);
    }

    let mut headers = vec!["type"];
    let capacity_labels: Vec<String> = CAPACITIES.iter().map(|c| format!("n={c}")).collect();
    headers.extend(capacity_labels.iter().map(String::as_str));
    print_table(
        "Figure 7: us-east-1 placement score by requested capacity",
        &headers,
        &rows,
    );

    drops.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("largest score drops from n=1 to n=100 (paper: P, G, Inf, and D drop hardest):");
    for (name, drop) in drops.iter().take(6) {
        println!("  {name:<14} -{drop:.0}");
    }
}
