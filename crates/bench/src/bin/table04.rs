//! Table 4: spot instance status prediction performance.
//!
//! Paper reference (random forest over the archive's month of score
//! history versus three current-value heuristics):
//!
//! | metric   | IF   | SPS  | Cost Save | RF   |
//! |----------|------|------|-----------|------|
//! | Accuracy | 0.45 | 0.64 | 0.39      | 0.73 |
//! | F1-score | 0.43 | 0.58 | 0.28      | 0.73 |
//!
//! An ablation re-trains the forest on *current-only* features to isolate
//! the value of the archived history — the paper's core claim.

use spotlake::prediction::{self, N_CLASSES};
use spotlake_bench::{print_table, run_experiment, Scale};
use spotlake_ml::metrics::{accuracy, f1_macro};
use spotlake_ml::{Dataset, RandomForest};

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Table 4: spot instance status prediction");
    let fixture = run_experiment(scale.seed);
    let report = prediction::evaluate(&fixture.report.cases, scale.seed);

    let paper = [
        ("IF", 0.45, 0.43),
        ("SPS", 0.64, 0.58),
        ("Cost Save", 0.39, 0.28),
        ("RF", 0.73, 0.73),
    ];
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            let (_, pa, pf) = paper
                .iter()
                .find(|(m, _, _)| *m == r.method)
                .expect("method names fixed");
            vec![
                r.method.to_owned(),
                format!("{:.2}", r.accuracy),
                format!("{pa:.2}"),
                format!("{:.2}", r.f1),
                format!("{pf:.2}"),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Table 4 ({} train / {} test cases)",
            report.train_cases, report.test_cases
        ),
        &["method", "accuracy", "paper", "F1", "paper"],
        &rows,
    );

    // Ablation: the forest without the archived history (current values
    // only) — quantifies what SpotLake's historical archive buys.
    let features: Vec<Vec<f64>> = fixture
        .report
        .cases
        .iter()
        .map(|c| vec![c.sps_at_submit, c.if_at_submit, c.savings_at_submit])
        .collect();
    let labels: Vec<usize> = fixture
        .report
        .cases
        .iter()
        .map(|c| match c.outcome {
            spotlake::RequestOutcome::NoInterrupt => prediction::CLASS_NO_INTERRUPT,
            spotlake::RequestOutcome::Interrupted => prediction::CLASS_INTERRUPTED,
            spotlake::RequestOutcome::NoFulfill => prediction::CLASS_NO_FULFILL,
        })
        .collect();
    let data = Dataset::new(features, labels, N_CLASSES).expect("uniform rows");
    let (train, test) = data.split(0.3, scale.seed);
    let forest = RandomForest::default().fit(&train, scale.seed);
    let pred = forest.predict_all(&test);
    println!(
        "ablation — RF on current values only: accuracy {:.2}, F1 {:.2}",
        accuracy(test.labels(), &pred),
        f1_macro(test.labels(), &pred, N_CLASSES)
    );
    // Which archive signals does the forest actually use? (permutation
    // importance over the full case set).
    println!("\ntop forest features by permutation importance:");
    for (name, importance) in prediction::feature_importance(&fixture.report.cases, scale.seed)
        .into_iter()
        .take(6)
    {
        println!("  {name:<18} {importance:+.3}");
    }
    let rf = report.row("RF").expect("RF row present");
    println!(
        "RF with archived history: accuracy {:.2}, F1 {:.2} — the history is the edge",
        rf.accuracy, rf.f1
    );
}
