//! Figure 8: CDF of the Pearson correlation coefficient between any two of
//! the spot placement score, the interruption-free score, and the spot
//! price.
//!
//! The paper computes, per (instance type, location) series pair, the
//! correlation over the 181-day archive, and finds all three CDFs
//! concentrated near 0 — with the price-involved pairs the most
//! concentrated. Quantified: for SPS×IF, 62.57% of |r| < 0.25 and 87.64%
//! of |r| < 0.5.

use spotlake_analysis::{align_step, pearson, Ecdf};
use spotlake_bench::{fmt_pct, print_cdf, print_table, ArchiveFixture, Scale};
use spotlake_timestream::Query;

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Figure 8: Pearson correlation of dataset pairs");
    let fixture = ArchiveFixture::collect(scale);
    let db = fixture.lake.archive();
    let catalog = fixture.lake.cloud().catalog();

    let mut sps_if = Vec::new();
    let mut if_price = Vec::new();
    let mut sps_price = Vec::new();

    for ty in &fixture.types {
        for region in catalog.regions() {
            // The advisor series lives at (type, region); SPS and price at
            // (type, AZ). Pair each AZ's series with the region's advisor
            // series, matching the paper's composite analysis.
            let if_rows = db
                .query(
                    "advisor",
                    &Query::measure("if_score")
                        .filter("instance_type", ty)
                        .filter("region", region.code()),
                )
                .expect("advisor table exists");
            let if_series: Vec<(u64, f64)> = if_rows.iter().map(|r| (r.time, r.value)).collect();

            let region_id = catalog.region_id(region.code()).expect("cataloged region");
            for &az in catalog.azs_of_region(region_id) {
                let az_name = catalog.az(az).name();
                let sps_rows = db
                    .query(
                        "sps",
                        &Query::measure("sps")
                            .filter("instance_type", ty)
                            .filter("az", az_name),
                    )
                    .expect("sps table exists");
                if sps_rows.len() < 8 {
                    continue;
                }
                let sps_series: Vec<(u64, f64)> =
                    sps_rows.iter().map(|r| (r.time, r.value)).collect();
                let price_rows = db
                    .query(
                        "price",
                        &Query::measure("spot_price")
                            .filter("instance_type", ty)
                            .filter("az", az_name),
                    )
                    .expect("price table exists");
                let price_series: Vec<(u64, f64)> =
                    price_rows.iter().map(|r| (r.time, r.value)).collect();

                let (a, b) = align_step(&sps_series, &if_series);
                if let Some(r) = pearson(&a, &b) {
                    sps_if.push(r);
                }
                let (a, b) = align_step(&sps_series, &price_series);
                if let Some(r) = pearson(&a, &b) {
                    sps_price.push(r);
                }
                // IF (step) against price (step): sample both on the SPS
                // tick grid for a common clock.
                let ticks: Vec<(u64, f64)> = sps_series.clone();
                let (if_t, price_t) = (
                    align_step(&ticks, &if_series).1,
                    align_step(&ticks, &price_series).1,
                );
                let n = if_t.len().min(price_t.len());
                if let Some(r) = pearson(&if_t[if_t.len() - n..], &price_t[price_t.len() - n..]) {
                    if_price.push(r);
                }
            }
        }
    }

    let sps_if_cdf = Ecdf::new(sps_if);
    let if_price_cdf = Ecdf::new(if_price);
    let sps_price_cdf = Ecdf::new(sps_price);
    print_cdf("SPS x IF      r", &sps_if_cdf);
    print_cdf("IF  x price   r", &if_price_cdf);
    print_cdf("SPS x price   r", &sps_price_cdf);
    println!();

    let share = |cdf: &Ecdf, cut: f64| {
        if cdf.is_empty() {
            f64::NAN
        } else {
            100.0 * (cdf.eval(cut) - cdf.eval(-cut))
        }
    };
    let rows = vec![
        vec![
            "SPS x IF |r| < 0.25".to_owned(),
            fmt_pct(share(&sps_if_cdf, 0.25)),
            "62.57%".to_owned(),
        ],
        vec![
            "SPS x IF |r| < 0.5".to_owned(),
            fmt_pct(share(&sps_if_cdf, 0.5)),
            "87.64%".to_owned(),
        ],
        vec![
            "IF x price |r| < 0.25".to_owned(),
            fmt_pct(share(&if_price_cdf, 0.25)),
            "(densest near 0)".to_owned(),
        ],
        vec![
            "SPS x price |r| < 0.25".to_owned(),
            fmt_pct(share(&sps_price_cdf, 0.25)),
            "(densest near 0)".to_owned(),
        ],
    ];
    print_table(
        "Figure 8 headline shares",
        &["statistic", "measured", "paper"],
        &rows,
    );
    println!("finding: no dataset pair carries the other's information; price carries the least.");
}
