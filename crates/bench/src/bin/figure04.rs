//! Figure 4: spatial variation of the spot placement score (4a) and the
//! interruption-free score (4b).
//!
//! One row per instance class, one column per region: mean score over the
//! whole measurement, with NA where a class is not offered in a region.
//! The paper's observations: spatial variation exceeds temporal variation,
//! and the general-purpose GPU classes (G, P) are dark almost everywhere.

use spotlake_analysis::Heatmap;
use spotlake_bench::{ArchiveFixture, Scale};
use spotlake_timestream::{Aggregate, Query};
use spotlake_types::InstanceFamily;

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Figure 4: spatial variation of spot instance scores");
    let fixture = ArchiveFixture::collect(scale);
    let db = fixture.lake.archive();
    let catalog = fixture.lake.cloud().catalog();

    let mut sps_map = Heatmap::new();
    let mut if_map = Heatmap::new();
    let family_rows: Vec<String> = InstanceFamily::ALL
        .iter()
        .map(|f| f.prefix().to_uppercase())
        .collect();
    sps_map.declare_rows(family_rows.iter().cloned());
    if_map.declare_rows(family_rows.iter().cloned());
    let region_cols: Vec<String> = catalog
        .regions()
        .iter()
        .map(|r| r.code().to_owned())
        .collect();
    sps_map.declare_cols(region_cols.iter().cloned());
    if_map.declare_cols(region_cols.iter().cloned());

    for ty_name in &fixture.types {
        let family = catalog
            .instance_type(ty_name)
            .expect("collected types are cataloged")
            .family()
            .prefix()
            .to_uppercase();
        for region in catalog.regions() {
            // Whole-measurement mean via one giant window.
            let sps = db
                .query_window(
                    "sps",
                    &Query::measure("sps")
                        .filter("instance_type", ty_name)
                        .filter("region", region.code()),
                    u64::MAX / 2,
                    Aggregate::Mean,
                )
                .expect("sps table exists");
            for w in sps {
                sps_map.add(&family, region.code(), w.value);
            }
            let ifs = db
                .query_window(
                    "advisor",
                    &Query::measure("if_score")
                        .filter("instance_type", ty_name)
                        .filter("region", region.code()),
                    u64::MAX / 2,
                    Aggregate::Mean,
                )
                .expect("advisor table exists");
            for w in ifs {
                if_map.add(&family, region.code(), w.value);
            }
        }
    }

    println!("--- Figure 4a: spot placement score by class x region ---");
    print!("{}", sps_map.render(14));
    println!();
    println!("--- Figure 4b: interruption-free score by class x region ---");
    print!("{}", if_map.render(14));
    println!();

    // Spatial vs temporal variation: the paper observes "a higher degree of
    // score variations across different regions". Quantify as the std of
    // per-region class means.
    let spatial_spread = |map: &Heatmap| {
        let mut spreads = Vec::new();
        for row in map.rows().to_vec() {
            let vals: Vec<f64> = map
                .cols()
                .to_vec()
                .iter()
                .filter_map(|c| map.cell(&row, c))
                .collect();
            if let Some(sd) = spotlake_analysis::stddev(&vals) {
                spreads.push(sd);
            }
        }
        spotlake_analysis::mean(&spreads).unwrap_or(f64::NAN)
    };
    println!(
        "mean cross-region spread (std of class means): SPS {:.3}, IF {:.3}",
        spatial_spread(&sps_map),
        spatial_spread(&if_map)
    );
    for class in ["G", "P"] {
        if let Some(v) = sps_map.row_mean(class) {
            println!(
                "general-purpose GPU class {class}: mean SPS {v:.2} (paper: relatively low in most regions)"
            );
        }
    }
}
