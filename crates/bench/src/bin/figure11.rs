//! Figure 11: CDFs of (a) the latency until a spot request is fulfilled and
//! (b) the time until a fulfilled instance is interrupted, per score
//! combination.
//!
//! Paper landmarks: with both scores high, ~28.07% of requests fulfill
//! within one second and >90% within 135 seconds; with both low, the median
//! fulfillment latency is 1,322 seconds. For running time, the median of
//! H-L is 6,872 s versus 2,859 s for L-H — when the two scores contradict,
//! the placement score wins.

use spotlake::experiment::Stratum;
use spotlake_analysis::Ecdf;
use spotlake_bench::{print_cdf, run_experiment, Scale};

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Figure 11: fulfillment latency and time-to-interruption CDFs");
    let fixture = run_experiment(scale.seed);
    let report = &fixture.report;

    println!("--- Figure 11a: latency until fulfillment (seconds, shorter is better) ---");
    for stratum in Stratum::ALL {
        let cdf = Ecdf::new(report.fulfillment_latencies(stratum));
        print_cdf(&format!("  {}", stratum.label()), &cdf);
    }
    let hh = Ecdf::new(report.fulfillment_latencies(Stratum::HH));
    if !hh.is_empty() {
        println!(
            "  H-H: {:.2}% within 1s (paper: 28.07%), {:.1}% within 135s (paper: >90%)",
            100.0 * hh.eval(1.0),
            100.0 * hh.eval(135.0)
        );
    }
    let ll = Ecdf::new(report.fulfillment_latencies(Stratum::LL));
    if !ll.is_empty() {
        println!("  L-L: median {:.0}s (paper: 1322s)", ll.median());
    }
    println!();

    println!("--- Figure 11b: time until interruption (seconds, longer is better) ---");
    for stratum in Stratum::ALL {
        let cdf = Ecdf::new(report.run_durations(stratum));
        print_cdf(&format!("  {}", stratum.label()), &cdf);
    }
    let hl = Ecdf::new(report.run_durations(Stratum::HL));
    let lh = Ecdf::new(report.run_durations(Stratum::LH));
    if !hl.is_empty() && !lh.is_empty() {
        println!(
            "  medians: H-L {:.0}s (paper: 6872s) vs L-H {:.0}s (paper: 2859s) — {}",
            hl.median(),
            lh.median(),
            if hl.median() > lh.median() {
                "the placement score takes precedence, as the paper concludes"
            } else {
                "ordering differs from the paper — check calibration"
            }
        );
    }
}
