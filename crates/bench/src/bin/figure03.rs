//! Figure 3: temporal variation of the spot placement score (3a) and the
//! interruption-free score (3b).
//!
//! One row per instance class (in the paper's family order), one column per
//! day: daily mean score. The paper's headline observations: the placement
//! score is much brighter (higher) than the interruption-free score
//! (fleet averages 2.8 vs 2.22); the accelerated-computing family is
//! darkest; a fleet-wide dip appears around day 152 (June 2, 2022) in the
//! placement score.

use spotlake_analysis::{resample_step, Heatmap};
use spotlake_bench::{ArchiveFixture, Scale};
use spotlake_timestream::{Aggregate, Query};
use spotlake_types::{InstanceFamily, InstanceGroup};

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Figure 3: temporal variation of spot instance scores");
    let fixture = ArchiveFixture::collect(scale);
    let db = fixture.lake.archive();
    let catalog = fixture.lake.cloud().catalog();

    let mut sps_map = Heatmap::new();
    let mut if_map = Heatmap::new();
    let family_rows: Vec<String> = InstanceFamily::ALL
        .iter()
        .map(|f| f.prefix().to_uppercase())
        .collect();
    sps_map.declare_rows(family_rows.iter().cloned());
    if_map.declare_rows(family_rows.iter().cloned());
    let day_cols: Vec<String> = (0..scale.days).map(|d| format!("d{d:02}")).collect();
    sps_map.declare_cols(day_cols.iter().cloned());
    if_map.declare_cols(day_cols.iter().cloned());

    let tick = scale.tick().as_secs();
    let day_grid: Vec<u64> = (1..=scale.days * 86_400 / tick).map(|i| i * tick).collect();

    for ty_name in &fixture.types {
        let family = catalog
            .instance_type(ty_name)
            .expect("collected types are cataloged")
            .family()
            .prefix()
            .to_uppercase();

        // Daily mean placement score across this type's pools, from the
        // archive's windowed aggregation.
        let windows = db
            .query_window(
                "sps",
                &Query::measure("sps").filter("instance_type", ty_name),
                86_400,
                Aggregate::Mean,
            )
            .expect("sps table exists");
        for w in windows {
            let day = w.window_start / 86_400;
            sps_map.add(&family, &format!("d{day:02}"), w.value);
        }

        // Interruption-free score: expand change events onto the tick grid
        // per region, then fold into daily means.
        for region in catalog.regions() {
            let rows = db
                .query(
                    "advisor",
                    &Query::measure("if_score")
                        .filter("instance_type", ty_name)
                        .filter("region", region.code()),
                )
                .expect("advisor table exists");
            if rows.is_empty() {
                continue;
            }
            let series: Vec<(u64, f64)> = rows.iter().map(|r| (r.time, r.value)).collect();
            let values = resample_step(&series, &day_grid);
            let offset = day_grid.len() - values.len();
            for (i, v) in values.iter().enumerate() {
                let day = day_grid[offset + i] / 86_400;
                if_map.add(&family, &format!("d{day:02}"), *v);
            }
        }
    }

    println!("--- Figure 3a: spot placement score, daily means per class ---");
    print!("{}", sps_map.render(6));
    println!();
    println!("--- Figure 3b: interruption-free score, daily means per class ---");
    print!("{}", if_map.render(6));
    println!();

    let sps_avg = sps_map.grand_mean().unwrap_or(f64::NAN);
    let if_avg = if_map.grand_mean().unwrap_or(f64::NAN);
    println!("fleet average placement score:       {sps_avg:.2} (paper: 2.80)");
    println!("fleet average interruption-free:     {if_avg:.2} (paper: 2.22)");

    let accel_avg = |map: &Heatmap| {
        let mut sum = 0.0;
        let mut n = 0;
        for f in InstanceFamily::ALL {
            if f.group() == InstanceGroup::AcceleratedComputing {
                if let Some(v) = map.row_mean(&f.prefix().to_uppercase()) {
                    sum += v;
                    n += 1;
                }
            }
        }
        sum / n.max(1) as f64
    };
    let a_sps = accel_avg(&sps_map);
    let a_if = accel_avg(&if_map);
    println!(
        "accelerated-computing:  SPS {a_sps:.2} ({:+.2}% vs fleet; paper: -12.07%), IF {a_if:.2} ({:+.2}% vs fleet; paper: -34.98%)",
        100.0 * (a_sps - sps_avg) / sps_avg,
        100.0 * (a_if - if_avg) / if_avg
    );
    if scale.days >= 20 {
        let shock_day = scale.days * 5 / 6;
        println!(
            "(a demand shock is scheduled on day {shock_day} — look for the darker column, the paper's June 2 dip)"
        );
    }
}
