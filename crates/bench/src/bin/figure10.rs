//! Figure 10: CDF of the elapsed time between value-change events for the
//! spot placement score, the interruption-free score, and the spot price.
//!
//! The paper finds the placement score updating most frequently and the
//! interruption-free score least frequently (consistent with its
//! trailing-month window), with the price in between.

use spotlake_analysis::{update_intervals, Ecdf};
use spotlake_bench::{print_cdf, ArchiveFixture, Scale};
use spotlake_timestream::Query;

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Figure 10: elapsed time between dataset updates");
    let fixture = ArchiveFixture::collect(scale);
    let db = fixture.lake.archive();
    let catalog = fixture.lake.cloud().catalog();

    let mut sps_hours = Vec::new();
    let mut if_hours = Vec::new();
    let mut price_hours = Vec::new();

    for ty in &fixture.types {
        for region in catalog.regions() {
            let region_id = catalog.region_id(region.code()).expect("cataloged region");
            // Advisor at (type, region).
            let if_rows = db
                .query(
                    "advisor",
                    &Query::measure("if_score")
                        .filter("instance_type", ty)
                        .filter("region", region.code()),
                )
                .expect("advisor table exists");
            let series: Vec<(u64, f64)> = if_rows.iter().map(|r| (r.time, r.value)).collect();
            if_hours.extend(
                update_intervals(&series)
                    .into_iter()
                    .map(|s| s as f64 / 3600.0),
            );
            // SPS and price at (type, AZ).
            for &az in catalog.azs_of_region(region_id) {
                let az_name = catalog.az(az).name();
                for (table, measure, out) in [
                    ("sps", "sps", &mut sps_hours),
                    ("price", "spot_price", &mut price_hours),
                ] {
                    let rows = db
                        .query(
                            table,
                            &Query::measure(measure)
                                .filter("instance_type", ty)
                                .filter("az", az_name),
                        )
                        .expect("table exists");
                    let series: Vec<(u64, f64)> = rows.iter().map(|r| (r.time, r.value)).collect();
                    out.extend(
                        update_intervals(&series)
                            .into_iter()
                            .map(|s| s as f64 / 3600.0),
                    );
                }
            }
        }
    }

    let sps = Ecdf::new(sps_hours);
    let ifs = Ecdf::new(if_hours);
    let price = Ecdf::new(price_hours);
    println!("inter-update times, hours:");
    print_cdf("  placement score   ", &sps);
    print_cdf("  spot price        ", &price);
    print_cdf("  interruption-free ", &ifs);
    println!();
    let med = |c: &Ecdf| if c.is_empty() { f64::NAN } else { c.median() };
    println!(
        "medians: SPS {:.1}h < price {:.1}h < IF {:.1}h  ({})",
        med(&sps),
        med(&price),
        med(&ifs),
        if med(&sps) < med(&price) && med(&price) < med(&ifs) {
            "ordering matches the paper"
        } else {
            "ordering differs from the paper — check calibration"
        }
    );
    println!("(the collection tick is the resolution floor for the SPS series)");
}
