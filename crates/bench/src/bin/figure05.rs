//! Figure 5: spot placement and interruption-free scores grouped by
//! instance size.
//!
//! The paper plots, for sizes with more than 10 instance types, the mean of
//! both scores (primary axis) and the number of instance types (secondary
//! axis), finding both scores decrease as the size grows.

use spotlake_bench::{print_table, ArchiveFixture, Scale};
use spotlake_timestream::{Aggregate, Query};
use spotlake_types::InstanceSize;
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Figure 5: scores grouped by instance size");
    let fixture = ArchiveFixture::collect(scale);
    let db = fixture.lake.archive();
    let catalog = fixture.lake.cloud().catalog();

    // size -> (sps sum, sps n, if sum, if n, type count)
    let mut by_size: BTreeMap<usize, (f64, u64, f64, u64, u64)> = BTreeMap::new();
    let size_index = |s: InstanceSize| {
        InstanceSize::ALL
            .iter()
            .position(|&x| x == s)
            .expect("all sizes enumerated")
    };

    for ty_name in &fixture.types {
        let size = catalog
            .instance_type(ty_name)
            .expect("collected types are cataloged")
            .size();
        let entry = by_size.entry(size_index(size)).or_default();
        entry.4 += 1;

        let sps = db
            .query_window(
                "sps",
                &Query::measure("sps").filter("instance_type", ty_name),
                u64::MAX / 2,
                Aggregate::Mean,
            )
            .expect("sps table exists");
        for w in sps {
            entry.0 += w.value * w.count as f64;
            entry.1 += w.count as u64;
        }
        let ifs = db
            .query_window(
                "advisor",
                &Query::measure("if_score").filter("instance_type", ty_name),
                u64::MAX / 2,
                Aggregate::Mean,
            )
            .expect("advisor table exists");
        for w in ifs {
            entry.2 += w.value * w.count as f64;
            entry.3 += w.count as u64;
        }
    }

    // The paper keeps sizes with more than 10 instance types. The stride
    // reduces type counts proportionally, so scale the cut with it.
    let min_types = (10 / scale.stride).max(2) as u64;
    let mut rows = Vec::new();
    let mut series: Vec<(f64, f64)> = Vec::new();
    for (idx, (sps_sum, sps_n, if_sum, if_n, n_types)) in &by_size {
        if *n_types < min_types || *sps_n == 0 {
            continue;
        }
        let size = InstanceSize::ALL[*idx];
        let sps_mean = sps_sum / *sps_n as f64;
        let if_mean = if *if_n > 0 {
            if_sum / *if_n as f64
        } else {
            f64::NAN
        };
        series.push((sps_mean, if_mean));
        rows.push(vec![
            size.suffix().to_owned(),
            format!("{sps_mean:.3}"),
            format!("{if_mean:.3}"),
            n_types.to_string(),
        ]);
    }
    print_table(
        &format!("Figure 5 (sizes with >= {min_types} collected types)"),
        &["size", "SPS mean", "IF mean", "types"],
        &rows,
    );

    // Trend check: both scores should decrease from the small-size to the
    // large-size end.
    if series.len() >= 3 {
        let k = series.len() / 3;
        let head_sps: f64 = series[..k].iter().map(|p| p.0).sum::<f64>() / k as f64;
        let tail_sps: f64 = series[series.len() - k..].iter().map(|p| p.0).sum::<f64>() / k as f64;
        println!(
            "small-size SPS mean {head_sps:.3} vs large-size {tail_sps:.3} ({})",
            if tail_sps < head_sps {
                "decreasing, as the paper reports"
            } else {
                "NOT decreasing — check calibration"
            }
        );
    }
}
