//! Figure 1: spot placement score query optimization via bin packing.
//!
//! Reproduces both the worked example (the regions supporting `p3.2xlarge`
//! packed into few queries) and the headline full-catalog numbers: the
//! paper reduced 9,299 all-pairs queries to 2,226 (≈ 4.5×) with the CBC
//! MIP solver; we report the same statistics for the reconstruction's
//! support matrix, for every packing strategy.

use spotlake_bench::print_table;
use spotlake_collector::{PlannerStrategy, QueryPlanner};
use spotlake_types::Catalog;
use std::time::Instant;

fn main() {
    println!("== Figure 1: query optimization via bin packing ==\n");
    let catalog = Catalog::aws_2022();
    let all_pairs = catalog.instance_types().len() * catalog.regions().len();
    println!(
        "catalog: {} instance types x {} regions = {} all-pairs queries (paper: 9,299)\n",
        catalog.instance_types().len(),
        catalog.regions().len(),
        all_pairs
    );

    // The worked example: p3.2xlarge's supporting regions and AZ counts.
    let ty = catalog
        .instance_type_id("p3.2xlarge")
        .expect("p3.2xlarge is in the catalog");
    let support = catalog.support_map(ty);
    let rows: Vec<Vec<String>> = support
        .iter()
        .map(|(&region, &azs)| vec![catalog.region(region).code().to_owned(), azs.to_string()])
        .collect();
    print_table(
        "p3.2xlarge region support (Figure 1 example input)",
        &["Region", "AZs"],
        &rows,
    );
    let planner = QueryPlanner::new(PlannerStrategy::Exact);
    let plan = planner.plan(&catalog, Some(&["p3.2xlarge".to_string()]));
    println!("packed into {} queries:", plan.len());
    for q in &plan {
        println!(
            "  [{}] -> {} expected scores",
            q.regions.join(", "),
            q.expected_results
        );
    }
    println!();

    // Full-catalog statistics per strategy.
    let mut rows = Vec::new();
    for strategy in PlannerStrategy::ALL {
        let start = Instant::now();
        let (_, stats) = QueryPlanner::new(strategy).plan_with_stats(&catalog, None);
        let elapsed = start.elapsed();
        rows.push(vec![
            strategy.name().to_owned(),
            stats.planned_queries.to_string(),
            format!("{:.2}x", all_pairs as f64 / stats.planned_queries as f64),
            format!("{:.1?}", elapsed),
        ]);
    }
    let lb = QueryPlanner::default().plan_lower_bound(&catalog);
    print_table(
        "Full-catalog query plans (paper: 2,226 packed queries, 4.5x)",
        &["strategy", "queries", "vs all-pairs", "plan time"],
        &rows,
    );
    println!("Martello-Toth L2 lower bound on any plan: {lb} queries");
    println!(
        "accounts needed at 50 unique queries/day: {}",
        spotlake_collector::AccountPool::required_accounts(
            QueryPlanner::default().plan(&catalog, None).len()
        )
    );
}
