//! Table 1: possible spot instance request status and description.
//!
//! Prints the lifecycle table and verifies the legal transition structure
//! the rest of the system enforces.

use spotlake_bench::print_table;
use spotlake_types::RequestState;

fn main() {
    println!("== Table 1: spot instance request status ==\n");
    let rows: Vec<Vec<String>> = RequestState::ALL
        .iter()
        .map(|s| vec![s.label().to_owned(), s.description().to_owned()])
        .collect();
    print_table(
        "Status lifecycle (Table 1)",
        &["Status", "Description"],
        &rows,
    );

    println!("Legal transitions:");
    for from in RequestState::ALL {
        let tos: Vec<&str> = RequestState::ALL
            .iter()
            .filter(|&&to| from.can_transition_to(to))
            .map(|t| t.label())
            .collect();
        println!(
            "  {:<20} -> {}",
            from.label(),
            if tos.is_empty() {
                "(terminal)".to_owned()
            } else {
                tos.join(", ")
            }
        );
    }
    println!(
        "  (persistent requests additionally re-enter pending-evaluation after an interruption)"
    );
}
