//! Runs every table/figure regeneration binary in sequence — the output is
//! what `EXPERIMENTS.md` records.
//!
//! Usage: `cargo run --release -p spotlake-bench --bin experiments`
//! (set `SPOTLAKE_DAYS` / `SPOTLAKE_TICK_MINUTES` / `SPOTLAKE_STRIDE` to
//! rescale the archive-driven experiments).

use std::process::Command;

const BINARIES: &[&str] = &[
    "table01", "figure01", "table02", "figure03", "figure04", "figure05", "figure06", "figure07",
    "figure08", "figure09", "figure10", "table03", "figure11", "table04",
];

fn main() {
    let me = std::env::current_exe().expect("current_exe is queryable");
    let dir = me.parent().expect("binary lives in a directory");
    let mut failures = Vec::new();
    for name in BINARIES {
        println!("\n################################################################");
        println!("# {name}");
        println!("################################################################\n");
        let path = dir.join(name);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("!! {name} exited with {status}");
            failures.push(*name);
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("all {} experiments completed", BINARIES.len());
    } else {
        println!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
