//! Figure 9: histogram of the absolute difference between the spot
//! placement score and the interruption-free score.
//!
//! The paper pairs the two scores at every observation instant and counts
//! |SPS − IF| into 0.0 … 2.0 bins (0.5 steps). Differences of 0.0 dominate,
//! but ~17.41% of observations show the full contradiction of 2.0 and ~24%
//! differ by at least 1.5.

use spotlake_analysis::{align_step, Histogram};
use spotlake_bench::{fmt_pct, print_table, ArchiveFixture, Scale};
use spotlake_timestream::Query;

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Figure 9: |SPS - IF| score difference distribution");
    let fixture = ArchiveFixture::collect(scale);
    let db = fixture.lake.archive();
    let catalog = fixture.lake.cloud().catalog();

    let mut hist = Histogram::difference_bins();
    for ty in &fixture.types {
        for region in catalog.regions() {
            let if_rows = db
                .query(
                    "advisor",
                    &Query::measure("if_score")
                        .filter("instance_type", ty)
                        .filter("region", region.code()),
                )
                .expect("advisor table exists");
            if if_rows.is_empty() {
                continue;
            }
            let if_series: Vec<(u64, f64)> = if_rows.iter().map(|r| (r.time, r.value)).collect();
            let sps_rows = db
                .query(
                    "sps",
                    &Query::measure("sps")
                        .filter("instance_type", ty)
                        .filter("region", region.code()),
                )
                .expect("sps table exists");
            let sps_series: Vec<(u64, f64)> = sps_rows.iter().map(|r| (r.time, r.value)).collect();
            let (sps, ifs) = align_step(&sps_series, &if_series);
            hist.extend(sps.iter().zip(&ifs).map(|(a, b)| (a - b).abs()));
        }
    }

    let paper = [f64::NAN, f64::NAN, f64::NAN, f64::NAN, 17.41];
    let shares = hist.shares();
    let rows: Vec<Vec<String>> = hist
        .centers()
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            vec![
                format!("{c:.1}"),
                fmt_pct(shares[i]),
                if paper[i].is_nan() {
                    "(dominant at 0.0)".to_owned()
                } else {
                    fmt_pct(paper[i])
                },
            ]
        })
        .collect();
    print_table(
        &format!("Figure 9 over {} paired observations", hist.total()),
        &["|SPS - IF|", "measured", "paper"],
        &rows,
    );
    let ge_15 = shares[3] + shares[4];
    println!(
        "difference >= 1.5: {} (paper: ~24%) — the contradictory-information share",
        fmt_pct(ge_15)
    );
}
