//! Figure 6: composite instance type queries.
//!
//! The paper issued placement-score queries naming three arbitrary instance
//! types and compared the returned composite score against the sum of the
//! three types' individual scores, choosing type/AZ combinations so the
//! individual-score sums 3..=9 are uniformly represented. Findings:
//! ~38.81% of queries sit exactly on the y = x line, ~60.62% are
//! super-additive, and two cases were sub-additive.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use spotlake_bench::{fmt_pct, print_table, Scale};
use spotlake_cloud_api::{AccountId, SpsClient, SpsRequest};
use spotlake_cloud_sim::{SimCloud, SimConfig};
use spotlake_types::{AzId, Catalog, InstanceTypeId};
use std::collections::BTreeMap;

/// Queries per individual-sum bucket (paper: "the same number of instance
/// type and availability zone combinations in each summed score value").
const PER_BUCKET: usize = 120;

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Figure 6: composite instance type queries");

    let mut config = SimConfig::with_seed(scale.seed);
    config.tick = scale.tick();
    let mut cloud = SimCloud::new(Catalog::aws_2022(), config);
    cloud.run_days(2); // move off the deterministic initial state
    let catalog = cloud.catalog().clone();
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xF16);

    // Enumerate candidate (3 types, AZ) combinations and bucket them by the
    // sum of individual scores so each sum 3..=9 is equally represented.
    let type_ids: Vec<InstanceTypeId> = catalog.type_ids().collect();
    let az_ids: Vec<AzId> = catalog.az_ids().collect();
    let mut buckets: BTreeMap<u32, Vec<(Vec<InstanceTypeId>, AzId)>> = BTreeMap::new();
    'outer: for _ in 0..300_000 {
        let az = *az_ids.choose(&mut rng).expect("catalog has AZs");
        let mut types = Vec::with_capacity(3);
        let mut sum = 0u32;
        for _ in 0..3 {
            let ty = *type_ids.choose(&mut rng).expect("catalog has types");
            let Some(score) = cloud.placement_score(ty, az, 1) else {
                continue 'outer; // unsupported in this AZ; resample
            };
            if types.contains(&ty) {
                continue 'outer;
            }
            sum += u32::from(score.value());
            types.push(ty);
        }
        let bucket = buckets.entry(sum).or_default();
        if bucket.len() < PER_BUCKET {
            bucket.push((types, az));
        }
        if buckets.len() == 7 && buckets.values().all(|b| b.len() >= PER_BUCKET) {
            break;
        }
    }

    // Issue the composite queries through the real API client.
    let mut client = SpsClient::new();
    let mut on_line = 0usize;
    let mut above = 0usize;
    let mut below = 0usize;
    let mut total = 0usize;
    let mut scatter: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for (sum, combos) in &buckets {
        for (i, (types, az)) in combos.iter().enumerate() {
            let names: Vec<String> = types.iter().map(|&t| catalog.ty(t).name()).collect();
            let region = catalog.az(*az).region();
            let request = SpsRequest::new(names, vec![catalog.region(region).code().to_owned()], 1)
                .expect("non-empty request")
                .single_availability_zone(true);
            // Each bucket cycles through fresh accounts to stay inside the
            // 50-unique-query limit, exactly as a real measurement would.
            let account = AccountId::new(format!("fig6-{sum}-{}", i / 40));
            let scores = client
                .get_spot_placement_scores(&cloud, &account, &request)
                .expect("catalog names are valid");
            let Some(row) = scores
                .iter()
                .find(|s| s.availability_zone.as_deref() == Some(catalog.az(*az).name()))
            else {
                continue; // truncated out of the top-10 for this region
            };
            let composite = u32::from(row.score.value());
            total += 1;
            *scatter.entry((composite, *sum)).or_default() += 1;
            match composite.cmp(sum) {
                std::cmp::Ordering::Equal => on_line += 1,
                std::cmp::Ordering::Greater => above += 1,
                std::cmp::Ordering::Less => below += 1,
            }
        }
    }

    println!("scatter (composite score, sum of individual scores) -> count:");
    for ((comp, sum), n) in &scatter {
        println!("  composite={comp:>2}  sum={sum}  n={n}");
    }
    println!();
    let rows = vec![
        vec![
            "composite == sum (on y=x)".to_owned(),
            fmt_pct(100.0 * on_line as f64 / total as f64),
            "38.81%".to_owned(),
        ],
        vec![
            "composite > sum (super-additive)".to_owned(),
            fmt_pct(100.0 * above as f64 / total as f64),
            "60.62%".to_owned(),
        ],
        vec![
            "composite < sum (exceptions)".to_owned(),
            fmt_pct(100.0 * below as f64 / total as f64),
            "2 cases".to_owned(),
        ],
    ];
    print_table(
        &format!("Figure 6 composite-query outcomes over {total} queries"),
        &["case", "measured", "paper"],
        &rows,
    );
    println!("finding: the sum of individual scores is the floor of the composite score.");
}
