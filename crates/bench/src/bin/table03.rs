//! Table 3: percentage of not-fulfilled and interrupted spot requests per
//! score combination.
//!
//! Paper reference (503 cases, 24 h each, persistent requests, bid at the
//! on-demand price):
//!
//! | combo | Not-Fulfilled | Interrupted |
//! |-------|---------------|-------------|
//! | H-H   | 0%            | 14.71%      |
//! | H-L   | 0%            | 40.52%      |
//! | M-M   | 25.49%        | 39.22%      |
//! | L-H   | 58.18%        | 30.91%      |
//! | L-L   | 45.61%        | 45.61%      |

use spotlake::experiment::Stratum;
use spotlake_bench::{fmt_pct, print_table, run_experiment, Scale};

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Table 3: fulfillment and interruption by score combination");
    let fixture = run_experiment(scale.seed);

    let paper: &[(Stratum, f64, f64)] = &[
        (Stratum::HH, 0.0, 14.71),
        (Stratum::HL, 0.0, 40.52),
        (Stratum::MM, 25.49, 39.22),
        (Stratum::LH, 58.18, 30.91),
        (Stratum::LL, 45.61, 45.61),
    ];
    let rows: Vec<Vec<String>> = fixture
        .report
        .table3()
        .into_iter()
        .map(|row| {
            let (_, p_nf, p_int) = paper
                .iter()
                .find(|(s, _, _)| *s == row.stratum)
                .expect("all strata enumerated");
            vec![
                row.stratum.label().to_owned(),
                row.cases.to_string(),
                fmt_pct(row.not_fulfilled_pct),
                fmt_pct(*p_nf),
                fmt_pct(row.interrupted_pct),
                fmt_pct(*p_int),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Table 3 over {} cases (paper: 503)",
            fixture.report.cases.len()
        ),
        &[
            "combo",
            "cases",
            "not-fulfilled",
            "paper",
            "interrupted",
            "paper",
        ],
        &rows,
    );
    println!("findings to check against the paper:");
    println!("  - high placement score (H-*) implies every request fulfilled");
    println!("  - a low placement score is the indicator of fulfillment failure");
    println!("  - interruption ratio rises steeply once either score leaves High");
}
