//! Table 2: value distribution of the spot placement score and the
//! interruption-free score.
//!
//! Paper reference (181 days, 10-minute samples):
//!
//! | value | placement score | interruption-free score |
//! |-------|-----------------|-------------------------|
//! | 3.0   | 87.88%          | 33.05%                  |
//! | 2.5   | NA              | 25.92%                  |
//! | 2.0   | 3.81%           | 13.86%                  |
//! | 1.5   | NA              | 6.33%                   |
//! | 1.0   | 8.31%           | 20.84%                  |

use spotlake_analysis::{resample_step, Histogram};
use spotlake_bench::{fmt_pct, print_table, ArchiveFixture, Scale};
use spotlake_timestream::Query;

fn main() {
    let scale = Scale::from_env();
    scale.print_header("Table 2: score value distributions");
    let fixture = ArchiveFixture::collect(scale);
    let db = fixture.lake.archive();
    let catalog = fixture.lake.cloud().catalog();

    // Placement score: stored densely, one record per (pool, tick).
    let mut sps_hist = Histogram::score_bins();
    for ty in &fixture.types {
        let rows = db
            .query("sps", &Query::measure("sps").filter("instance_type", ty))
            .expect("sps table exists");
        sps_hist.extend(rows.iter().map(|r| r.value));
    }

    // Interruption-free score: stored as change events, so expand each
    // (type, region) series back onto the collection tick grid to recover
    // the time-share the paper reports.
    let tick = scale.tick().as_secs();
    let grid: Vec<u64> = (1..=scale.days * 86_400 / tick).map(|i| i * tick).collect();
    let mut if_hist = Histogram::score_bins();
    for ty in &fixture.types {
        for region in catalog.regions() {
            let rows = db
                .query(
                    "advisor",
                    &Query::measure("if_score")
                        .filter("instance_type", ty)
                        .filter("region", region.code()),
                )
                .expect("advisor table exists");
            if rows.is_empty() {
                continue;
            }
            let series: Vec<(u64, f64)> = rows.iter().map(|r| (r.time, r.value)).collect();
            if_hist.extend(resample_step(&series, &grid));
        }
    }

    let paper_sps = [8.31, f64::NAN, 3.81, f64::NAN, 87.88];
    let paper_if = [20.84, 6.33, 13.86, 25.92, 33.05];
    let sps_shares = sps_hist.shares();
    let if_shares = if_hist.shares();
    let mut rows = Vec::new();
    for (i, &center) in sps_hist.centers().iter().enumerate().rev() {
        let sps_cell = if paper_sps[i].is_nan() {
            ("NA".to_owned(), "NA".to_owned())
        } else {
            (fmt_pct(sps_shares[i]), fmt_pct(paper_sps[i]))
        };
        rows.push(vec![
            format!("{center:.1}"),
            sps_cell.0,
            sps_cell.1,
            fmt_pct(if_shares[i]),
            fmt_pct(paper_if[i]),
        ]);
    }
    print_table(
        "Table 2: score value distribution (measured vs paper)",
        &["value", "SPS", "SPS paper", "IF", "IF paper"],
        &rows,
    );
    println!(
        "samples: {} placement-score, {} interruption-free",
        sps_hist.total(),
        if_hist.total()
    );
}
