//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md`'s per-experiment index). They share:
//!
//! * [`Scale`] — the measurement scale, overridable via environment
//!   variables so the same binary can run as a quick smoke test or a
//!   paper-scale sweep:
//!   `SPOTLAKE_DAYS` (archive length, default 30),
//!   `SPOTLAKE_TICK_MINUTES` (collection tick, default 120 — the paper's
//!   10-minute tick over 181 days is reproducible but takes far longer),
//!   `SPOTLAKE_STRIDE` (keep every n-th instance type, default 2),
//!   `SPOTLAKE_SEED`.
//! * [`ArchiveFixture`] — a full pipeline (cloud + collector + archive)
//!   run for the configured scale.
//! * Small text-table / CDF printing helpers, so every binary prints the
//!   same row/series format the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spotlake::{CollectorConfig, SimConfig, SpotLake};
use spotlake_analysis::Ecdf;
use spotlake_types::{Catalog, SimDuration};

/// Scale knobs for the archive-driven experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Days of archive to collect.
    pub days: u64,
    /// Collection tick in minutes.
    pub tick_minutes: u64,
    /// Keep every n-th instance type (1 = full catalog).
    pub stride: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            days: 30,
            tick_minutes: 120,
            stride: 2,
            seed: 20_220_901,
        }
    }
}

impl Scale {
    /// Reads the scale from the environment, falling back to defaults.
    pub fn from_env() -> Scale {
        let d = Scale::default();
        // Zero would divide by zero (tick) or panic on modulo (stride);
        // clamp rather than crash deep inside a sweep.
        Scale {
            days: env_u64("SPOTLAKE_DAYS", d.days).max(1),
            tick_minutes: env_u64("SPOTLAKE_TICK_MINUTES", d.tick_minutes).max(1),
            stride: (env_u64("SPOTLAKE_STRIDE", d.stride as u64) as usize).max(1),
            seed: env_u64("SPOTLAKE_SEED", d.seed),
        }
    }

    /// A small scale for tests and smoke runs.
    pub fn smoke() -> Scale {
        Scale {
            days: 3,
            tick_minutes: 240,
            stride: 12,
            seed: 7,
        }
    }

    /// The collection tick as a duration.
    pub fn tick(&self) -> SimDuration {
        SimDuration::from_mins(self.tick_minutes)
    }

    /// Prints the standard scale header every binary emits.
    pub fn print_header(&self, experiment: &str) {
        println!("== {experiment} ==");
        println!(
            "scale: {} days, {}-minute tick, type stride {}, seed {}",
            self.days, self.tick_minutes, self.stride, self.seed
        );
        println!(
            "(paper scale: 181 days, 10-minute tick, full 547-type catalog; set\n SPOTLAKE_DAYS/SPOTLAKE_TICK_MINUTES/SPOTLAKE_STRIDE to change)"
        );
        println!();
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A fully collected archive at a given scale.
#[derive(Debug)]
pub struct ArchiveFixture {
    /// The pipeline after collection.
    pub lake: SpotLake,
    /// The scale it was collected at.
    pub scale: Scale,
    /// Names of the instance types that were collected (stride-filtered).
    pub types: Vec<String>,
}

impl ArchiveFixture {
    /// Builds the AWS-2022 catalog (restricted by the scale's stride),
    /// runs the collector for the scale's horizon, and returns the
    /// pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline cannot be built (impossible at these
    /// configurations) — binaries prefer a crash over silent misreporting.
    pub fn collect(scale: Scale) -> ArchiveFixture {
        let catalog = Catalog::aws_2022();
        let filter: Option<Vec<String>> = if scale.stride > 1 {
            Some(
                catalog
                    .instance_types()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % scale.stride == 0)
                    .map(|(_, t)| t.name())
                    .collect(),
            )
        } else {
            None
        };

        let mut sim_config = SimConfig::with_seed(scale.seed);
        sim_config.tick = scale.tick();
        // Place the demand shock inside the window when it is long enough
        // (the paper's dip fell on day 152 of 181).
        sim_config.shock_day = if scale.days >= 20 {
            Some(scale.days * 5 / 6)
        } else {
            None
        };

        let collector_config = CollectorConfig {
            type_filter: filter.clone(),
            ..CollectorConfig::default()
        };
        let mut lake = SpotLake::builder()
            .catalog(catalog)
            .sim_config(sim_config)
            .collector_config(collector_config)
            .build()
            .expect("auto-sized account pool always suffices");

        let rounds = SimDuration::from_days(scale.days).div_duration(scale.tick());
        lake.run_rounds(rounds)
            .expect("collection cannot hit rate limits");
        let types = match filter {
            Some(names) => names,
            None => lake
                .cloud()
                .catalog()
                .instance_types()
                .iter()
                .map(|t| t.name())
                .collect(),
        };
        ArchiveFixture { lake, scale, types }
    }
}

/// The Section 5.4 experiment at bench scale: a full-catalog cloud warmed
/// long enough to fill the advisor's trailing window, then the paper's
/// protocol (stratified sampling → month of history → 503 persistent
/// requests → 24 h observation).
#[derive(Debug)]
pub struct ExperimentFixture {
    /// The completed experiment.
    pub report: spotlake::experiment::ExperimentReport,
    /// The archive of recorded case history.
    pub db: spotlake_timestream::Database,
}

/// Runs the fulfillment/interruption experiment. The experiment always uses
/// a 10-minute tick (interruptions and latencies need the resolution);
/// `SPOTLAKE_WARMUP_DAYS` (default 31) controls the advisor warmup.
pub fn run_experiment(seed: u64) -> ExperimentFixture {
    use spotlake::experiment::{ExperimentConfig, FulfillmentExperiment};
    use spotlake::SimCloud;

    let warmup = std::env::var("SPOTLAKE_WARMUP_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(31);
    let mut config = SimConfig::with_seed(seed);
    config.tick = SimDuration::from_mins(10);
    config.shock_day = None; // the experiment window should be shock-free
    let mut cloud = SimCloud::new(Catalog::aws_2022(), config);
    eprintln!("[experiment] warming up the advisor window: {warmup} days...");
    cloud.run_days(warmup);
    eprintln!("[experiment] recording history and running the protocol...");
    let exp = FulfillmentExperiment::new(ExperimentConfig {
        seed,
        ..ExperimentConfig::default()
    });
    let (report, db) = exp.run(&mut cloud);
    eprintln!("[experiment] {} cases completed", report.cases.len());
    ExperimentFixture { report, db }
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("{title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    println!("  {}", header_line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("  {}", line.join("  "));
    }
    println!();
}

/// Prints a CDF as quantile rows (the series a plot would draw).
pub fn print_cdf(name: &str, cdf: &Ecdf) {
    if cdf.is_empty() {
        println!("{name}: (no samples)");
        return;
    }
    let qs = [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99];
    let cells: Vec<String> = qs
        .iter()
        .map(|&q| format!("p{:02.0}={:.3}", q * 100.0, cdf.quantile(q)))
        .collect();
    println!("{name} (n={}): {}", cdf.len(), cells.join(" "));
}

/// Formats a percentage cell.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fixture_collects() {
        let fixture = ArchiveFixture::collect(Scale::smoke());
        assert!(fixture.lake.archive().point_count() > 0);
    }

    #[test]
    fn scale_env_fallbacks() {
        // Unset variables fall back to the defaults.
        let s = Scale::from_env();
        assert!(s.days > 0 && s.tick_minutes > 0 && s.stride > 0);
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        print_cdf("empty", &Ecdf::new(vec![]));
        print_cdf("one", &Ecdf::new(vec![1.0]));
    }
}
