//! Ablation bench: bin-packing strategies on the full-catalog query-planning
//! workload (DESIGN.md §5: exact branch-and-bound vs FFD vs BFD vs naive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spotlake_binpack::{best_fit_decreasing, first_fit_decreasing, next_fit, BranchAndBound, Item};
use spotlake_collector::{PlannerStrategy, QueryPlanner};
use spotlake_types::Catalog;

/// Raw solver throughput on one realistic instance (a type supported in
/// many regions).
fn solver_single_instance(c: &mut Criterion) {
    let catalog = Catalog::aws_2022();
    let ty = catalog.instance_type_id("m5.large").expect("cataloged");
    let items: Vec<Item<u16>> = catalog
        .support_map(ty)
        .into_iter()
        .map(|(region, azs)| Item::new(region.0, azs.min(10)))
        .collect();

    let mut group = c.benchmark_group("binpack_single");
    group.bench_function("ffd", |b| {
        b.iter(|| first_fit_decreasing(std::hint::black_box(&items), 10).unwrap())
    });
    group.bench_function("bfd", |b| {
        b.iter(|| best_fit_decreasing(std::hint::black_box(&items), 10).unwrap())
    });
    group.bench_function("next_fit", |b| {
        b.iter(|| next_fit(std::hint::black_box(&items), 10).unwrap())
    });
    group.bench_function("exact", |b| {
        let solver = BranchAndBound::new();
        b.iter(|| solver.pack(std::hint::black_box(&items), 10).unwrap())
    });
    group.finish();
}

/// Full-catalog planning: all 547 types, per strategy.
fn full_catalog_plan(c: &mut Criterion) {
    let catalog = Catalog::aws_2022();
    let mut group = c.benchmark_group("binpack_full_catalog");
    group.sample_size(10);
    for strategy in PlannerStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, &strategy| {
                let planner = QueryPlanner::new(strategy);
                b.iter(|| planner.plan(std::hint::black_box(&catalog), None))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, solver_single_instance, full_catalog_plan);
criterion_main!(benches);
