//! Random-forest benches: training and inference at the Table 4 workload
//! size (≈ 500 cases × 15 features, 100 trees).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spotlake_ml::{Dataset, RandomForest};

fn table4_sized_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(7);
    let features: Vec<Vec<f64>> = (0..500)
        .map(|_| (0..15).map(|_| rng.gen_range(0.0..3.0)).collect())
        .collect();
    let labels: Vec<usize> = features
        .iter()
        .map(|row| {
            let s: f64 = row.iter().sum();
            if s > 25.0 {
                0
            } else if s > 20.0 {
                1
            } else {
                2
            }
        })
        .collect();
    Dataset::new(features, labels, 3).expect("uniform rows")
}

fn forest(c: &mut Criterion) {
    let data = table4_sized_dataset();
    let mut group = c.benchmark_group("forest");
    group.sample_size(10);
    group.bench_function("fit_100_trees", |b| {
        b.iter(|| RandomForest::default().fit(std::hint::black_box(&data), 42))
    });
    let fitted = RandomForest::default().fit(&data, 42);
    group.bench_function("predict_500_rows", |b| {
        b.iter(|| fitted.predict_all(std::hint::black_box(&data)))
    });
    group.finish();
}

criterion_group!(benches, forest);
criterion_main!(benches);
