//! Observability kernel benches: registry overhead on the hot path
//! (counter increments, histogram records) and the cost of a full
//! `/metrics` render, so instrumentation stays cheap relative to the
//! layers it measures.

use criterion::{criterion_group, criterion_main, Criterion};
use spotlake_obs::Registry;

/// A registry shaped like a busy collector's: a handful of families with
/// realistic label cardinality and populated histograms.
fn populated() -> Registry {
    let r = Registry::new();
    for dataset in ["sps", "advisor", "price"] {
        for i in 0..200u64 {
            r.counter_add(
                "spotlake_collector_records_total",
                "Records collected per dataset per round, summed.",
                &[("dataset", dataset)],
                i % 13,
            );
            r.histogram_record(
                "spotlake_collector_round_ops",
                "API operations spent per dataset per round.",
                &[("dataset", dataset)],
                (i % 97) as f64,
            );
        }
        r.gauge_set(
            "spotlake_collector_breaker_state",
            "Circuit-breaker state per dataset.",
            &[("dataset", dataset)],
            0.0,
        );
    }
    for path in ["/query", "/latest", "/metrics", "/health", "other"] {
        for i in 0..100u64 {
            r.histogram_record(
                "spotlake_http_response_bytes",
                "Response body size per endpoint.",
                &[("path", path)],
                (i * 37 % 4096) as f64,
            );
        }
    }
    r
}

fn registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_registry");

    let r = populated();
    group.bench_function("counter_add", |b| {
        b.iter(|| {
            r.counter_add(
                "spotlake_collector_records_total",
                "Records collected per dataset per round, summed.",
                &[("dataset", "sps")],
                1,
            )
        })
    });
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            r.histogram_record(
                "spotlake_collector_round_ops",
                "API operations spent per dataset per round.",
                &[("dataset", "sps")],
                42.0,
            )
        })
    });
    group.bench_function("render_full", |b| b.iter(|| r.render()));
    let extra = populated();
    group.bench_function("render_merged_2", |b| {
        b.iter(|| Registry::render_merged([&r, &extra]))
    });
    group.finish();
}

criterion_group!(benches, registry);
criterion_main!(benches);
