//! Observability kernel benches: registry overhead on the hot path
//! (counter increments, histogram records) and the cost of a full
//! `/metrics` render, so instrumentation stays cheap relative to the
//! layers it measures.

use criterion::{criterion_group, criterion_main, Criterion};
use spotlake_obs::{FlightEntry, FlightRecorder, QualityMonitor, Registry};

/// A registry shaped like a busy collector's: a handful of families with
/// realistic label cardinality and populated histograms.
fn populated() -> Registry {
    let r = Registry::new();
    for dataset in ["sps", "advisor", "price"] {
        for i in 0..200u64 {
            r.counter_add(
                "spotlake_collector_records_total",
                "Records collected per dataset per round, summed.",
                &[("dataset", dataset)],
                i % 13,
            );
            r.histogram_record(
                "spotlake_collector_round_ops",
                "API operations spent per dataset per round.",
                &[("dataset", dataset)],
                (i % 97) as f64,
            );
        }
        r.gauge_set(
            "spotlake_collector_breaker_state",
            "Circuit-breaker state per dataset.",
            &[("dataset", dataset)],
            0.0,
        );
    }
    for path in ["/query", "/latest", "/metrics", "/health", "other"] {
        for i in 0..100u64 {
            r.histogram_record(
                "spotlake_http_response_bytes",
                "Response body size per endpoint.",
                &[("path", path)],
                (i * 37 % 4096) as f64,
            );
        }
    }
    r
}

fn registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_registry");

    let r = populated();
    group.bench_function("counter_add", |b| {
        b.iter(|| {
            r.counter_add(
                "spotlake_collector_records_total",
                "Records collected per dataset per round, summed.",
                &[("dataset", "sps")],
                1,
            )
        })
    });
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            r.histogram_record(
                "spotlake_collector_round_ops",
                "API operations spent per dataset per round.",
                &[("dataset", "sps")],
                42.0,
            )
        })
    });
    group.bench_function("render_full", |b| b.iter(|| r.render()));
    let extra = populated();
    group.bench_function("render_merged_2", |b| {
        b.iter(|| Registry::render_merged([&r, &extra]))
    });
    group.bench_function("histogram_quantile", |b| {
        b.iter(|| r.histogram_quantile("spotlake_collector_round_ops", &[("dataset", "sps")], 0.99))
    });
    group.finish();
}

/// Per-query observability hot path: a flight-recorder insertion under a
/// full buffer, and one quality-monitor round over realistic key counts.
fn query_observability(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_query");

    let flight = FlightRecorder::new(32);
    let mut trace_id = 0u64;
    group.bench_function("flight_record_full_buffer", |b| {
        b.iter(|| {
            trace_id += 1;
            flight.record(FlightEntry {
                trace_id,
                request_id: trace_id,
                tick: trace_id,
                op: "query".to_owned(),
                query: "/query?table=sps&instance_type=m5.large".to_owned(),
                cost: trace_id * 37 % 4096,
                rows: 100,
                response_bytes: 8192,
            })
        })
    });

    // 50 types × 18 AZs per dataset — the aws_2022 catalog's scale.
    group.bench_function("quality_round_900_keys", |b| {
        let mut monitor = QualityMonitor::new(1);
        let keys: Vec<String> = (0..50)
            .flat_map(|t| (0..18).map(move |az| format!("m5.{t}:us-east-1{az}")))
            .collect();
        let mut tick = 0u64;
        b.iter(|| {
            tick += 1;
            for key in &keys {
                monitor.observe("sps", key, tick);
            }
            monitor.round_complete(tick);
        })
    });
    group.finish();
}

criterion_group!(benches, registry, query_observability);
criterion_main!(benches);
