//! Collector benches: one full collection round, and the DESIGN.md §5
//! scheduling ablation (exact-packed plan vs the naive per-region plan —
//! more queries per round and more accounts needed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spotlake_cloud_sim::{SimCloud, SimConfig};
use spotlake_collector::{CollectorConfig, CollectorService, FaultPlan, PlannerStrategy};
use spotlake_types::Catalog;

fn collection_round(c: &mut Criterion) {
    // A 1/8 slice of the catalog keeps a round in the millisecond range.
    let catalog = Catalog::aws_2022();
    let filter: Vec<String> = catalog
        .instance_types()
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 8 == 0)
        .map(|(_, t)| t.name())
        .collect();
    let mut cloud = SimCloud::new(catalog, SimConfig::default());
    cloud.step();

    let mut group = c.benchmark_group("collector_round");
    group.sample_size(10);
    for strategy in [PlannerStrategy::Exact, PlannerStrategy::Naive] {
        let config = CollectorConfig {
            strategy,
            type_filter: Some(filter.clone()),
            ..CollectorConfig::default()
        };
        let mut service = CollectorService::new(cloud.catalog(), config).expect("auto-sized pool");
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, _| b.iter(|| service.collect_once(&cloud).unwrap()),
        );
    }
    group.finish();
}

/// What resilience costs: a full round at increasing fault rates. The 0%
/// row is the overhead of merely having the retry/breaker machinery in the
/// path; the 5% and 20% rows add the retries and backoff bookkeeping that
/// real faults trigger.
fn collector_faults(c: &mut Criterion) {
    let catalog = Catalog::aws_2022();
    let filter: Vec<String> = catalog
        .instance_types()
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 8 == 0)
        .map(|(_, t)| t.name())
        .collect();
    let mut cloud = SimCloud::new(catalog, SimConfig::default());
    cloud.step();

    let mut group = c.benchmark_group("collector_faults");
    group.sample_size(10);
    for rate in [0.0_f64, 0.05, 0.20] {
        let config = CollectorConfig {
            type_filter: Some(filter.clone()),
            faults: Some(FaultPlan::uniform(20_220_901, rate)),
            ..CollectorConfig::default()
        };
        let mut service = CollectorService::new(cloud.catalog(), config).expect("auto-sized pool");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}pct", rate * 100.0)),
            &rate,
            |b, _| b.iter(|| service.collect_once(&cloud).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, collection_round, collector_faults);
criterion_main!(benches);
