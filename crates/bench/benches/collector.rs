//! Collector benches: one full collection round, and the DESIGN.md §5
//! scheduling ablation (exact-packed plan vs the naive per-region plan —
//! more queries per round and more accounts needed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spotlake_cloud_sim::{SimCloud, SimConfig};
use spotlake_collector::{CollectorConfig, CollectorService, PlannerStrategy};
use spotlake_types::Catalog;

fn collection_round(c: &mut Criterion) {
    // A 1/8 slice of the catalog keeps a round in the millisecond range.
    let catalog = Catalog::aws_2022();
    let filter: Vec<String> = catalog
        .instance_types()
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 8 == 0)
        .map(|(_, t)| t.name())
        .collect();
    let mut cloud = SimCloud::new(catalog, SimConfig::default());
    cloud.step();

    let mut group = c.benchmark_group("collector_round");
    group.sample_size(10);
    for strategy in [PlannerStrategy::Exact, PlannerStrategy::Naive] {
        let config = CollectorConfig {
            strategy,
            type_filter: Some(filter.clone()),
            ..CollectorConfig::default()
        };
        let mut service =
            CollectorService::new(cloud.catalog(), config).expect("auto-sized pool");
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, _| b.iter(|| service.collect_once(&cloud).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, collection_round);
criterion_main!(benches);
