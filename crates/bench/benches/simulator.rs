//! Simulator stepping cost: the full 547-type / 63-AZ cloud per tick, and
//! the score-query surface.

use criterion::{criterion_group, criterion_main, Criterion};
use spotlake_cloud_sim::{SimCloud, SimConfig};
use spotlake_types::Catalog;

fn step_full_catalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    let mut cloud = SimCloud::new(Catalog::aws_2022(), SimConfig::default());
    group.bench_function("step_full_catalog_tick", |b| b.iter(|| cloud.step()));

    let catalog = cloud.catalog().clone();
    let ty = catalog.instance_type_id("p3.2xlarge").unwrap();
    let az = catalog.az_id("us-east-1a").unwrap();
    let region = catalog.region_id("us-east-1").unwrap();
    group.bench_function("placement_score_az", |b| {
        b.iter(|| cloud.placement_score(std::hint::black_box(ty), az, 1))
    });
    group.bench_function("placement_score_region", |b| {
        b.iter(|| cloud.placement_score_region(std::hint::black_box(ty), region, 1))
    });
    let types: Vec<_> = ["m5.large", "c5.large", "r5.large"]
        .iter()
        .map(|n| catalog.instance_type_id(n).unwrap())
        .collect();
    group.bench_function("composite_score_3types", |b| {
        b.iter(|| cloud.composite_score(std::hint::black_box(&types), az, 1))
    });
    group.finish();
}

criterion_group!(benches, step_full_catalog);
criterion_main!(benches);
