//! Timestream substrate benches: ingest (dense vs change-point — the
//! DESIGN.md §5 storage ablation), range queries, windowed aggregation,
//! and the durability path (WAL append + crash recovery).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spotlake_timestream::{
    recover, Aggregate, Database, Query, Record, TableOptions, Wal, WriteMode,
};

fn records(n: usize, changing: bool) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let value = if changing { (i % 7) as f64 } else { 3.0 };
            Record::new(i as u64 * 600, "sps", value)
                .dimension("instance_type", format!("m5.{}", i % 50))
                .dimension("az", format!("us-east-1{}", (b'a' + (i % 6) as u8) as char))
        })
        .collect()
}

fn ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("timestream_ingest");
    let batch = records(10_000, true);
    let steady = records(10_000, false);

    group.bench_function("dense_10k", |b| {
        b.iter_batched(
            || {
                let mut db = Database::new();
                db.create_table("t", TableOptions::default()).unwrap();
                db
            },
            |mut db| db.write("t", &batch).unwrap(),
            BatchSize::LargeInput,
        )
    });
    // Change-point mode on a barely-changing series: most writes skipped —
    // the storage ablation for the sticky price/advisor datasets.
    group.bench_function("changepoint_10k_steady", |b| {
        b.iter_batched(
            || {
                let mut db = Database::new();
                db.create_table(
                    "t",
                    TableOptions {
                        mode: WriteMode::ChangePoint,
                        retention: None,
                    },
                )
                .unwrap();
                db
            },
            |mut db| db.write("t", &steady).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn query(c: &mut Criterion) {
    let mut db = Database::new();
    db.create_table("t", TableOptions::default()).unwrap();
    db.write("t", &records(100_000, true)).unwrap();

    let mut group = c.benchmark_group("timestream_query");
    let q = Query::measure("sps").filter("instance_type", "m5.7");
    group.bench_function("filtered_scan", |b| b.iter(|| db.query("t", &q).unwrap()));
    group.bench_function("windowed_mean", |b| {
        b.iter(|| db.query_window("t", &q, 86_400, Aggregate::Mean).unwrap())
    });
    group.bench_function("latest", |b| b.iter(|| db.latest("t", &q).unwrap()));
    // The profiled path tallies per-stage cost counters and records the
    // query histograms; benched against filtered_scan it bounds the
    // observability overhead on the hot read path.
    group.bench_function("filtered_scan_profiled", |b| {
        b.iter(|| {
            db.query_profiled("t", &q, spotlake_obs::QueryCtx::default())
                .unwrap()
        })
    });
    group.finish();
}

/// The durability tax and the recovery bill: one fsynced WAL append of a
/// 1k-record batch (what each committed dataset batch costs on top of
/// the in-memory write), and a full crash recovery replaying 20 such
/// frames from a cold directory.
fn durability(c: &mut Criterion) {
    let mut group = c.benchmark_group("timestream_durability");
    group.sample_size(20);
    let batch = records(1_000, true);
    let mut dir = std::env::temp_dir();
    dir.push(format!("spotlake-bench-wal-{}", std::process::id()));

    group.bench_function("wal_append_1k_fsync", |b| {
        b.iter_batched(
            || {
                std::fs::remove_dir_all(&dir).ok();
                Wal::open(&dir).unwrap()
            },
            |mut wal| {
                wal.append("t", TableOptions::default(), 1, &batch).unwrap();
                wal
            },
            BatchSize::LargeInput,
        )
    });

    std::fs::remove_dir_all(&dir).ok();
    let mut wal = Wal::open(&dir).unwrap();
    for tick in 1..=20u64 {
        wal.append("t", TableOptions::default(), tick, &batch)
            .unwrap();
    }
    drop(wal);
    group.bench_function("recover_20_frames_of_1k", |b| {
        b.iter(|| recover(&dir).unwrap())
    });
    std::fs::remove_dir_all(&dir).ok();
    group.finish();
}

criterion_group!(benches, ingest, query, durability);
criterion_main!(benches);
