//! Collector errors.

use spotlake_cloud_api::ApiError;
use spotlake_timestream::TsError;
use std::error::Error;
use std::fmt;

/// Errors from the collection pipeline.
#[derive(Debug)]
pub enum CollectError {
    /// The account pool cannot cover the query plan under the per-account
    /// unique-query limit.
    InsufficientAccounts {
        /// Accounts available.
        available: usize,
        /// Accounts the plan requires.
        needed: usize,
    },
    /// A cloud API call failed.
    Api(ApiError),
    /// A time-series store operation failed.
    Store(TsError),
}

impl fmt::Display for CollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectError::InsufficientAccounts { available, needed } => write!(
                f,
                "query plan needs {needed} accounts under the unique-query limit, only {available} available"
            ),
            CollectError::Api(e) => write!(f, "cloud api error: {e}"),
            CollectError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl Error for CollectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CollectError::Api(e) => Some(e),
            CollectError::Store(e) => Some(e),
            CollectError::InsufficientAccounts { .. } => None,
        }
    }
}

impl From<ApiError> for CollectError {
    fn from(e: ApiError) -> Self {
        CollectError::Api(e)
    }
}

impl From<TsError> for CollectError {
    fn from(e: TsError) -> Self {
        CollectError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CollectError::InsufficientAccounts {
            available: 1,
            needed: 45,
        };
        assert!(e.to_string().contains("45 accounts"));
        assert!(e.source().is_none());
        let e = CollectError::from(ApiError::BadPageToken);
        assert!(e.source().is_some());
    }
}
