//! The SpotLake data collector.
//!
//! "The spot data collector server periodically executes collection tasks
//! for different data sources" (paper Section 4). This crate is that
//! collector:
//!
//! * [`QueryPlanner`] turns the catalog's support matrix into the minimal
//!   set of placement-score queries via bin packing (Section 3.2 /
//!   Figure 1: 9,299 naive queries → ≈2,226 packed queries).
//! * [`AccountPool`] shards the plan across cloud accounts so that no
//!   account exceeds the 50-unique-queries/24 h limit.
//! * [`SpsCollector`], [`AdvisorCollector`], and [`PriceCollector`] pull
//!   the three datasets — the advisor via the *scraped web page*, since it
//!   has no API — and write them to [`spotlake_timestream`] tables.
//! * [`CollectorService`] wires everything together and runs the periodic
//!   collection loop.
//! * The resilience layer keeps that loop alive under transient faults:
//!   [`RetryPolicy`] caps in-round retries with exponential backoff,
//!   [`CircuitBreaker`] stops hammering a dataset that keeps failing,
//!   failed SPS queries are parked in a dead-letter queue for later
//!   rounds, and every round reports a [`RoundHealth`] record instead of
//!   sinking the round on the first error. Inject deterministic faults via
//!   [`CollectorConfig::faults`] (a re-exported [`FaultPlan`]).
//!
//! # Example
//!
//! ```
//! use spotlake_collector::{CollectorConfig, CollectorService};
//! use spotlake_cloud_sim::{SimCloud, SimConfig};
//! use spotlake_types::CatalogBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CatalogBuilder::new();
//! b.region("us-test-1", 2).instance_type("m5.large", 0.096);
//! let mut cloud = SimCloud::new(b.build()?, SimConfig::default());
//! let mut service = CollectorService::new(cloud.catalog(), CollectorConfig::default())?;
//! cloud.step();
//! let stats = service.collect_once(&cloud)?;
//! assert!(stats.records_written > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounts;
mod advisor_collector;
mod durability;
mod error;
mod health;
mod planner;
mod price_collector;
mod retry;
mod service;
mod sps_collector;

pub use accounts::AccountPool;
pub use advisor_collector::{AdvisorCollector, AdvisorOutcome};
pub use error::CollectError;
pub use health::{Dataset, DatasetHealth, DatasetStatus, RoundHealth};
pub use planner::{PlanStats, PlannedQuery, PlannerStrategy, QueryPlanner};
pub use price_collector::{PriceCollector, PriceOutcome};
pub use retry::{BreakerState, CircuitBreaker, RetryPolicy};
pub use service::{CollectStats, CollectorConfig, CollectorService, RoundReport};
pub use sps_collector::{FailedQuery, SpsCollector, SpsOutcome, SpsQueryOutcome};

// Re-exported so downstream crates (bench, CLI) can configure fault
// injection without a direct `spotlake-cloud-api` dependency.
pub use spotlake_cloud_api::FaultPlan;

// Re-exported so the CLI and pipeline can configure durability and read
// recovery/WAL state without a direct `spotlake-timestream` dependency.
pub use spotlake_timestream::{IoFaultPlan, RecoveryReport, WalStats};

/// Table name for placement scores.
pub const SPS_TABLE: &str = "sps";
/// Table name for advisor data (interruption-free score + savings).
pub const ADVISOR_TABLE: &str = "advisor";
/// Table name for spot prices.
pub const PRICE_TABLE: &str = "price";
