//! Account pooling.
//!
//! One account may issue at most 50 unique placement-score queries per 24
//! hours (Section 3.1), but repeating a counted query is free. SpotLake
//! therefore needs `ceil(plan size / 50)` accounts: each account owns a
//! fixed shard of the plan and re-issues the same queries every collection
//! tick.

use crate::error::CollectError;
use crate::planner::PlannedQuery;
use spotlake_cloud_api::{AccountId, UNIQUE_QUERY_LIMIT};

/// A pool of cloud accounts and the plan shards assigned to them.
#[derive(Debug, Clone)]
pub struct AccountPool {
    accounts: Vec<AccountId>,
}

impl AccountPool {
    /// Creates a pool of `n` research accounts named `research-0..n`.
    pub fn with_size(n: usize) -> Self {
        AccountPool {
            accounts: (0..n)
                .map(|i| AccountId::new(format!("research-{i}")))
                .collect(),
        }
    }

    /// Creates a pool from explicit account ids.
    pub fn from_accounts(accounts: Vec<AccountId>) -> Self {
        AccountPool { accounts }
    }

    /// Accounts in the pool.
    pub fn accounts(&self) -> &[AccountId] {
        &self.accounts
    }

    /// How many accounts a plan of `plan_len` unique queries needs.
    pub fn required_accounts(plan_len: usize) -> usize {
        plan_len.div_ceil(UNIQUE_QUERY_LIMIT)
    }

    /// Shards a plan across the pool: contiguous chunks of at most 50
    /// queries per account.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::InsufficientAccounts`] when the pool is too
    /// small for the plan.
    pub fn assign<'p>(
        &self,
        plan: &'p [PlannedQuery],
    ) -> Result<Vec<(AccountId, &'p [PlannedQuery])>, CollectError> {
        let needed = Self::required_accounts(plan.len());
        if needed > self.accounts.len() {
            return Err(CollectError::InsufficientAccounts {
                available: self.accounts.len(),
                needed,
            });
        }
        Ok(plan
            .chunks(UNIQUE_QUERY_LIMIT)
            .zip(&self.accounts)
            .map(|(chunk, account)| (account.clone(), chunk))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queries(n: usize) -> Vec<PlannedQuery> {
        (0..n)
            .map(|i| PlannedQuery {
                instance_type: format!("m5.{i}"),
                regions: vec!["us-test-1".into()],
                expected_results: 1,
            })
            .collect()
    }

    #[test]
    fn required_accounts_is_ceiling() {
        assert_eq!(AccountPool::required_accounts(0), 0);
        assert_eq!(AccountPool::required_accounts(1), 1);
        assert_eq!(AccountPool::required_accounts(50), 1);
        assert_eq!(AccountPool::required_accounts(51), 2);
        assert_eq!(AccountPool::required_accounts(2226), 45);
    }

    #[test]
    fn assign_shards_within_limit() {
        let pool = AccountPool::with_size(3);
        let plan = queries(120);
        let shards = pool.assign(&plan).unwrap();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].1.len(), 50);
        assert_eq!(shards[1].1.len(), 50);
        assert_eq!(shards[2].1.len(), 20);
        // Every query assigned exactly once, in order.
        let total: usize = shards.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, 120);
    }

    #[test]
    fn insufficient_accounts_rejected() {
        let pool = AccountPool::with_size(2);
        let plan = queries(150);
        assert!(matches!(
            pool.assign(&plan),
            Err(CollectError::InsufficientAccounts {
                available: 2,
                needed: 3
            })
        ));
    }

    #[test]
    fn custom_accounts() {
        let pool = AccountPool::from_accounts(vec![AccountId::new("alice")]);
        assert_eq!(pool.accounts().len(), 1);
        let plan = queries(5);
        let shards = pool.assign(&plan).unwrap();
        assert_eq!(shards[0].0.name(), "alice");
    }
}
