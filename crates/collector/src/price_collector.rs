//! The spot price collector.
//!
//! The price API already serves history, so this collector is incremental:
//! it remembers the end of its last window and asks only for newer change
//! events, batching instance types per request and following pagination
//! tokens.

use crate::error::CollectError;
use spotlake_cloud_api::{PriceClient, PriceRequest};
use spotlake_cloud_sim::SimCloud;
use spotlake_timestream::Record;
use spotlake_types::{SimDuration, SimTime};

/// Collects spot price-change events incrementally.
#[derive(Debug, Clone)]
pub struct PriceCollector {
    client: PriceClient,
    last_collected: Option<SimTime>,
    batch: usize,
    type_filter: Option<Vec<String>>,
}

impl Default for PriceCollector {
    fn default() -> Self {
        PriceCollector {
            client: PriceClient::new(),
            last_collected: None,
            batch: 50,
            type_filter: None,
        }
    }
}

impl PriceCollector {
    /// Creates a collector over all instance types.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts collection to the named instance types.
    pub fn with_type_filter(mut self, types: Vec<String>) -> Self {
        self.type_filter = Some(types);
        self
    }

    /// Collects price-change events since the previous call (or all
    /// retained history on the first call). Records carry the change
    /// timestamp, not the collection time.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Api`] on API failures.
    pub fn collect(&mut self, cloud: &SimCloud) -> Result<Vec<Record>, CollectError> {
        let catalog = cloud.catalog();
        let from = match self.last_collected {
            // Windows are inclusive; skip the instant we already covered.
            Some(t) => t + SimDuration::from_secs(1),
            None => SimTime::EPOCH,
        };
        let to = cloud.now();
        if from > to {
            return Ok(Vec::new());
        }

        let all_names: Vec<String> = match &self.type_filter {
            Some(f) => f.clone(),
            None => catalog.instance_types().iter().map(|t| t.name()).collect(),
        };

        let mut records = Vec::new();
        for chunk in all_names.chunks(self.batch) {
            let request = PriceRequest::new(chunk.to_vec(), from, to)?;
            let mut token: Option<String> = None;
            loop {
                let page =
                    self.client
                        .describe_spot_price_history(cloud, &request, token.as_deref())?;
                for p in page.records {
                    // The API pads the window start with the price already
                    // in effect; skip events we have already stored.
                    if p.timestamp < from {
                        continue;
                    }
                    let region = p
                        .availability_zone
                        .rsplit_once(|c: char| c.is_ascii_alphabetic())
                        .map(|_| &p.availability_zone[..p.availability_zone.len() - 1])
                        .unwrap_or(&p.availability_zone)
                        .to_owned();
                    records.push(
                        Record::new(p.timestamp.as_secs(), "spot_price", p.price.as_usd())
                            .dimension("instance_type", &p.instance_type)
                            .dimension("region", region)
                            .dimension("az", &p.availability_zone),
                    );
                }
                match page.next_token {
                    Some(t) => token = Some(t),
                    None => break,
                }
            }
        }
        self.last_collected = Some(to);
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_cloud_sim::SimConfig;
    use spotlake_types::CatalogBuilder;

    fn cloud() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 2).instance_type("m5.large", 0.096);
        SimCloud::new(b.build().unwrap(), SimConfig::default())
    }

    #[test]
    fn first_collect_gets_initial_prices() {
        let cloud = cloud();
        let mut c = PriceCollector::new();
        let records = c.collect(&cloud).unwrap();
        // Initial price per AZ pool.
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.measure == "spot_price"));
        assert_eq!(
            records[0].dimension_value("region"),
            Some("us-test-1"),
            "region derived from the AZ name"
        );
    }

    #[test]
    fn incremental_collection_returns_only_new_events() {
        let mut cloud = cloud();
        let mut c = PriceCollector::new();
        let first = c.collect(&cloud).unwrap();
        assert!(!first.is_empty());
        // No time has passed: nothing new.
        let nothing = c.collect(&cloud).unwrap();
        assert!(nothing.is_empty());
        // After a month, new change events (and only new ones) arrive.
        cloud.run_days(30);
        let second = c.collect(&cloud).unwrap();
        assert!(!second.is_empty());
        let first_max = first.iter().map(|r| r.time).max().unwrap();
        assert!(second.iter().all(|r| r.time > first_max));
    }

    #[test]
    fn type_filter_limits_scope() {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 1)
            .instance_type("m5.large", 0.096)
            .instance_type("c5.large", 0.085);
        let cloud = SimCloud::new(b.build().unwrap(), SimConfig::default());
        let mut c = PriceCollector::new().with_type_filter(vec!["c5.large".into()]);
        let records = c.collect(&cloud).unwrap();
        assert!(records
            .iter()
            .all(|r| r.dimension_value("instance_type") == Some("c5.large")));
        assert!(!records.is_empty());
    }
}
