//! The spot price collector.
//!
//! The price API already serves history, so this collector is incremental:
//! it remembers the end of its last window and asks only for newer change
//! events, batching instance types per request and following pagination
//! tokens. The watermark advances only after a fully successful sweep —
//! when a page fetch keeps failing, the round's price data is dropped
//! whole and the next round re-covers the same window, so faults cause
//! delay, never loss or partial double-collection.

use crate::error::CollectError;
use crate::retry::RetryPolicy;
use spotlake_cloud_api::{
    ApiError, FaultInjector, FaultPlan, FaultSurface, PriceClient, PriceRequest,
};
use spotlake_cloud_sim::SimCloud;
use spotlake_timestream::Record;
use spotlake_types::{SimDuration, SimTime};

/// Result of one price collection sweep.
#[derive(Debug, Clone, Default)]
pub struct PriceOutcome {
    /// Records collected since the previous successful sweep.
    pub records: Vec<Record>,
    /// Retry attempts spent beyond each page fetch's first call.
    pub retries: usize,
}

/// Collects spot price-change events incrementally.
#[derive(Debug, Clone)]
pub struct PriceCollector {
    client: PriceClient,
    last_collected: Option<SimTime>,
    batch: usize,
    type_filter: Option<Vec<String>>,
}

impl Default for PriceCollector {
    fn default() -> Self {
        PriceCollector {
            client: PriceClient::new(),
            last_collected: None,
            batch: 50,
            type_filter: None,
        }
    }
}

impl PriceCollector {
    /// Creates a collector over all instance types.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts collection to the named instance types.
    pub fn with_type_filter(mut self, types: Vec<String>) -> Self {
        self.type_filter = Some(types);
        self
    }

    /// Installs fault injection on the price client.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.client = PriceClient::new().with_faults(FaultInjector::new(plan));
    }

    /// Fault injections rolled by the price client, as
    /// `(surface, kind, count)`; empty without fault injection.
    pub fn fault_counts(&self) -> Vec<(FaultSurface, &'static str, u64)> {
        self.client.fault_counts()
    }

    /// Collects price-change events since the previous successful call (or
    /// all retained history on the first call), retrying each page fetch
    /// up to `policy.max_attempts`. Records carry the change timestamp,
    /// not the collection time.
    ///
    /// On failure the watermark does not advance and nothing is returned:
    /// the next sweep re-reads the same window from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Api`] when a page fetch exhausts its
    /// retries (retryable error — the caller may degrade the round) or
    /// fails outright (non-retryable — a caller bug).
    pub fn collect_with(
        &mut self,
        cloud: &SimCloud,
        policy: &RetryPolicy,
    ) -> Result<PriceOutcome, CollectError> {
        let catalog = cloud.catalog();
        let from = match self.last_collected {
            // Windows are inclusive; skip the instant we already covered.
            Some(t) => t + SimDuration::from_secs(1),
            None => SimTime::EPOCH,
        };
        let to = cloud.now();
        let mut outcome = PriceOutcome::default();
        if from > to {
            return Ok(outcome);
        }

        let all_names: Vec<String> = match &self.type_filter {
            Some(f) => f.clone(),
            None => catalog.instance_types().iter().map(|t| t.name()).collect(),
        };

        for chunk in all_names.chunks(self.batch) {
            let request = PriceRequest::new(chunk.to_vec(), from, to)?;
            let mut token: Option<String> = None;
            loop {
                let page = fetch_page_with_retry(
                    &mut self.client,
                    cloud,
                    &request,
                    token.as_deref(),
                    policy,
                    &mut outcome.retries,
                )?;
                for p in page.records {
                    // The API pads the window start with the price already
                    // in effect; skip events we have already stored.
                    if p.timestamp < from {
                        continue;
                    }
                    let region = p
                        .availability_zone
                        .rsplit_once(|c: char| c.is_ascii_alphabetic())
                        .map(|_| &p.availability_zone[..p.availability_zone.len() - 1])
                        .unwrap_or(&p.availability_zone)
                        .to_owned();
                    outcome.records.push(
                        Record::new(p.timestamp.as_secs(), "spot_price", p.price.as_usd())
                            .dimension("instance_type", &p.instance_type)
                            .dimension("region", region)
                            .dimension("az", &p.availability_zone),
                    );
                }
                match page.next_token {
                    Some(t) => token = Some(t),
                    None => break,
                }
            }
        }
        self.last_collected = Some(to);
        Ok(outcome)
    }

    /// Collects with the default retry policy, returning records only.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Api`] on API failures.
    pub fn collect(&mut self, cloud: &SimCloud) -> Result<Vec<Record>, CollectError> {
        Ok(self.collect_with(cloud, &RetryPolicy::default())?.records)
    }
}

fn fetch_page_with_retry(
    client: &mut PriceClient,
    cloud: &SimCloud,
    request: &PriceRequest,
    token: Option<&str>,
    policy: &RetryPolicy,
    retries: &mut usize,
) -> Result<spotlake_cloud_api::PricePage, ApiError> {
    let mut attempt = 0;
    loop {
        attempt += 1;
        match client.describe_spot_price_history(cloud, request, token) {
            Ok(page) => return Ok(page),
            Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                *retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_cloud_sim::SimConfig;
    use spotlake_types::CatalogBuilder;

    fn cloud() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 2).instance_type("m5.large", 0.096);
        SimCloud::new(b.build().unwrap(), SimConfig::default())
    }

    #[test]
    fn first_collect_gets_initial_prices() {
        let cloud = cloud();
        let mut c = PriceCollector::new();
        let records = c.collect(&cloud).unwrap();
        // Initial price per AZ pool.
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.measure == "spot_price"));
        assert_eq!(
            records[0].dimension_value("region"),
            Some("us-test-1"),
            "region derived from the AZ name"
        );
    }

    #[test]
    fn incremental_collection_returns_only_new_events() {
        let mut cloud = cloud();
        let mut c = PriceCollector::new();
        let first = c.collect(&cloud).unwrap();
        assert!(!first.is_empty());
        // No time has passed: nothing new.
        let nothing = c.collect(&cloud).unwrap();
        assert!(nothing.is_empty());
        // After a month, new change events (and only new ones) arrive.
        cloud.run_days(30);
        let second = c.collect(&cloud).unwrap();
        assert!(!second.is_empty());
        let first_max = first.iter().map(|r| r.time).max().unwrap();
        assert!(second.iter().all(|r| r.time > first_max));
    }

    #[test]
    fn type_filter_limits_scope() {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 1)
            .instance_type("m5.large", 0.096)
            .instance_type("c5.large", 0.085);
        let cloud = SimCloud::new(b.build().unwrap(), SimConfig::default());
        let mut c = PriceCollector::new().with_type_filter(vec!["c5.large".into()]);
        let records = c.collect(&cloud).unwrap();
        assert!(records
            .iter()
            .all(|r| r.dimension_value("instance_type") == Some("c5.large")));
        assert!(!records.is_empty());
    }

    #[test]
    fn failed_sweep_keeps_the_watermark_so_nothing_is_lost() {
        let mut cloud = cloud();
        let mut faulty = PriceCollector::new();
        // Rate 1.0: every attempt fails, the sweep errors out.
        faulty.set_fault_plan(FaultPlan::uniform(23, 1.0));
        let policy = RetryPolicy::default();
        cloud.run_days(2);
        let err = faulty.collect_with(&cloud, &policy).unwrap_err();
        assert!(matches!(err, CollectError::Api(e) if e.is_retryable()));
        // Heal the network; the full window arrives on the next sweep.
        faulty.set_fault_plan(FaultPlan::none(23));
        let healed = faulty.collect_with(&cloud, &policy).unwrap();
        let mut clean = PriceCollector::new();
        let expected = clean.collect(&cloud).unwrap();
        assert_eq!(healed.records, expected);
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        let mut cloud = cloud();
        let mut c = PriceCollector::new();
        // Low enough that three attempts nearly always find a gap.
        c.set_fault_plan(FaultPlan::uniform(31, 0.3));
        let policy = RetryPolicy::default();
        let mut retries = 0;
        let mut records = 0;
        for _ in 0..20 {
            cloud.run_days(1);
            if let Ok(o) = c.collect_with(&cloud, &policy) {
                retries += o.retries;
                records += o.records.len();
            }
        }
        assert!(retries > 0, "a 30% fault rate must trigger retries");
        assert!(records > 0);
    }
}
