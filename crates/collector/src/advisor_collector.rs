//! The spot instance advisor collector.
//!
//! The advisor has no API, so this collector fetches the advisor *web
//! page* and scrapes its embedded JSON — the paper used the `spotinfo`
//! tool for exactly this (Section 4). Each scraped row yields two records:
//! the interruption-free score (the paper's numeric conversion of the
//! bucket) and the savings percentage. Scraping a website is the flakiest
//! leg of the pipeline — pages arrive truncated or garbled — so fetches
//! are retried in-round before the round is declared degraded.

use crate::error::CollectError;
use crate::retry::RetryPolicy;
use spotlake_cloud_api::{AdvisorClient, FaultInjector, FaultPlan, FaultSurface};
use spotlake_cloud_sim::SimCloud;
use spotlake_timestream::Record;

/// Result of one advisor collection pass.
#[derive(Debug, Clone, Default)]
pub struct AdvisorOutcome {
    /// Records scraped from the page.
    pub records: Vec<Record>,
    /// Retry attempts spent beyond the first fetch.
    pub retries: usize,
}

/// Collects the advisor dataset by scraping the advisor page.
#[derive(Debug, Clone, Default)]
pub struct AdvisorCollector {
    client: AdvisorClient,
    type_filter: Option<Vec<String>>,
}

impl AdvisorCollector {
    /// Creates a collector over all instance types on the page.
    pub fn new() -> Self {
        AdvisorCollector::default()
    }

    /// Restricts collection to the named instance types (the page always
    /// carries everything; the filter drops rows after scraping).
    pub fn with_type_filter(mut self, types: Vec<String>) -> Self {
        self.type_filter = Some(types);
        self
    }

    /// Installs fault injection on the page client.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.client = AdvisorClient::new().with_faults(FaultInjector::new(plan));
    }

    /// Fault injections rolled by the page client, as
    /// `(surface, kind, count)`; empty without fault injection.
    pub fn fault_counts(&self) -> Vec<(FaultSurface, &'static str, u64)> {
        self.client.fault_counts()
    }

    /// Fetches and scrapes the advisor page with in-round retries,
    /// returning `if_score` and `savings` records per (instance type,
    /// region), stamped with the cloud's current time.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Api`] when every attempt fails — a
    /// truncated or corrupted page counts as retryable, so the caller may
    /// degrade the round rather than abort it.
    pub fn collect_with(
        &mut self,
        cloud: &SimCloud,
        policy: &RetryPolicy,
    ) -> Result<AdvisorOutcome, CollectError> {
        let mut outcome = AdvisorOutcome::default();
        let mut attempt = 0;
        let rows = loop {
            attempt += 1;
            match self.client.fetch(cloud) {
                Ok(rows) => break rows,
                Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                    outcome.retries += 1;
                }
                Err(e) => return Err(e.into()),
            }
        };
        let now = cloud.now().as_secs();
        outcome.records.reserve(rows.len() * 2);
        for row in rows {
            if let Some(filter) = &self.type_filter {
                if !filter.contains(&row.instance_type) {
                    continue;
                }
            }
            let score = row.bucket.interruption_free_score().as_f64();
            outcome.records.push(
                Record::new(now, "if_score", score)
                    .dimension("instance_type", &row.instance_type)
                    .dimension("region", &row.region),
            );
            outcome.records.push(
                Record::new(now, "savings", f64::from(row.savings.percent()))
                    .dimension("instance_type", &row.instance_type)
                    .dimension("region", &row.region),
            );
        }
        Ok(outcome)
    }

    /// Collects with the default retry policy, returning records only.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Api`] when the page cannot be scraped.
    pub fn collect(&mut self, cloud: &SimCloud) -> Result<Vec<Record>, CollectError> {
        Ok(self.collect_with(cloud, &RetryPolicy::default())?.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_cloud_sim::SimConfig;
    use spotlake_types::CatalogBuilder;

    fn cloud() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 2)
            .region("eu-test-1", 2)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        SimCloud::new(b.build().unwrap(), SimConfig::default())
    }

    #[test]
    fn collects_two_records_per_pair() {
        let cloud = cloud();
        let records = AdvisorCollector::new().collect(&cloud).unwrap();
        // 2 types × 2 regions × 2 measures.
        assert_eq!(records.len(), 8);
        let if_scores: Vec<_> = records.iter().filter(|r| r.measure == "if_score").collect();
        assert_eq!(if_scores.len(), 4);
        for r in if_scores {
            assert!([1.0, 1.5, 2.0, 2.5, 3.0].contains(&r.value));
        }
        let savings: Vec<_> = records.iter().filter(|r| r.measure == "savings").collect();
        for r in savings {
            assert!((0.0..100.0).contains(&r.value));
        }
    }

    #[test]
    fn retries_absorb_flaky_fetches_or_degrade_cleanly() {
        let mut cloud = cloud();
        let mut c = AdvisorCollector::new();
        c.set_fault_plan(FaultPlan::uniform(41, 0.4));
        let policy = RetryPolicy::default();
        let mut retries = 0;
        let mut successes = 0;
        let mut failures = 0;
        for _ in 0..30 {
            cloud.step();
            match c.collect_with(&cloud, &policy) {
                Ok(o) => {
                    successes += 1;
                    retries += o.retries;
                    assert_eq!(o.records.len(), 8);
                }
                Err(CollectError::Api(e)) => {
                    assert!(e.is_retryable(), "only exhausted transients may surface");
                    failures += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(successes > failures, "retries should win most rounds");
        assert!(retries > 0);
    }
}
