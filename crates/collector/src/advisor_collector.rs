//! The spot instance advisor collector.
//!
//! The advisor has no API, so this collector fetches the advisor *web
//! page* and scrapes its embedded JSON — the paper used the `spotinfo`
//! tool for exactly this (Section 4). Each scraped row yields two records:
//! the interruption-free score (the paper's numeric conversion of the
//! bucket) and the savings percentage.

use crate::error::CollectError;
use spotlake_cloud_api::AdvisorPage;
use spotlake_cloud_sim::SimCloud;
use spotlake_timestream::Record;

/// Collects the advisor dataset by scraping the advisor page.
#[derive(Debug, Clone, Default)]
pub struct AdvisorCollector {
    type_filter: Option<Vec<String>>,
}

impl AdvisorCollector {
    /// Creates a collector over all instance types on the page.
    pub fn new() -> Self {
        AdvisorCollector::default()
    }

    /// Restricts collection to the named instance types (the page always
    /// carries everything; the filter drops rows after scraping).
    pub fn with_type_filter(mut self, types: Vec<String>) -> Self {
        self.type_filter = Some(types);
        self
    }

    /// Fetches and scrapes the advisor page, returning `if_score` and
    /// `savings` records per (instance type, region), stamped with the
    /// cloud's current time.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Api`] when the page cannot be scraped.
    pub fn collect(&self, cloud: &SimCloud) -> Result<Vec<Record>, CollectError> {
        let page = AdvisorPage::render(cloud);
        let rows = AdvisorPage::scrape(&page)?;
        let now = cloud.now().as_secs();
        let mut records = Vec::with_capacity(rows.len() * 2);
        for row in rows {
            if let Some(filter) = &self.type_filter {
                if !filter.contains(&row.instance_type) {
                    continue;
                }
            }
            let score = row.bucket.interruption_free_score().as_f64();
            records.push(
                Record::new(now, "if_score", score)
                    .dimension("instance_type", &row.instance_type)
                    .dimension("region", &row.region),
            );
            records.push(
                Record::new(now, "savings", f64::from(row.savings.percent()))
                    .dimension("instance_type", &row.instance_type)
                    .dimension("region", &row.region),
            );
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_cloud_sim::SimConfig;
    use spotlake_types::CatalogBuilder;

    #[test]
    fn collects_two_records_per_pair() {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 2)
            .region("eu-test-1", 2)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        let cloud = SimCloud::new(b.build().unwrap(), SimConfig::default());
        let records = AdvisorCollector::new().collect(&cloud).unwrap();
        // 2 types × 2 regions × 2 measures.
        assert_eq!(records.len(), 8);
        let if_scores: Vec<_> = records.iter().filter(|r| r.measure == "if_score").collect();
        assert_eq!(if_scores.len(), 4);
        for r in if_scores {
            assert!([1.0, 1.5, 2.0, 2.5, 3.0].contains(&r.value));
        }
        let savings: Vec<_> = records.iter().filter(|r| r.measure == "savings").collect();
        for r in savings {
            assert!((0.0..100.0).contains(&r.value));
        }
    }
}
