//! The collection service: planning, scheduling, storage wiring, and the
//! resilience machinery that keeps rounds flowing under transient faults.
//!
//! Each of the three datasets is isolated: an advisor outage degrades the
//! round instead of discarding the SPS and price data collected alongside
//! it. Transient failures are retried in-round; datasets that keep failing
//! trip a per-dataset circuit breaker; SPS queries that exhaust their
//! retries are parked in a dead-letter queue and re-attempted in later
//! rounds with exponential backoff (re-issuing a known fingerprint is free
//! under the 50-unique-queries budget).

use crate::accounts::AccountPool;
use crate::advisor_collector::AdvisorCollector;
use crate::error::CollectError;
use crate::health::{Dataset, DatasetStatus, RoundHealth};
use crate::planner::{PlanStats, PlannerStrategy, QueryPlanner};
use crate::price_collector::PriceCollector;
use crate::retry::{CircuitBreaker, RetryPolicy};
use crate::sps_collector::SpsCollector;
use crate::{ADVISOR_TABLE, PRICE_TABLE, SPS_TABLE};
use spotlake_cloud_api::FaultPlan;
use spotlake_cloud_sim::SimCloud;
use spotlake_timestream::{Database, Record, TableOptions, TsError, WriteMode};
use spotlake_types::Catalog;
use std::collections::HashSet;

/// Re-attempts per dead-lettered query before it is dropped for good.
const DEAD_LETTER_MAX_ATTEMPTS: u32 = 5;

/// Collector configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Packing strategy for the query plan.
    pub strategy: PlannerStrategy,
    /// Size of the account pool; `None` sizes it to exactly cover the plan.
    pub accounts: Option<usize>,
    /// Target capacity used in placement-score queries.
    pub target_capacity: u32,
    /// Restrict collection to these instance type names (`None` = all).
    pub type_filter: Option<Vec<String>>,
    /// Collect the placement-score dataset.
    pub collect_sps: bool,
    /// Collect the advisor dataset.
    pub collect_advisor: bool,
    /// Collect the price dataset.
    pub collect_price: bool,
    /// Deterministic fault injection; `None` (the default) leaves every
    /// API surface and the store untouched.
    pub faults: Option<FaultPlan>,
    /// Retry budget and backoff schedule.
    pub retry: RetryPolicy,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            strategy: PlannerStrategy::default(),
            accounts: None,
            target_capacity: 1,
            type_filter: None,
            collect_sps: true,
            collect_advisor: true,
            collect_price: true,
            faults: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// Counters from collection rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Placement-score records written.
    pub sps_records: usize,
    /// Advisor records written (score + savings).
    pub advisor_records: usize,
    /// Price-change records written.
    pub price_records: usize,
    /// Total records actually stored (change-point tables skip repeats).
    pub records_written: usize,
    /// Placement-score queries issued.
    pub queries_issued: usize,
    /// Collection rounds executed.
    pub rounds: usize,
    /// Retry attempts spent across all datasets and store writes.
    pub retries: usize,
    /// Operations that failed even after retries (SPS queries, advisor
    /// fetches, price sweeps).
    pub queries_failed: usize,
    /// Rounds in which at least one dataset fell short.
    pub degraded_rounds: usize,
    /// SPS queries newly parked in the dead-letter queue.
    pub dead_lettered: usize,
}

impl CollectStats {
    fn absorb(&mut self, other: CollectStats) {
        self.sps_records += other.sps_records;
        self.advisor_records += other.advisor_records;
        self.price_records += other.price_records;
        self.records_written += other.records_written;
        self.queries_issued += other.queries_issued;
        self.rounds += other.rounds;
        self.retries += other.retries;
        self.queries_failed += other.queries_failed;
        self.degraded_rounds += other.degraded_rounds;
        self.dead_lettered += other.dead_lettered;
    }
}

/// One round's result: the counters plus the structured health record.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// The round's counters.
    pub stats: CollectStats,
    /// What happened per dataset.
    pub health: RoundHealth,
}

/// A persistently failing SPS query parked for later re-attempts.
#[derive(Debug, Clone)]
struct DeadLetter {
    shard: usize,
    query: usize,
    attempts: u32,
    eligible_at: u64,
}

/// The SpotLake collection service: owns the archive database, the three
/// dataset collectors, and the resilience state (retry policy, breakers,
/// dead-letter queue).
#[derive(Debug)]
pub struct CollectorService {
    db: Database,
    sps: Option<SpsCollector>,
    advisor: Option<AdvisorCollector>,
    price: Option<PriceCollector>,
    plan_stats: PlanStats,
    policy: RetryPolicy,
    sps_breaker: CircuitBreaker,
    advisor_breaker: CircuitBreaker,
    price_breaker: CircuitBreaker,
    dead_letters: Vec<DeadLetter>,
    /// Price records collected but not yet durably stored (the store
    /// throttled the write); flushed with the next successful sweep so a
    /// storage hiccup delays price data instead of losing it.
    pending_price: Vec<Record>,
    last_health: Option<RoundHealth>,
}

impl CollectorService {
    /// Plans queries for `catalog`, sizes the account pool, and creates the
    /// archive tables.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::InsufficientAccounts`] when an explicit
    /// account pool is too small for the plan, or [`CollectError::Store`]
    /// if the archive tables cannot be created.
    pub fn new(catalog: &Catalog, config: CollectorConfig) -> Result<Self, CollectError> {
        let planner = QueryPlanner::new(config.strategy);
        let (plan, plan_stats) = planner.plan_with_stats(catalog, config.type_filter.as_deref());

        let mut sps = if config.collect_sps {
            let pool_size = config
                .accounts
                .unwrap_or_else(|| AccountPool::required_accounts(plan.len()));
            let pool = AccountPool::with_size(pool_size);
            Some(SpsCollector::new(plan, &pool, config.target_capacity)?)
        } else {
            None
        };
        let mut advisor = config.collect_advisor.then(|| {
            let c = AdvisorCollector::new();
            match &config.type_filter {
                Some(f) => c.with_type_filter(f.clone()),
                None => c,
            }
        });
        let mut price = config.collect_price.then(|| {
            let c = PriceCollector::new();
            match &config.type_filter {
                Some(f) => c.with_type_filter(f.clone()),
                None => c,
            }
        });

        let mut db = Database::new();
        db.create_table(
            SPS_TABLE,
            TableOptions {
                mode: WriteMode::Dense,
                retention: None,
            },
        )?;
        db.create_table(
            ADVISOR_TABLE,
            TableOptions {
                mode: WriteMode::ChangePoint,
                retention: None,
            },
        )?;
        db.create_table(
            PRICE_TABLE,
            TableOptions {
                mode: WriteMode::ChangePoint,
                retention: None,
            },
        )?;

        if let Some(plan) = config.faults.filter(|p| !p.is_zero()) {
            if let Some(s) = &mut sps {
                s.set_fault_plan(plan);
            }
            if let Some(a) = &mut advisor {
                a.set_fault_plan(plan);
            }
            if let Some(p) = &mut price {
                p.set_fault_plan(plan);
            }
            db.set_write_faults(plan.write_rate, plan.seed);
        }

        Ok(CollectorService {
            db,
            sps,
            advisor,
            price,
            plan_stats,
            policy: config.retry,
            sps_breaker: CircuitBreaker::new(3, 8),
            advisor_breaker: CircuitBreaker::new(3, 8),
            price_breaker: CircuitBreaker::new(3, 8),
            dead_letters: Vec::new(),
            pending_price: Vec::new(),
            last_health: None,
        })
    }

    /// The query plan's statistics (Figure 1's headline numbers).
    pub fn plan_stats(&self) -> PlanStats {
        self.plan_stats
    }

    /// The archive database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the archive database.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Consumes the service, returning the archive.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// The health record of the most recent round, if any ran.
    pub fn last_health(&self) -> Option<&RoundHealth> {
        self.last_health.as_ref()
    }

    /// Current dead-letter queue depth.
    pub fn dead_letter_depth(&self) -> usize {
        self.dead_letters.len()
    }

    /// Forces a dataset's circuit breaker open at `tick` — the operator
    /// kill switch (and the chaos tests' lever). The dataset is skipped
    /// until the breaker's cooldown elapses.
    pub fn force_breaker_open(&mut self, dataset: Dataset, tick: u64) {
        self.breaker_mut(dataset).force_open(tick);
    }

    fn breaker_mut(&mut self, dataset: Dataset) -> &mut CircuitBreaker {
        match dataset {
            Dataset::Sps => &mut self.sps_breaker,
            Dataset::Advisor => &mut self.advisor_breaker,
            Dataset::Price => &mut self.price_breaker,
        }
    }

    /// Runs one collection round against the cloud's current state,
    /// returning both counters and the round's health record.
    ///
    /// Transient trouble — injected or otherwise — degrades the round:
    /// whatever was collected is stored and the shortfall is recorded in
    /// [`RoundHealth`]. Only non-retryable errors (invalid parameters,
    /// unknown entities, a blown query budget, schema-level store errors)
    /// return `Err`, because those are bugs rather than weather.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] only for the non-retryable class above.
    pub fn collect_round(&mut self, cloud: &SimCloud) -> Result<RoundReport, CollectError> {
        let tick = cloud.ticks();
        let mut stats = CollectStats {
            rounds: 1,
            ..CollectStats::default()
        };
        let mut health = RoundHealth {
            tick,
            ..RoundHealth::default()
        };

        self.collect_sps_dataset(cloud, tick, &mut stats, &mut health)?;
        self.collect_advisor_dataset(cloud, tick, &mut stats, &mut health)?;
        self.collect_price_dataset(cloud, tick, &mut stats, &mut health)?;

        health.dead_letter_depth = self.dead_letters.len();
        stats.retries = health.sps.retries + health.advisor.retries + health.price.retries;
        stats.queries_failed =
            health.sps.failed_queries + health.advisor.failed_queries + health.price.failed_queries;
        if health.is_degraded() {
            stats.degraded_rounds = 1;
        }
        self.last_health = Some(health.clone());
        Ok(RoundReport { stats, health })
    }

    fn collect_sps_dataset(
        &mut self,
        cloud: &SimCloud,
        tick: u64,
        stats: &mut CollectStats,
        health: &mut RoundHealth,
    ) -> Result<(), CollectError> {
        let Some(sps) = &mut self.sps else {
            return Ok(());
        };
        if !self.sps_breaker.allow(tick) {
            health.sps.status = DatasetStatus::Skipped;
            return Ok(());
        }

        let mut outcome = sps.collect_with(cloud, &self.policy)?;
        stats.queries_issued = sps.query_count();
        health.sps.retries = outcome.retries;

        // Which plan slots are failing *right now*. Dead letters whose
        // query recovered in this regular pass are satisfied and dropped;
        // the rest are re-attempted once their backoff elapses.
        let mut failing: HashSet<(usize, usize)> =
            outcome.failed.iter().map(|f| (f.shard, f.query)).collect();
        health.sps.error = outcome.failed.first().map(|f| f.error.to_string());
        self.dead_letters
            .retain(|d| failing.contains(&(d.shard, d.query)));

        let policy = self.policy;
        let mut recovered = Vec::new();
        for d in &mut self.dead_letters {
            if d.eligible_at > tick {
                continue;
            }
            let res = sps.retry_query(cloud, d.shard, d.query, &policy);
            health.sps.retries += res.retries + 1;
            match res.error {
                None => {
                    outcome.records.extend(res.records);
                    failing.remove(&(d.shard, d.query));
                    recovered.push((d.shard, d.query));
                }
                Some(e) => {
                    d.attempts += 1;
                    let scope = format!("dlq/{}/{}", d.shard, d.query);
                    d.eligible_at = tick + policy.backoff_ticks(&scope, d.attempts);
                    if !e.is_retryable() || d.attempts >= DEAD_LETTER_MAX_ATTEMPTS {
                        recovered.push((d.shard, d.query)); // dropped below
                    }
                }
            }
        }
        self.dead_letters
            .retain(|d| !recovered.contains(&(d.shard, d.query)));

        // Park this round's fresh failures.
        for f in &outcome.failed {
            let key = (f.shard, f.query);
            if !failing.contains(&key) {
                continue; // recovered via the dead-letter pass above
            }
            if self.dead_letters.iter().any(|d| (d.shard, d.query) == key) {
                continue;
            }
            let scope = format!("dlq/{}/{}", f.shard, f.query);
            self.dead_letters.push(DeadLetter {
                shard: f.shard,
                query: f.query,
                attempts: 1,
                eligible_at: tick + self.policy.backoff_ticks(&scope, 1),
            });
            stats.dead_lettered += 1;
        }
        health.sps.failed_queries = failing.len();

        match write_with_retry(
            &mut self.db,
            SPS_TABLE,
            &outcome.records,
            &self.policy,
            &mut health.sps.retries,
        ) {
            Ok(written) => {
                stats.sps_records = outcome.records.len();
                stats.records_written += written;
                health.sps.records = outcome.records.len();
                if outcome.records.is_empty() && !failing.is_empty() {
                    health.sps.status = DatasetStatus::Failed;
                    self.sps_breaker.record_failure(tick);
                } else if !failing.is_empty() || health.sps.retries > 0 {
                    health.sps.status = DatasetStatus::Degraded;
                    self.sps_breaker.record_success();
                } else {
                    health.sps.status = DatasetStatus::Ok;
                    self.sps_breaker.record_success();
                }
            }
            Err(e) if e.is_retryable() => {
                // The store refused the whole batch: a gap in the dense
                // series this round.
                health.sps.status = DatasetStatus::Failed;
                health.sps.error = Some(e.to_string());
                self.sps_breaker.record_failure(tick);
            }
            Err(e) => return Err(e.into()),
        }
        Ok(())
    }

    fn collect_advisor_dataset(
        &mut self,
        cloud: &SimCloud,
        tick: u64,
        stats: &mut CollectStats,
        health: &mut RoundHealth,
    ) -> Result<(), CollectError> {
        let Some(advisor) = &mut self.advisor else {
            return Ok(());
        };
        if !self.advisor_breaker.allow(tick) {
            health.advisor.status = DatasetStatus::Skipped;
            return Ok(());
        }
        match advisor.collect_with(cloud, &self.policy) {
            Ok(outcome) => {
                health.advisor.retries = outcome.retries;
                match write_with_retry(
                    &mut self.db,
                    ADVISOR_TABLE,
                    &outcome.records,
                    &self.policy,
                    &mut health.advisor.retries,
                ) {
                    Ok(written) => {
                        stats.advisor_records = outcome.records.len();
                        stats.records_written += written;
                        health.advisor.records = outcome.records.len();
                        health.advisor.status = if health.advisor.retries > 0 {
                            DatasetStatus::Degraded
                        } else {
                            DatasetStatus::Ok
                        };
                        self.advisor_breaker.record_success();
                    }
                    Err(e) if e.is_retryable() => {
                        // Change-point table: the next successful round
                        // re-delivers the current state, so nothing is
                        // lost for good.
                        health.advisor.status = DatasetStatus::Failed;
                        health.advisor.failed_queries = 1;
                        health.advisor.error = Some(e.to_string());
                        self.advisor_breaker.record_failure(tick);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            Err(CollectError::Api(e)) if e.is_retryable() => {
                health.advisor.status = DatasetStatus::Failed;
                health.advisor.failed_queries = 1;
                health.advisor.retries = self.policy.max_attempts.saturating_sub(1) as usize;
                health.advisor.error = Some(e.to_string());
                self.advisor_breaker.record_failure(tick);
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }

    fn collect_price_dataset(
        &mut self,
        cloud: &SimCloud,
        tick: u64,
        stats: &mut CollectStats,
        health: &mut RoundHealth,
    ) -> Result<(), CollectError> {
        let Some(price) = &mut self.price else {
            return Ok(());
        };
        if !self.price_breaker.allow(tick) {
            health.price.status = DatasetStatus::Skipped;
            return Ok(());
        }
        match price.collect_with(cloud, &self.policy) {
            Ok(outcome) => {
                health.price.retries = outcome.retries;
                // Older, previously unwritable records go first.
                let mut records = std::mem::take(&mut self.pending_price);
                records.extend(outcome.records);
                match write_with_retry(
                    &mut self.db,
                    PRICE_TABLE,
                    &records,
                    &self.policy,
                    &mut health.price.retries,
                ) {
                    Ok(written) => {
                        stats.price_records = records.len();
                        stats.records_written += written;
                        health.price.records = records.len();
                        health.price.status = if health.price.retries > 0 {
                            DatasetStatus::Degraded
                        } else {
                            DatasetStatus::Ok
                        };
                        self.price_breaker.record_success();
                    }
                    Err(e) if e.is_retryable() => {
                        // Buffer instead of dropping: the sweep succeeded
                        // and the watermark advanced, so these records
                        // exist nowhere else.
                        self.pending_price = records;
                        health.price.status = DatasetStatus::Failed;
                        health.price.failed_queries = 1;
                        health.price.error = Some(e.to_string());
                        self.price_breaker.record_failure(tick);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            Err(CollectError::Api(e)) if e.is_retryable() => {
                // The watermark did not advance: the next sweep re-covers
                // this window, so faults delay price data, never lose it.
                health.price.status = DatasetStatus::Failed;
                health.price.failed_queries = 1;
                health.price.error = Some(e.to_string());
                self.price_breaker.record_failure(tick);
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }

    /// Runs one collection round against the cloud's current state.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] only for non-retryable failures; see
    /// [`CollectorService::collect_round`].
    pub fn collect_once(&mut self, cloud: &SimCloud) -> Result<CollectStats, CollectError> {
        Ok(self.collect_round(cloud)?.stats)
    }

    /// Steps the cloud and collects, `rounds` times — the periodic
    /// collection loop of Section 4.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] if any round fails non-retryably.
    pub fn run(&mut self, cloud: &mut SimCloud, rounds: u64) -> Result<CollectStats, CollectError> {
        Ok(self.run_with_health(cloud, rounds)?.0)
    }

    /// Like [`CollectorService::run`], also returning every round's
    /// [`RoundHealth`].
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] if any round fails non-retryably.
    pub fn run_with_health(
        &mut self,
        cloud: &mut SimCloud,
        rounds: u64,
    ) -> Result<(CollectStats, Vec<RoundHealth>), CollectError> {
        let mut total = CollectStats::default();
        let mut healths = Vec::with_capacity(rounds as usize);
        for _ in 0..rounds {
            cloud.step();
            let report = self.collect_round(cloud)?;
            total.absorb(report.stats);
            healths.push(report.health);
        }
        Ok((total, healths))
    }
}

/// Writes a batch, retrying store throttles within the round's budget.
fn write_with_retry(
    db: &mut Database,
    table: &str,
    records: &[Record],
    policy: &RetryPolicy,
    retries: &mut usize,
) -> Result<usize, TsError> {
    let mut attempt = 0;
    loop {
        attempt += 1;
        match db.write(table, records) {
            Ok(n) => return Ok(n),
            Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                *retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_cloud_sim::SimConfig;
    use spotlake_timestream::Query;
    use spotlake_types::CatalogBuilder;

    fn cloud() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 3)
            .region("eu-test-1", 3)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        SimCloud::new(b.build().unwrap(), SimConfig::default())
    }

    #[test]
    fn full_round_populates_all_tables() {
        let mut cloud = cloud();
        let mut service =
            CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        let stats = service.run(&mut cloud, 3).unwrap();
        assert_eq!(stats.rounds, 3);
        assert!(stats.sps_records > 0);
        assert!(stats.advisor_records > 0);
        assert!(stats.price_records > 0);
        // A fault-free run spends nothing on resilience.
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.degraded_rounds, 0);
        assert_eq!(stats.dead_lettered, 0);

        let db = service.database();
        // 2 types × 6 AZs × 3 rounds dense sps records.
        assert_eq!(
            db.query(SPS_TABLE, &Query::measure("sps")).unwrap().len(),
            36
        );
        // Advisor table is change-point: repeats within a week are skipped.
        let if_rows = db
            .query(ADVISOR_TABLE, &Query::measure("if_score"))
            .unwrap();
        assert_eq!(if_rows.len(), 4, "one change-point per (type, region)");
        assert!(!db
            .query(PRICE_TABLE, &Query::measure("spot_price"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn disabled_datasets_are_skipped() {
        let mut cloud = cloud();
        let config = CollectorConfig {
            collect_sps: false,
            collect_advisor: false,
            ..CollectorConfig::default()
        };
        let mut service = CollectorService::new(cloud.catalog(), config).unwrap();
        cloud.step();
        let stats = service.collect_once(&cloud).unwrap();
        assert_eq!(stats.sps_records, 0);
        assert_eq!(stats.advisor_records, 0);
        assert!(stats.price_records > 0);
    }

    #[test]
    fn explicit_small_pool_rejected() {
        let cloud = cloud();
        let config = CollectorConfig {
            accounts: Some(0),
            ..CollectorConfig::default()
        };
        assert!(matches!(
            CollectorService::new(cloud.catalog(), config),
            Err(CollectError::InsufficientAccounts { .. })
        ));
    }

    #[test]
    fn type_filter_flows_through() {
        let mut cloud = cloud();
        let config = CollectorConfig {
            type_filter: Some(vec!["m5.large".into()]),
            ..CollectorConfig::default()
        };
        let mut service = CollectorService::new(cloud.catalog(), config).unwrap();
        cloud.step();
        service.collect_once(&cloud).unwrap();
        let rows = service
            .database()
            .query(SPS_TABLE, &Query::measure("sps"))
            .unwrap();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| {
            r.dimensions
                .iter()
                .any(|(k, v)| k == "instance_type" && v == "m5.large")
        }));
    }

    #[test]
    fn plan_stats_reported() {
        let cloud = cloud();
        let service = CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        let stats = service.plan_stats();
        assert!(stats.planned_queries > 0);
        assert!(stats.improvement() >= 1.0);
    }

    #[test]
    fn faulty_rounds_degrade_but_never_err() {
        let mut cloud = cloud();
        let config = CollectorConfig {
            faults: Some(FaultPlan::uniform(20_220_901, 0.2)),
            ..CollectorConfig::default()
        };
        let mut service = CollectorService::new(cloud.catalog(), config).unwrap();
        let (stats, healths) = service.run_with_health(&mut cloud, 30).unwrap();
        assert_eq!(stats.rounds, 30);
        assert_eq!(healths.len(), 30);
        assert!(stats.retries > 0, "a 20% fault rate must trigger retries");
        assert!(stats.sps_records > 0);
        assert!(
            healths.iter().any(RoundHealth::is_degraded),
            "30 rounds at 20% faults should degrade at least one"
        );
    }

    #[test]
    fn forced_open_breaker_skips_the_dataset_and_spares_the_rest() {
        let mut cloud = cloud();
        let mut service =
            CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        cloud.step();
        service.force_breaker_open(Dataset::Advisor, cloud.ticks());
        let report = service.collect_round(&cloud).unwrap();
        assert_eq!(report.health.advisor.status, DatasetStatus::Skipped);
        assert_eq!(report.stats.advisor_records, 0);
        assert!(report.stats.sps_records > 0, "sps unaffected");
        assert!(report.stats.price_records > 0, "price unaffected");
        assert!(report.health.is_degraded());
        assert_eq!(report.stats.degraded_rounds, 1);
    }

    #[test]
    fn health_is_reported_per_round() {
        let mut cloud = cloud();
        let mut service =
            CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        assert!(service.last_health().is_none());
        cloud.step();
        service.collect_once(&cloud).unwrap();
        let health = service.last_health().unwrap();
        assert_eq!(health.tick, cloud.ticks());
        assert_eq!(health.sps.status, DatasetStatus::Ok);
        assert_eq!(health.advisor.status, DatasetStatus::Ok);
        assert_eq!(health.price.status, DatasetStatus::Ok);
        assert_eq!(health.dead_letter_depth, 0);
    }
}
