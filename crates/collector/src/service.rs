//! The collection service: planning, scheduling, storage wiring, and the
//! resilience machinery that keeps rounds flowing under transient faults.
//!
//! Each of the three datasets is isolated: an advisor outage degrades the
//! round instead of discarding the SPS and price data collected alongside
//! it. Transient failures are retried in-round; datasets that keep failing
//! trip a per-dataset circuit breaker; SPS queries that exhaust their
//! retries are parked in a dead-letter queue and re-attempted in later
//! rounds with exponential backoff (re-issuing a known fingerprint is free
//! under the 50-unique-queries budget).

use crate::accounts::AccountPool;
use crate::advisor_collector::AdvisorCollector;
use crate::durability::{load_dead_letters, save_dead_letters, Durability};
use crate::error::CollectError;
use crate::health::{Dataset, DatasetStatus, RoundHealth};
use crate::planner::{PlanStats, PlannerStrategy, QueryPlanner};
use crate::price_collector::PriceCollector;
use crate::retry::{BreakerState, CircuitBreaker, RetryPolicy};
use crate::sps_collector::SpsCollector;
use crate::{ADVISOR_TABLE, PRICE_TABLE, SPS_TABLE};
use spotlake_cloud_api::FaultPlan;
use spotlake_cloud_sim::SimCloud;
use spotlake_obs::{
    Clock, HealthReport, ManualClock, QualityMonitor, QualityReport, Readiness, Registry,
    TraceJournal,
};
use spotlake_timestream::{
    Database, IoFaultPlan, Record, RecoveryReport, ShardCommitOutcome, ShardFaultConfig, ShardKey,
    ShardSetHealth, ShardedArchive, TableOptions, TsError, WalStats, WriteMode,
};
use spotlake_types::Catalog;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Re-attempts per dead-lettered query before it is dropped for good.
const DEAD_LETTER_MAX_ATTEMPTS: u32 = 5;

/// Collector configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Packing strategy for the query plan.
    pub strategy: PlannerStrategy,
    /// Size of the account pool; `None` sizes it to exactly cover the plan.
    pub accounts: Option<usize>,
    /// Target capacity used in placement-score queries.
    pub target_capacity: u32,
    /// Restrict collection to these instance type names (`None` = all).
    pub type_filter: Option<Vec<String>>,
    /// Collect the placement-score dataset.
    pub collect_sps: bool,
    /// Collect the advisor dataset.
    pub collect_advisor: bool,
    /// Collect the price dataset.
    pub collect_price: bool,
    /// Deterministic fault injection; `None` (the default) leaves every
    /// API surface and the store untouched.
    pub faults: Option<FaultPlan>,
    /// Retry budget and backoff schedule.
    pub retry: RetryPolicy,
    /// Directory for the write-ahead log, checkpoint snapshot, and
    /// persisted dead-letter queue. `None` (the default) runs without
    /// durability, exactly as before. With a directory set, the service
    /// recovers from it at startup and commits every round's batches
    /// through the WAL before applying them in memory.
    pub wal_dir: Option<PathBuf>,
    /// Checkpoint cadence in rounds (only meaningful with
    /// [`CollectorConfig::wal_dir`]): after every N completed rounds the
    /// archive is snapshotted and the replayed WAL prefix truncated.
    pub checkpoint_every: u64,
    /// Deterministic disk-fault injection behind the WAL and checkpoint
    /// writers (only meaningful with [`CollectorConfig::wal_dir`]).
    pub io_faults: Option<IoFaultPlan>,
    /// Shard the durable archive by dataset × region (only meaningful
    /// with [`CollectorConfig::wal_dir`]): each shard gets its own WAL,
    /// checkpoint, and recovery, so a torn write in one dataset×region
    /// degrades that shard instead of the whole archive.
    pub shards: bool,
    /// Restrict [`CollectorConfig::io_faults`] to a single shard (only
    /// meaningful with [`CollectorConfig::shards`]): every other shard
    /// runs fault-free, which is how the shard-loss drill proves fault
    /// isolation.
    pub io_fault_shard: Option<ShardKey>,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            strategy: PlannerStrategy::default(),
            accounts: None,
            target_capacity: 1,
            type_filter: None,
            collect_sps: true,
            collect_advisor: true,
            collect_price: true,
            faults: None,
            retry: RetryPolicy::default(),
            wal_dir: None,
            checkpoint_every: 8,
            io_faults: None,
            shards: false,
            io_fault_shard: None,
        }
    }
}

/// Counters from collection rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Placement-score records written.
    pub sps_records: usize,
    /// Advisor records written (score + savings).
    pub advisor_records: usize,
    /// Price-change records written.
    pub price_records: usize,
    /// Total records actually stored (change-point tables skip repeats).
    pub records_written: usize,
    /// Placement-score queries issued.
    pub queries_issued: usize,
    /// Collection rounds executed.
    pub rounds: usize,
    /// Retry attempts spent across all datasets and store writes.
    pub retries: usize,
    /// Operations that failed even after retries (SPS queries, advisor
    /// fetches, price sweeps).
    pub queries_failed: usize,
    /// Rounds in which at least one dataset fell short.
    pub degraded_rounds: usize,
    /// SPS queries newly parked in the dead-letter queue.
    pub dead_lettered: usize,
}

impl CollectStats {
    fn absorb(&mut self, other: CollectStats) {
        self.sps_records += other.sps_records;
        self.advisor_records += other.advisor_records;
        self.price_records += other.price_records;
        self.records_written += other.records_written;
        self.queries_issued += other.queries_issued;
        self.rounds += other.rounds;
        self.retries += other.retries;
        self.queries_failed += other.queries_failed;
        self.degraded_rounds += other.degraded_rounds;
        self.dead_lettered += other.dead_lettered;
    }
}

/// One round's result: the counters plus the structured health record.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// The round's counters.
    pub stats: CollectStats,
    /// What happened per dataset.
    pub health: RoundHealth,
}

/// A persistently failing SPS query parked for later re-attempts.
#[derive(Debug, Clone)]
pub(crate) struct DeadLetter {
    pub(crate) shard: usize,
    pub(crate) query: usize,
    pub(crate) attempts: u32,
    pub(crate) eligible_at: u64,
}

/// The SpotLake collection service: owns the archive database, the three
/// dataset collectors, and the resilience state (retry policy, breakers,
/// dead-letter queue).
#[derive(Debug)]
pub struct CollectorService {
    db: Database,
    sps: Option<SpsCollector>,
    advisor: Option<AdvisorCollector>,
    price: Option<PriceCollector>,
    plan_stats: PlanStats,
    policy: RetryPolicy,
    sps_breaker: CircuitBreaker,
    advisor_breaker: CircuitBreaker,
    price_breaker: CircuitBreaker,
    dead_letters: Vec<DeadLetter>,
    /// Price records collected but not yet durably stored (the store
    /// throttled the write); flushed with the next successful sweep so a
    /// storage hiccup delays price data instead of losing it.
    pending_price: Vec<Record>,
    last_health: Option<RoundHealth>,
    /// Collector-level metrics (`spotlake_collector_*` and
    /// `spotlake_api_*` families). The store keeps its own registry on
    /// [`Database`].
    metrics: Registry,
    /// Structured record of rounds and dataset outcomes, keyed on
    /// sim-ticks via `clock`.
    journal: TraceJournal,
    /// The service's injected clock, advanced to the cloud's tick at the
    /// start of every round — no wall clock anywhere.
    clock: ManualClock,
    /// Running totals across all rounds this service has executed.
    totals: CollectStats,
    /// Per-(dataset × pool-key) coverage/staleness tracking, fed from the
    /// records each round actually stores.
    quality: QualityMonitor,
    /// The WAL/checkpoint state when the service runs durably
    /// ([`CollectorConfig::wal_dir`]); `None` keeps the legacy in-memory
    /// write path untouched.
    durability: Option<Durability>,
    /// The sharded archive when the service runs with
    /// [`CollectorConfig::shards`]: per-dataset×region WALs, checkpoints,
    /// and quarantine. Mutually exclusive with `durability`; `db` is then
    /// the merged read view rebuilt from every healthy shard.
    sharded: Option<ShardedArchive>,
}

impl CollectorService {
    /// Plans queries for `catalog`, sizes the account pool, and creates the
    /// archive tables.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::InsufficientAccounts`] when an explicit
    /// account pool is too small for the plan, or [`CollectError::Store`]
    /// if the archive tables cannot be created.
    pub fn new(catalog: &Catalog, config: CollectorConfig) -> Result<Self, CollectError> {
        let planner = QueryPlanner::new(config.strategy);
        let (plan, plan_stats) = planner.plan_with_stats(catalog, config.type_filter.as_deref());

        let mut sps = if config.collect_sps {
            let pool_size = config
                .accounts
                .unwrap_or_else(|| AccountPool::required_accounts(plan.len()));
            let pool = AccountPool::with_size(pool_size);
            Some(SpsCollector::new(plan, &pool, config.target_capacity)?)
        } else {
            None
        };
        let mut advisor = config.collect_advisor.then(|| {
            let c = AdvisorCollector::new();
            match &config.type_filter {
                Some(f) => c.with_type_filter(f.clone()),
                None => c,
            }
        });
        let mut price = config.collect_price.then(|| {
            let c = PriceCollector::new();
            match &config.type_filter {
                Some(f) => c.with_type_filter(f.clone()),
                None => c,
            }
        });

        // With a WAL directory configured, the database is whatever
        // recovery reconstructs (checkpoint + replay); the tables are
        // then ensured rather than created, since a recovered archive
        // already has them. Sharded mode recovers each dataset×region
        // fault domain independently and merges the healthy ones.
        let (mut db, durability, sharded) = match &config.wal_dir {
            Some(dir) if config.shards => {
                let keys = shard_keys(catalog, &config);
                let faults = config.io_faults.map(|plan| ShardFaultConfig {
                    plan,
                    only: config.io_fault_shard.clone(),
                });
                let (archive, db) =
                    ShardedArchive::open(dir, &keys, config.checkpoint_every, faults)?;
                (db, None, Some(archive))
            }
            Some(dir) => {
                let (db, d) = Durability::open(dir, config.io_faults, config.checkpoint_every)?;
                (db, Some(d), None)
            }
            None => (Database::new(), None, None),
        };
        ensure_table(
            &mut db,
            SPS_TABLE,
            TableOptions {
                mode: WriteMode::Dense,
                retention: None,
            },
        )?;
        ensure_table(
            &mut db,
            ADVISOR_TABLE,
            TableOptions {
                mode: WriteMode::ChangePoint,
                retention: None,
            },
        )?;
        ensure_table(
            &mut db,
            PRICE_TABLE,
            TableOptions {
                mode: WriteMode::ChangePoint,
                retention: None,
            },
        )?;

        if let Some(plan) = config.faults.filter(|p| !p.is_zero()) {
            if let Some(s) = &mut sps {
                s.set_fault_plan(plan);
            }
            if let Some(a) = &mut advisor {
                a.set_fault_plan(plan);
            }
            if let Some(p) = &mut price {
                p.set_fault_plan(plan);
            }
            db.set_write_faults(plan.write_rate, plan.seed);
        }

        let metrics = Registry::new();
        let mut journal = TraceJournal::new();
        // The cloud advances one tick per round, so a live key is
        // expected every tick; any larger delta is a coverage gap.
        let mut quality = QualityMonitor::new(1);
        let recovery = durability
            .as_ref()
            .map(|d| &d.recovery)
            .or_else(|| sharded.as_ref().map(|s| s.recovery()));
        let start_tick = recovery.and_then(|r| r.last_tick).unwrap_or(0);
        let clock = ManualClock::new(start_tick);
        let dead_letters = match (&durability, &sharded) {
            (Some(d), _) => load_dead_letters(&d.dir),
            (None, Some(s)) => load_dead_letters(s.root()),
            (None, None) => Vec::new(),
        };
        if let Some(r) = recovery {
            // Every recovered series becomes a tracked key as of the last
            // committed tick, so post-restart staleness and gaps measure
            // from the crash point instead of silently resetting.
            prime_quality(&mut quality, &db, start_tick);
            record_recovery_observations(&metrics, &mut journal, &clock, r);
        }

        Ok(CollectorService {
            db,
            sps,
            advisor,
            price,
            plan_stats,
            policy: config.retry,
            sps_breaker: CircuitBreaker::new(3, 8),
            advisor_breaker: CircuitBreaker::new(3, 8),
            price_breaker: CircuitBreaker::new(3, 8),
            dead_letters,
            pending_price: Vec::new(),
            last_health: None,
            metrics,
            journal,
            clock,
            totals: CollectStats::default(),
            quality,
            durability,
            sharded,
        })
    }

    /// The query plan's statistics (Figure 1's headline numbers).
    pub fn plan_stats(&self) -> PlanStats {
        self.plan_stats
    }

    /// The archive database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the archive database.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Consumes the service, returning the archive.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// The health record of the most recent round, if any ran.
    pub fn last_health(&self) -> Option<&RoundHealth> {
        self.last_health.as_ref()
    }

    /// Current dead-letter queue depth.
    pub fn dead_letter_depth(&self) -> usize {
        self.dead_letters.len()
    }

    /// What startup recovery found and replayed, when the service runs
    /// durably ([`CollectorConfig::wal_dir`]). In sharded mode this is
    /// the aggregate across every shard's independent recovery.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durability
            .as_ref()
            .map(|d| &d.recovery)
            .or_else(|| self.sharded.as_ref().map(|s| s.recovery()))
    }

    /// The WAL's counters, when the service runs durably. In sharded
    /// mode the counters are summed over every live shard's WAL.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durability
            .as_ref()
            .map(|d| d.wal.stats())
            .or_else(|| self.sharded.as_ref().map(|s| s.wal_stats()))
    }

    /// Per-shard health rows, when the service runs sharded
    /// ([`CollectorConfig::shards`]).
    pub fn shard_health(&self) -> Option<ShardSetHealth> {
        self.sharded.as_ref().map(|s| s.health())
    }

    /// The sharded archive itself, when the service runs sharded.
    pub fn sharded_archive(&self) -> Option<&ShardedArchive> {
        self.sharded.as_ref()
    }

    /// The collector's metric registry (`spotlake_collector_*` and
    /// `spotlake_api_*` families). The archive's own families live on
    /// [`Database::metrics`].
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The structured trace journal of every round executed so far.
    pub fn journal(&self) -> &TraceJournal {
        &self.journal
    }

    /// A point-in-time archive data-quality report: per-dataset coverage,
    /// staleness, and gap counts derived from what each round actually
    /// stored.
    pub fn quality_report(&self) -> QualityReport {
        self.quality.report()
    }

    /// Running totals across all rounds executed by this service.
    pub fn stats(&self) -> CollectStats {
        self.totals
    }

    /// A dataset's current circuit-breaker state.
    pub fn breaker_state(&self, dataset: Dataset) -> BreakerState {
        match dataset {
            Dataset::Sps => self.sps_breaker.state(),
            Dataset::Advisor => self.advisor_breaker.state(),
            Dataset::Price => self.price_breaker.state(),
        }
    }

    /// Summarises the service's readiness for `/health`: one component per
    /// enabled dataset (breaker state plus the last round's outcome) and
    /// one for the dead-letter queue.
    ///
    /// An open breaker or a failed/skipped dataset degrades the component;
    /// a round in which *every* enabled dataset failed marks the collector
    /// unhealthy. No rounds yet reports ready — an idle service is not a
    /// sick one.
    pub fn health_report(&self) -> HealthReport {
        let mut report = HealthReport::new();
        let enabled: Vec<Dataset> = Dataset::ALL
            .into_iter()
            .filter(|d| match d {
                Dataset::Sps => self.sps.is_some(),
                Dataset::Advisor => self.advisor.is_some(),
                Dataset::Price => self.price.is_some(),
            })
            .collect();
        let all_failed = !enabled.is_empty()
            && self.last_health.as_ref().is_some_and(|h| {
                enabled
                    .iter()
                    .all(|&d| h.dataset(d).status == DatasetStatus::Failed)
            });
        for &dataset in &enabled {
            let breaker = self.breaker_state(dataset);
            let status = self.last_health.as_ref().map(|h| h.dataset(dataset).status);
            let readiness = if all_failed {
                Readiness::Unhealthy
            } else if breaker != BreakerState::Closed
                || matches!(
                    status,
                    Some(DatasetStatus::Failed) | Some(DatasetStatus::Skipped)
                )
            {
                Readiness::Degraded
            } else {
                Readiness::Ready
            };
            let detail = format!(
                "breaker {}, last round {}",
                breaker.as_str(),
                status.map_or("not yet run", DatasetStatus::as_str)
            );
            report.push(format!("collector/{}", dataset.name()), readiness, detail);
        }
        let depth = self.dead_letters.len();
        report.push(
            "collector/dead-letters",
            if depth == 0 {
                Readiness::Ready
            } else {
                Readiness::Degraded
            },
            format!("{depth} queued"),
        );
        if let Some(d) = &self.durability {
            let (readiness, detail) = if d.wal.is_dead() {
                (
                    Readiness::Unhealthy,
                    "wal dead after crash fault; restart required".to_owned(),
                )
            } else if d.recovery.recovered_anything() && self.totals.rounds == 0 {
                // Replay is done but no fresh round has landed yet: the
                // service is serving recovered data only.
                (
                    Readiness::Degraded,
                    format!(
                        "recovering: replayed {} frames ({} rounds), truncated {} bytes",
                        d.recovery.frames_replayed,
                        d.recovery.rounds_recovered,
                        d.recovery.bytes_truncated
                    ),
                )
            } else {
                let s = d.wal.stats();
                (
                    Readiness::Ready,
                    format!(
                        "{} frames appended, {} checkpoints",
                        s.frames_appended, s.checkpoints
                    ),
                )
            };
            report.push("store/wal", readiness, detail);
        }
        if let Some(s) = &self.sharded {
            // Shards are independent fault domains, so the component
            // aggregates: unhealthy only when every shard is lost,
            // degraded (still serving) while any shard is impaired.
            let h = s.health();
            let (readiness, detail) = if h.all_lost() {
                (
                    Readiness::Unhealthy,
                    format!(
                        "all {} shards lost; restart or fsck --repair required",
                        h.total()
                    ),
                )
            } else if h.degraded() {
                let impaired: Vec<String> = h
                    .impaired()
                    .map(|r| format!("{}/{} {}", r.dataset, r.region, r.state.as_str()))
                    .collect();
                (
                    Readiness::Degraded,
                    format!(
                        "{}/{} shards healthy; impaired: {}",
                        h.healthy(),
                        h.total(),
                        impaired.join(", ")
                    ),
                )
            } else {
                (Readiness::Ready, format!("{} shards healthy", h.total()))
            };
            report.push("store/wal", readiness, detail);
        }
        report
    }

    /// Forces a dataset's circuit breaker open at `tick` — the operator
    /// kill switch (and the chaos tests' lever). The dataset is skipped
    /// until the breaker's cooldown elapses.
    pub fn force_breaker_open(&mut self, dataset: Dataset, tick: u64) {
        self.breaker_mut(dataset).force_open(tick);
    }

    fn breaker_mut(&mut self, dataset: Dataset) -> &mut CircuitBreaker {
        match dataset {
            Dataset::Sps => &mut self.sps_breaker,
            Dataset::Advisor => &mut self.advisor_breaker,
            Dataset::Price => &mut self.price_breaker,
        }
    }

    /// Runs one collection round against the cloud's current state,
    /// returning both counters and the round's health record.
    ///
    /// Transient trouble — injected or otherwise — degrades the round:
    /// whatever was collected is stored and the shortfall is recorded in
    /// [`RoundHealth`]. Only non-retryable errors (invalid parameters,
    /// unknown entities, a blown query budget, schema-level store errors)
    /// return `Err`, because those are bugs rather than weather.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] only for the non-retryable class above.
    pub fn collect_round(&mut self, cloud: &SimCloud) -> Result<RoundReport, CollectError> {
        let tick = cloud.ticks();
        self.clock.set(tick);
        let span = self.journal.begin_span(self.clock.now(), "round");
        let mut stats = CollectStats {
            rounds: 1,
            ..CollectStats::default()
        };
        let mut health = RoundHealth {
            tick,
            ..RoundHealth::default()
        };

        self.collect_sps_dataset(cloud, tick, &mut stats, &mut health)?;
        self.collect_advisor_dataset(cloud, tick, &mut stats, &mut health)?;
        self.collect_price_dataset(cloud, tick, &mut stats, &mut health)?;
        self.quality.round_complete(tick);
        self.maintain_durability()?;

        health.dead_letter_depth = self.dead_letters.len();
        stats.retries = health.sps.retries + health.advisor.retries + health.price.retries;
        stats.queries_failed =
            health.sps.failed_queries + health.advisor.failed_queries + health.price.failed_queries;
        if health.is_degraded() {
            stats.degraded_rounds = 1;
        }
        self.totals.absorb(stats);
        self.record_round_observations(cloud, &stats, &health);
        self.journal
            .span_attr(span, "degraded", health.is_degraded().to_string());
        self.journal
            .span_attr(span, "records_written", stats.records_written.to_string());
        self.journal.end_span(span, self.clock.now());
        self.last_health = Some(health.clone());
        Ok(RoundReport { stats, health })
    }

    /// End-of-round durability maintenance: persist the dead-letter
    /// queue next to the WAL and rotate a checkpoint every
    /// `checkpoint_every` rounds. A transient checkpoint fault just
    /// postpones the rotation to the next round (the log still holds
    /// everything); a crash fault surfaces as the round's error.
    fn maintain_durability(&mut self) -> Result<(), CollectError> {
        if let Some(s) = &mut self.sharded {
            save_dead_letters(s.root(), &self.dead_letters)?;
            // Per-shard checkpoint crashes are absorbed inside the
            // archive (that shard alone degrades); only a root-manifest
            // failure — outside every fault domain — is round-fatal.
            s.maintain()?;
            return Ok(());
        }
        let Some(d) = &mut self.durability else {
            return Ok(());
        };
        save_dead_letters(&d.dir, &self.dead_letters)?;
        d.rounds_since_checkpoint += 1;
        if d.rounds_since_checkpoint >= d.checkpoint_every {
            match d.wal.checkpoint(&self.db) {
                Ok(()) => d.rounds_since_checkpoint = 0,
                Err(e) if e.is_retryable() => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Feeds one finished round into the metric registry and journal.
    ///
    /// Everything recorded here is a pure function of the round's
    /// deterministic outcome — "durations" are denominated in API
    /// operations (first calls plus retries), never wall clock, so two
    /// same-seed runs render byte-identical metrics and journals.
    fn record_round_observations(
        &mut self,
        cloud: &SimCloud,
        stats: &CollectStats,
        health: &RoundHealth,
    ) {
        let m = &self.metrics;
        m.counter_add(
            "spotlake_collector_rounds_total",
            "Collection rounds executed.",
            &[],
            1,
        );
        m.counter_add(
            "spotlake_collector_degraded_rounds_total",
            "Rounds in which at least one dataset fell short.",
            &[],
            stats.degraded_rounds as u64,
        );
        m.counter_add(
            "spotlake_collector_records_written_total",
            "Records stored across all datasets (after change-point dedup).",
            &[],
            stats.records_written as u64,
        );
        m.counter_add(
            "spotlake_collector_dead_lettered_total",
            "SPS queries newly parked in the dead-letter queue.",
            &[],
            stats.dead_lettered as u64,
        );
        m.gauge_set(
            "spotlake_collector_dead_letter_depth",
            "Dead-letter queue depth after the most recent round.",
            &[],
            health.dead_letter_depth as f64,
        );

        for dataset in Dataset::ALL {
            let enabled = match dataset {
                Dataset::Sps => self.sps.is_some(),
                Dataset::Advisor => self.advisor.is_some(),
                Dataset::Price => self.price.is_some(),
            };
            if !enabled {
                continue;
            }
            let d = health.dataset(dataset);
            let labels = [("dataset", dataset.name())];
            m.counter_add(
                "spotlake_collector_records_total",
                "Records collected per dataset per round, summed.",
                &labels,
                d.records as u64,
            );
            m.counter_add(
                "spotlake_collector_retries_total",
                "Retry attempts spent per dataset (API calls and store writes).",
                &labels,
                d.retries as u64,
            );
            m.counter_add(
                "spotlake_collector_failed_queries_total",
                "Operations that failed even after retries, per dataset.",
                &labels,
                d.failed_queries as u64,
            );
            // Round "duration" in deterministic units: first calls plus
            // retries. SPS issues the whole plan; the other datasets are
            // one sweep each.
            let ops = match dataset {
                Dataset::Sps => stats.queries_issued + d.retries,
                Dataset::Advisor | Dataset::Price => 1 + d.retries,
            };
            m.histogram_record(
                "spotlake_collector_round_ops",
                "API operations (first calls + retries) spent per dataset per round — the deterministic stand-in for round duration.",
                &labels,
                ops as f64,
            );
            let breaker = self.breaker_state(dataset);
            m.gauge_set(
                "spotlake_collector_breaker_state",
                "Circuit-breaker state per dataset: 0 closed, 1 half-open, 2 open.",
                &labels,
                breaker.as_gauge(),
            );
            self.journal.event(
                self.clock.now(),
                "dataset",
                &[
                    ("dataset", dataset.name().to_owned()),
                    ("status", d.status.as_str().to_owned()),
                    ("records", d.records.to_string()),
                    ("retries", d.retries.to_string()),
                    ("failed_queries", d.failed_queries.to_string()),
                    ("breaker", breaker.as_str().to_owned()),
                ],
            );
        }

        // Per-account unique-query budget consumption (50/24 h limit).
        let mut fault_counts = Vec::new();
        if let Some(sps) = &mut self.sps {
            for (account, used) in sps.budget_used(cloud) {
                self.metrics.gauge_set(
                    "spotlake_collector_unique_queries_used",
                    "Unique placement-score queries consumed per account in the trailing 24 h (limit 50).",
                    &[("account", &account)],
                    used as f64,
                );
            }
            fault_counts.extend(sps.fault_counts());
        }
        if let Some(a) = &self.advisor {
            fault_counts.extend(a.fault_counts());
        }
        if let Some(p) = &self.price {
            fault_counts.extend(p.fault_counts());
        }
        // The injectors report running totals, so scrape with
        // `counter_set` rather than re-adding them every round.
        for (surface, kind, count) in fault_counts {
            self.metrics.counter_set(
                "spotlake_api_faults_injected_total",
                "Faults injected per API surface and kind.",
                &[("surface", surface.name()), ("kind", kind)],
                count,
            );
        }

        if let Some(s) = self.wal_stats() {
            let m = &self.metrics;
            // WAL counters are running totals on the log itself, so they
            // are scraped with `counter_set`, like the fault injectors.
            m.counter_set(
                "spotlake_wal_frames_appended_total",
                "WAL frames appended and fsynced.",
                &[],
                s.frames_appended,
            );
            m.counter_set(
                "spotlake_wal_bytes_appended_total",
                "Bytes appended to the WAL, frame headers included.",
                &[],
                s.bytes_appended,
            );
            m.counter_set(
                "spotlake_wal_checkpoints_total",
                "Checkpoint snapshots rotated.",
                &[],
                s.checkpoints,
            );
            m.gauge_set(
                "spotlake_wal_size_bytes",
                "Committed bytes currently in the WAL.",
                &[],
                s.wal_bytes as f64,
            );
            m.gauge_set(
                "spotlake_wal_dead",
                "1 when a crash fault has killed the WAL (restart required).",
                &[],
                if s.dead { 1.0 } else { 0.0 },
            );
            for (kind, count) in &s.faults_injected {
                m.counter_set(
                    "spotlake_wal_faults_injected_total",
                    "Disk faults injected into the WAL and checkpoint writers, per kind.",
                    &[("kind", kind)],
                    *count,
                );
            }
        }

        if let Some(archive) = &self.sharded {
            let h = archive.health();
            let m = &self.metrics;
            m.gauge_set(
                "spotlake_shard_count",
                "Shards (dataset × region fault domains) in the archive.",
                &[],
                h.total() as f64,
            );
            m.gauge_set(
                "spotlake_shard_quarantined_count",
                "Shards quarantined pending fsck --repair.",
                &[],
                h.quarantined().count() as f64,
            );
            for row in &h.shards {
                let labels = [
                    ("dataset", row.dataset.as_str()),
                    ("region", row.region.as_str()),
                ];
                m.gauge_set(
                    "spotlake_shard_state",
                    "Shard state: 0 healthy, 1 failed (wal dead), 2 quarantined.",
                    &labels,
                    row.state.code() as f64,
                );
                m.gauge_set(
                    "spotlake_shard_points",
                    "Points held by the shard's database.",
                    &labels,
                    row.points as f64,
                );
                m.counter_set(
                    "spotlake_shard_commits_total",
                    "Round batches committed through the shard's WAL.",
                    &labels,
                    row.commits,
                );
                m.counter_set(
                    "spotlake_shard_commit_failures_total",
                    "Round batches a shard failed to commit (dropped for the round).",
                    &labels,
                    row.commit_failures,
                );
            }
        }

        self.quality.export(&self.metrics);
    }

    fn collect_sps_dataset(
        &mut self,
        cloud: &SimCloud,
        tick: u64,
        stats: &mut CollectStats,
        health: &mut RoundHealth,
    ) -> Result<(), CollectError> {
        let Some(sps) = &mut self.sps else {
            return Ok(());
        };
        if !self.sps_breaker.allow(tick) {
            health.sps.status = DatasetStatus::Skipped;
            return Ok(());
        }

        let mut outcome = sps.collect_with(cloud, &self.policy)?;
        stats.queries_issued = sps.query_count();
        health.sps.retries = outcome.retries;

        // Which plan slots are failing *right now*. Dead letters whose
        // query recovered in this regular pass are satisfied and dropped;
        // the rest are re-attempted once their backoff elapses.
        let mut failing: BTreeSet<(usize, usize)> =
            outcome.failed.iter().map(|f| (f.shard, f.query)).collect();
        health.sps.error = outcome.failed.first().map(|f| f.error.to_string());
        self.dead_letters
            .retain(|d| failing.contains(&(d.shard, d.query)));

        let policy = self.policy;
        let mut recovered = Vec::new();
        for d in &mut self.dead_letters {
            if d.eligible_at > tick {
                continue;
            }
            let res = sps.retry_query(cloud, d.shard, d.query, &policy);
            health.sps.retries += res.retries + 1;
            match res.error {
                None => {
                    outcome.records.extend(res.records);
                    failing.remove(&(d.shard, d.query));
                    recovered.push((d.shard, d.query));
                }
                Some(e) => {
                    d.attempts += 1;
                    let scope = format!("dlq/{}/{}", d.shard, d.query);
                    d.eligible_at = tick + policy.backoff_ticks(&scope, d.attempts);
                    if !e.is_retryable() || d.attempts >= DEAD_LETTER_MAX_ATTEMPTS {
                        recovered.push((d.shard, d.query)); // dropped below
                    }
                }
            }
        }
        self.dead_letters
            .retain(|d| !recovered.contains(&(d.shard, d.query)));

        // Park this round's fresh failures.
        for f in &outcome.failed {
            let key = (f.shard, f.query);
            if !failing.contains(&key) {
                continue; // recovered via the dead-letter pass above
            }
            if self.dead_letters.iter().any(|d| (d.shard, d.query) == key) {
                continue;
            }
            let scope = format!("dlq/{}/{}", f.shard, f.query);
            self.dead_letters.push(DeadLetter {
                shard: f.shard,
                query: f.query,
                attempts: 1,
                eligible_at: tick + self.policy.backoff_ticks(&scope, 1),
            });
            stats.dead_lettered += 1;
        }
        health.sps.failed_queries = failing.len();

        match commit_with_retry(
            &mut self.db,
            &mut self.durability,
            &mut self.sharded,
            SPS_TABLE,
            tick,
            &outcome.records,
            &self.policy,
            &mut health.sps.retries,
        ) {
            Ok(commit) => {
                let stored: &[Record] = commit.partial.as_deref().unwrap_or(&outcome.records);
                for r in stored {
                    self.quality.observe("sps", &record_key(r), tick);
                }
                stats.sps_records = stored.len();
                stats.records_written += commit.written;
                health.sps.records = stored.len();
                health.shards_failed += commit.shard_failures.len();
                if health.sps.error.is_none() {
                    health.sps.error = commit.first_failure();
                }
                let lost_everything = stored.is_empty() && !outcome.records.is_empty();
                if (outcome.records.is_empty() && !failing.is_empty()) || lost_everything {
                    health.sps.status = DatasetStatus::Failed;
                    self.sps_breaker.record_failure(tick);
                } else if !failing.is_empty()
                    || health.sps.retries > 0
                    || !commit.shard_failures.is_empty()
                {
                    health.sps.status = DatasetStatus::Degraded;
                    self.sps_breaker.record_success();
                } else {
                    health.sps.status = DatasetStatus::Ok;
                    self.sps_breaker.record_success();
                }
            }
            Err(e) if e.is_retryable() => {
                // The store refused the whole batch: a gap in the dense
                // series this round.
                health.sps.status = DatasetStatus::Failed;
                health.sps.error = Some(e.to_string());
                self.sps_breaker.record_failure(tick);
            }
            Err(e) => return Err(e.into()),
        }
        Ok(())
    }

    fn collect_advisor_dataset(
        &mut self,
        cloud: &SimCloud,
        tick: u64,
        stats: &mut CollectStats,
        health: &mut RoundHealth,
    ) -> Result<(), CollectError> {
        let Some(advisor) = &mut self.advisor else {
            return Ok(());
        };
        if !self.advisor_breaker.allow(tick) {
            health.advisor.status = DatasetStatus::Skipped;
            return Ok(());
        }
        match advisor.collect_with(cloud, &self.policy) {
            Ok(outcome) => {
                health.advisor.retries = outcome.retries;
                match commit_with_retry(
                    &mut self.db,
                    &mut self.durability,
                    &mut self.sharded,
                    ADVISOR_TABLE,
                    tick,
                    &outcome.records,
                    &self.policy,
                    &mut health.advisor.retries,
                ) {
                    Ok(commit) => {
                        // Score and savings share a key; the monitor
                        // dedupes same-tick observations.
                        let stored: &[Record] =
                            commit.partial.as_deref().unwrap_or(&outcome.records);
                        for r in stored {
                            self.quality.observe("advisor", &record_key(r), tick);
                        }
                        stats.advisor_records = stored.len();
                        stats.records_written += commit.written;
                        health.advisor.records = stored.len();
                        health.shards_failed += commit.shard_failures.len();
                        if health.advisor.error.is_none() {
                            health.advisor.error = commit.first_failure();
                        }
                        if stored.is_empty() && !outcome.records.is_empty() {
                            // Every shard refused its slice: nothing of
                            // this dataset landed this round.
                            health.advisor.status = DatasetStatus::Failed;
                            self.advisor_breaker.record_failure(tick);
                        } else {
                            health.advisor.status = if health.advisor.retries > 0
                                || !commit.shard_failures.is_empty()
                            {
                                DatasetStatus::Degraded
                            } else {
                                DatasetStatus::Ok
                            };
                            self.advisor_breaker.record_success();
                        }
                    }
                    Err(e) if e.is_retryable() => {
                        // Change-point table: the next successful round
                        // re-delivers the current state, so nothing is
                        // lost for good.
                        health.advisor.status = DatasetStatus::Failed;
                        health.advisor.failed_queries = 1;
                        health.advisor.error = Some(e.to_string());
                        self.advisor_breaker.record_failure(tick);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            Err(CollectError::Api(e)) if e.is_retryable() => {
                health.advisor.status = DatasetStatus::Failed;
                health.advisor.failed_queries = 1;
                health.advisor.retries = self.policy.max_attempts.saturating_sub(1) as usize;
                health.advisor.error = Some(e.to_string());
                self.advisor_breaker.record_failure(tick);
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }

    fn collect_price_dataset(
        &mut self,
        cloud: &SimCloud,
        tick: u64,
        stats: &mut CollectStats,
        health: &mut RoundHealth,
    ) -> Result<(), CollectError> {
        let Some(price) = &mut self.price else {
            return Ok(());
        };
        if !self.price_breaker.allow(tick) {
            health.price.status = DatasetStatus::Skipped;
            return Ok(());
        }
        match price.collect_with(cloud, &self.policy) {
            Ok(outcome) => {
                health.price.retries = outcome.retries;
                // Older, previously unwritable records go first.
                let mut records = std::mem::take(&mut self.pending_price);
                records.extend(outcome.records);
                match commit_with_retry(
                    &mut self.db,
                    &mut self.durability,
                    &mut self.sharded,
                    PRICE_TABLE,
                    tick,
                    &records,
                    &self.policy,
                    &mut health.price.retries,
                ) {
                    Ok(commit) => {
                        // The price API only reports *changes*; a clean
                        // sweep therefore refreshes every key the monitor
                        // has ever seen, not just the changed ones.
                        let stored: &[Record] = commit.partial.as_deref().unwrap_or(&records);
                        for r in stored {
                            self.quality.observe("price", &record_key(r), tick);
                        }
                        stats.price_records = stored.len();
                        stats.records_written += commit.written;
                        health.price.records = stored.len();
                        health.shards_failed += commit.shard_failures.len();
                        if health.price.error.is_none() {
                            health.price.error = commit.first_failure();
                        }
                        if stored.is_empty() && !records.is_empty() {
                            health.price.status = DatasetStatus::Failed;
                            self.price_breaker.record_failure(tick);
                        } else {
                            // A clean sweep only counts when every shard
                            // took its slice.
                            if commit.shard_failures.is_empty() {
                                self.quality.observe_sweep("price", tick);
                            }
                            health.price.status =
                                if health.price.retries > 0 || !commit.shard_failures.is_empty() {
                                    DatasetStatus::Degraded
                                } else {
                                    DatasetStatus::Ok
                                };
                            self.price_breaker.record_success();
                        }
                    }
                    Err(e) if e.is_retryable() => {
                        // Buffer instead of dropping: the sweep succeeded
                        // and the watermark advanced, so these records
                        // exist nowhere else.
                        self.pending_price = records;
                        health.price.status = DatasetStatus::Failed;
                        health.price.failed_queries = 1;
                        health.price.error = Some(e.to_string());
                        self.price_breaker.record_failure(tick);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            Err(CollectError::Api(e)) if e.is_retryable() => {
                // The watermark did not advance: the next sweep re-covers
                // this window, so faults delay price data, never lose it.
                health.price.status = DatasetStatus::Failed;
                health.price.failed_queries = 1;
                health.price.error = Some(e.to_string());
                self.price_breaker.record_failure(tick);
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }

    /// Runs one collection round against the cloud's current state.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] only for non-retryable failures; see
    /// [`CollectorService::collect_round`].
    pub fn collect_once(&mut self, cloud: &SimCloud) -> Result<CollectStats, CollectError> {
        Ok(self.collect_round(cloud)?.stats)
    }

    /// Steps the cloud and collects, `rounds` times — the periodic
    /// collection loop of Section 4.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] if any round fails non-retryably.
    pub fn run(&mut self, cloud: &mut SimCloud, rounds: u64) -> Result<CollectStats, CollectError> {
        Ok(self.run_with_health(cloud, rounds)?.0)
    }

    /// Like [`CollectorService::run`], also returning every round's
    /// [`RoundHealth`].
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] if any round fails non-retryably.
    pub fn run_with_health(
        &mut self,
        cloud: &mut SimCloud,
        rounds: u64,
    ) -> Result<(CollectStats, Vec<RoundHealth>), CollectError> {
        let mut total = CollectStats::default();
        let mut healths = Vec::with_capacity(rounds as usize);
        for _ in 0..rounds {
            cloud.step();
            let report = self.collect_round(cloud)?;
            total.absorb(report.stats);
            healths.push(report.health);
        }
        Ok((total, healths))
    }
}

/// The quality-monitor coverage key of one record: instance type plus the
/// record's finest location dimension (AZ when present, region otherwise —
/// the advisor dataset has no AZ).
fn record_key(record: &Record) -> String {
    key_from_dims(&record.dimensions)
}

/// [`record_key`] over a bare dimension list — what recovery priming has.
fn key_from_dims(dims: &[(String, String)]) -> String {
    let dim = |key: &str| dims.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str());
    let instance_type = dim("instance_type").unwrap_or("?");
    let location = dim("az").or_else(|| dim("region")).unwrap_or("?");
    format!("{instance_type}:{location}")
}

/// Creates `name` if absent; a recovered archive already has its tables.
fn ensure_table(db: &mut Database, name: &str, options: TableOptions) -> Result<(), TsError> {
    match db.create_table(name, options) {
        Ok(()) | Err(TsError::TableExists(_)) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Registers every recovered series with the quality monitor as of the
/// last committed tick, so the crash itself shows up as staleness and
/// the first post-restart round's delta as a gap — instead of the
/// monitor starting blank and hiding the outage.
fn prime_quality(quality: &mut QualityMonitor, db: &Database, tick: u64) {
    for (table, dataset) in [
        (SPS_TABLE, "sps"),
        (ADVISOR_TABLE, "advisor"),
        (PRICE_TABLE, "price"),
    ] {
        let Ok(t) = db.table(table) else { continue };
        for (_measure, dims) in t.series_dimension_sets() {
            quality.observe(dataset, &key_from_dims(dims), tick);
        }
    }
}

/// Exports what recovery did: `spotlake_recovery_*` metric families and
/// (when anything was recovered) a `recovery` span in the trace journal,
/// stamped at the last committed tick.
fn record_recovery_observations(
    metrics: &Registry,
    journal: &mut TraceJournal,
    clock: &ManualClock,
    recovery: &RecoveryReport,
) {
    metrics.counter_set(
        "spotlake_recovery_frames_replayed_total",
        "WAL frames replayed by startup recovery.",
        &[],
        recovery.frames_replayed,
    );
    metrics.counter_set(
        "spotlake_recovery_records_replayed_total",
        "Records replayed by startup recovery.",
        &[],
        recovery.records_replayed,
    );
    metrics.counter_set(
        "spotlake_recovery_rounds_recovered_total",
        "Distinct collection rounds recovered from the WAL.",
        &[],
        recovery.rounds_recovered,
    );
    metrics.counter_set(
        "spotlake_recovery_bytes_truncated_total",
        "Torn-tail bytes truncated from the WAL at recovery.",
        &[],
        recovery.bytes_truncated,
    );
    metrics.gauge_set(
        "spotlake_recovery_point_count",
        "Points in the archive immediately after recovery.",
        &[],
        recovery.point_count as f64,
    );
    metrics.gauge_set(
        "spotlake_recovery_checkpoint_loaded",
        "1 when recovery loaded a checkpoint snapshot.",
        &[],
        if recovery.checkpoint_loaded { 1.0 } else { 0.0 },
    );
    if recovery.recovered_anything() {
        let span = journal.begin_span(clock.now(), "recovery");
        journal.span_attr(
            span,
            "frames_replayed",
            recovery.frames_replayed.to_string(),
        );
        journal.span_attr(
            span,
            "rounds_recovered",
            recovery.rounds_recovered.to_string(),
        );
        journal.span_attr(
            span,
            "bytes_truncated",
            recovery.bytes_truncated.to_string(),
        );
        journal.span_attr(span, "point_count", recovery.point_count.to_string());
        journal.end_span(span, clock.now());
    }
}

/// What [`commit_with_retry`] stored.
struct CommitResult {
    /// Points the store accepted (change-point tables skip repeats).
    written: usize,
    /// The records that actually committed when the sharded archive
    /// dropped some shards' batches; `None` means the whole input batch
    /// committed (the single-WAL and in-memory paths are all-or-nothing).
    partial: Option<Vec<Record>>,
    /// Shards that refused or failed their batch (sharded archive only).
    shard_failures: Vec<spotlake_timestream::ShardHealthRow>,
}

impl CommitResult {
    fn all(written: usize) -> CommitResult {
        CommitResult {
            written,
            partial: None,
            shard_failures: Vec::new(),
        }
    }

    /// The first failed shard, rendered for a dataset's health record.
    fn first_failure(&self) -> Option<String> {
        self.shard_failures
            .first()
            .map(|f| format!("shard {}/{}: {}", f.dataset, f.region, f.detail))
    }
}

/// Commits a batch durably: append to the WAL (retrying transient disk
/// faults within the round's budget), then apply in memory. The apply
/// bypasses the store's write-throttle — once a frame is fsynced the
/// batch *is* committed, and memory must match what replay would
/// rebuild. With a sharded archive the batch fans out per region and a
/// failed shard drops only its own slice — never an `Err` — so partial
/// storage degrades the dataset instead of killing the round. Without
/// durability configured this is [`write_with_retry`], unchanged.
#[allow(clippy::too_many_arguments)]
fn commit_with_retry(
    db: &mut Database,
    durability: &mut Option<Durability>,
    sharded: &mut Option<ShardedArchive>,
    table: &str,
    tick: u64,
    records: &[Record],
    policy: &RetryPolicy,
    retries: &mut usize,
) -> Result<CommitResult, TsError> {
    if let Some(archive) = sharded {
        let options = db.table(table)?.options();
        let out: ShardCommitOutcome =
            archive.commit(db, table, options, tick, records, policy.max_attempts);
        *retries += out.retries as usize;
        return Ok(CommitResult {
            written: out.written,
            partial: Some(out.committed),
            shard_failures: out.failures,
        });
    }
    let Some(d) = durability else {
        return Ok(CommitResult::all(write_with_retry(
            db, table, records, policy, retries,
        )?));
    };
    let options = db.table(table)?.options();
    let mut attempt = 0;
    loop {
        attempt += 1;
        match d.wal.append(table, options, tick, records) {
            Ok(()) => break,
            Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                *retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(CommitResult::all(db.apply_committed(table, records)?))
}

/// The shard keys a fresh sharded archive starts with: every enabled
/// dataset table × every catalog region. [`ShardedArchive::open`] unions
/// these with whatever the on-disk manifest already names, so a region
/// added to the catalog later simply grows a new shard.
fn shard_keys(catalog: &Catalog, config: &CollectorConfig) -> Vec<ShardKey> {
    let mut tables = Vec::new();
    if config.collect_sps {
        tables.push(SPS_TABLE);
    }
    if config.collect_advisor {
        tables.push(ADVISOR_TABLE);
    }
    if config.collect_price {
        tables.push(PRICE_TABLE);
    }
    let mut keys = Vec::new();
    for table in tables {
        for region in catalog.regions() {
            keys.push(ShardKey::new(table, region.code()));
        }
    }
    keys
}

/// Writes a batch, retrying store throttles within the round's budget.
fn write_with_retry(
    db: &mut Database,
    table: &str,
    records: &[Record],
    policy: &RetryPolicy,
    retries: &mut usize,
) -> Result<usize, TsError> {
    let mut attempt = 0;
    loop {
        attempt += 1;
        match db.write(table, records) {
            Ok(n) => return Ok(n),
            Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                *retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_cloud_sim::SimConfig;
    use spotlake_timestream::Query;
    use spotlake_types::CatalogBuilder;

    fn cloud() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 3)
            .region("eu-test-1", 3)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        SimCloud::new(b.build().unwrap(), SimConfig::default())
    }

    #[test]
    fn full_round_populates_all_tables() {
        let mut cloud = cloud();
        let mut service =
            CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        let stats = service.run(&mut cloud, 3).unwrap();
        assert_eq!(stats.rounds, 3);
        assert!(stats.sps_records > 0);
        assert!(stats.advisor_records > 0);
        assert!(stats.price_records > 0);
        // A fault-free run spends nothing on resilience.
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.degraded_rounds, 0);
        assert_eq!(stats.dead_lettered, 0);

        let db = service.database();
        // 2 types × 6 AZs × 3 rounds dense sps records.
        assert_eq!(
            db.query(SPS_TABLE, &Query::measure("sps")).unwrap().len(),
            36
        );
        // Advisor table is change-point: repeats within a week are skipped.
        let if_rows = db
            .query(ADVISOR_TABLE, &Query::measure("if_score"))
            .unwrap();
        assert_eq!(if_rows.len(), 4, "one change-point per (type, region)");
        assert!(!db
            .query(PRICE_TABLE, &Query::measure("spot_price"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn disabled_datasets_are_skipped() {
        let mut cloud = cloud();
        let config = CollectorConfig {
            collect_sps: false,
            collect_advisor: false,
            ..CollectorConfig::default()
        };
        let mut service = CollectorService::new(cloud.catalog(), config).unwrap();
        cloud.step();
        let stats = service.collect_once(&cloud).unwrap();
        assert_eq!(stats.sps_records, 0);
        assert_eq!(stats.advisor_records, 0);
        assert!(stats.price_records > 0);
    }

    #[test]
    fn explicit_small_pool_rejected() {
        let cloud = cloud();
        let config = CollectorConfig {
            accounts: Some(0),
            ..CollectorConfig::default()
        };
        assert!(matches!(
            CollectorService::new(cloud.catalog(), config),
            Err(CollectError::InsufficientAccounts { .. })
        ));
    }

    #[test]
    fn type_filter_flows_through() {
        let mut cloud = cloud();
        let config = CollectorConfig {
            type_filter: Some(vec!["m5.large".into()]),
            ..CollectorConfig::default()
        };
        let mut service = CollectorService::new(cloud.catalog(), config).unwrap();
        cloud.step();
        service.collect_once(&cloud).unwrap();
        let rows = service
            .database()
            .query(SPS_TABLE, &Query::measure("sps"))
            .unwrap();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| {
            r.dimensions
                .iter()
                .any(|(k, v)| k == "instance_type" && v == "m5.large")
        }));
    }

    #[test]
    fn plan_stats_reported() {
        let cloud = cloud();
        let service = CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        let stats = service.plan_stats();
        assert!(stats.planned_queries > 0);
        assert!(stats.improvement() >= 1.0);
    }

    #[test]
    fn faulty_rounds_degrade_but_never_err() {
        let mut cloud = cloud();
        let config = CollectorConfig {
            faults: Some(FaultPlan::uniform(20_220_901, 0.2)),
            ..CollectorConfig::default()
        };
        let mut service = CollectorService::new(cloud.catalog(), config).unwrap();
        let (stats, healths) = service.run_with_health(&mut cloud, 30).unwrap();
        assert_eq!(stats.rounds, 30);
        assert_eq!(healths.len(), 30);
        assert!(stats.retries > 0, "a 20% fault rate must trigger retries");
        assert!(stats.sps_records > 0);
        assert!(
            healths.iter().any(RoundHealth::is_degraded),
            "30 rounds at 20% faults should degrade at least one"
        );
    }

    #[test]
    fn forced_open_breaker_skips_the_dataset_and_spares_the_rest() {
        let mut cloud = cloud();
        let mut service =
            CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        cloud.step();
        service.force_breaker_open(Dataset::Advisor, cloud.ticks());
        let report = service.collect_round(&cloud).unwrap();
        assert_eq!(report.health.advisor.status, DatasetStatus::Skipped);
        assert_eq!(report.stats.advisor_records, 0);
        assert!(report.stats.sps_records > 0, "sps unaffected");
        assert!(report.stats.price_records > 0, "price unaffected");
        assert!(report.health.is_degraded());
        assert_eq!(report.stats.degraded_rounds, 1);
    }

    #[test]
    fn rounds_feed_metrics_journal_and_health_report() {
        use spotlake_obs::Readiness;
        let mut cloud = cloud();
        let config = CollectorConfig {
            faults: Some(FaultPlan::uniform(7, 0.15)),
            ..CollectorConfig::default()
        };
        let mut service = CollectorService::new(cloud.catalog(), config).unwrap();
        assert!(
            service.metrics().is_empty(),
            "nothing before the first round"
        );
        assert!(service.journal().is_empty());
        let stats = service.run(&mut cloud, 10).unwrap();
        assert_eq!(service.stats(), stats, "totals accumulate across rounds");

        let text = service.metrics().render();
        assert!(text.contains("spotlake_collector_rounds_total 10"));
        assert!(text.contains("spotlake_collector_breaker_state{dataset=\"sps\"}"));
        assert!(text.contains("spotlake_collector_round_ops_bucket{dataset=\"advisor\""));
        assert!(text.contains("spotlake_collector_unique_queries_used{account="));
        assert!(
            text.contains("spotlake_api_faults_injected_total{"),
            "a 15% fault rate over 10 rounds must inject something"
        );

        let journal = service.journal().render();
        assert_eq!(
            journal.matches("\"kind\":\"span\"").count(),
            10,
            "one round span per round"
        );
        assert!(journal.contains("\"dataset\":\"price\""));

        // A clean service reports ready; forcing a breaker open degrades
        // exactly that dataset's component.
        let report = service.health_report();
        assert_eq!(report.components.len(), 4, "3 datasets + dead letters");
        service.force_breaker_open(Dataset::Advisor, cloud.ticks());
        let report = service.health_report();
        assert_eq!(report.overall(), Readiness::Degraded);
        let advisor = report
            .components
            .iter()
            .find(|c| c.name == "collector/advisor")
            .unwrap();
        assert_eq!(advisor.readiness, Readiness::Degraded);
        assert!(advisor.detail.contains("breaker open"));
    }

    #[test]
    fn same_seed_runs_render_identical_metrics_and_journals() {
        let run = || {
            let mut cloud = cloud();
            let config = CollectorConfig {
                faults: Some(FaultPlan::uniform(99, 0.2)),
                ..CollectorConfig::default()
            };
            let mut service = CollectorService::new(cloud.catalog(), config).unwrap();
            service.run(&mut cloud, 15).unwrap();
            (
                service.metrics().render(),
                service.journal().render(),
                service.database().metrics().render(),
            )
        };
        let (m1, j1, s1) = run();
        let (m2, j2, s2) = run();
        assert_eq!(m1, m2, "collector metrics must be byte-identical");
        assert_eq!(j1, j2, "journals must be byte-identical");
        assert_eq!(s1, s2, "store metrics must be byte-identical");
    }

    #[test]
    fn quality_tracks_coverage_and_exports_gauges() {
        let mut cloud = cloud();
        let mut service =
            CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        service.run(&mut cloud, 5).unwrap();
        let report = service.quality_report();
        assert_eq!(report.rounds, 5);
        assert_eq!(report.tick, cloud.ticks());
        assert_eq!(report.datasets.len(), 3);
        let sps = report.datasets.iter().find(|d| d.dataset == "sps").unwrap();
        // 2 types × 6 AZs.
        assert_eq!(sps.keys_tracked, 12);
        assert_eq!(sps.keys_stale, 0, "a clean run leaves nothing stale");
        assert_eq!(sps.gaps, 0);
        assert_eq!(sps.min_coverage, 1.0);
        let advisor = report
            .datasets
            .iter()
            .find(|d| d.dataset == "advisor")
            .unwrap();
        assert_eq!(advisor.keys_tracked, 4, "2 types × 2 regions");
        let price = report
            .datasets
            .iter()
            .find(|d| d.dataset == "price")
            .unwrap();
        assert_eq!(
            price.keys_stale, 0,
            "sweeps refresh unchanged price keys — no false staleness"
        );
        assert_eq!(price.gaps, 0);

        let text = service.metrics().render();
        assert!(text.contains("spotlake_archive_keys_tracked{dataset=\"sps\"} 12"));
        assert!(text.contains("spotlake_archive_min_coverage{dataset=\"sps\"} 1"));
        assert!(text.contains("spotlake_archive_gaps_total{dataset=\"price\"} 0"));
    }

    #[test]
    fn skipped_dataset_rounds_show_as_gaps_and_staleness() {
        let mut cloud = cloud();
        let mut service =
            CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        service.run(&mut cloud, 3).unwrap();
        // Force the advisor breaker open: the next rounds skip it.
        service.force_breaker_open(Dataset::Advisor, cloud.ticks());
        service.run(&mut cloud, 2).unwrap();
        let report = service.quality_report();
        let advisor = report
            .datasets
            .iter()
            .find(|d| d.dataset == "advisor")
            .unwrap();
        assert!(advisor.keys_stale > 0, "skipped rounds leave keys stale");
        assert!(advisor.max_staleness >= 2);
        assert!(
            advisor.min_coverage < 1.0,
            "coverage drops below 1: {}",
            advisor.min_coverage
        );
        assert!(!advisor.worst.is_empty());
        assert!(advisor.worst[0].staleness >= advisor.worst.last().unwrap().staleness);
        // SPS kept collecting: unaffected.
        let sps = report.datasets.iter().find(|d| d.dataset == "sps").unwrap();
        assert_eq!(sps.keys_stale, 0);
    }

    #[test]
    fn health_is_reported_per_round() {
        let mut cloud = cloud();
        let mut service =
            CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        assert!(service.last_health().is_none());
        cloud.step();
        service.collect_once(&cloud).unwrap();
        let health = service.last_health().unwrap();
        assert_eq!(health.tick, cloud.ticks());
        assert_eq!(health.sps.status, DatasetStatus::Ok);
        assert_eq!(health.advisor.status, DatasetStatus::Ok);
        assert_eq!(health.price.status, DatasetStatus::Ok);
        assert_eq!(health.dead_letter_depth, 0);
    }

    fn wal_tempdir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spotlake-svc-wal-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn durable_config(dir: &std::path::Path) -> CollectorConfig {
        CollectorConfig {
            wal_dir: Some(dir.to_owned()),
            checkpoint_every: 2,
            ..CollectorConfig::default()
        }
    }

    #[test]
    fn durable_service_journals_rounds_and_survives_restart() {
        let dir = wal_tempdir("restart");
        let mut cloud = cloud();
        let mut service = CollectorService::new(cloud.catalog(), durable_config(&dir)).unwrap();
        assert!(
            !service.recovery_report().unwrap().recovered_anything(),
            "fresh directory has nothing to recover"
        );
        service.run(&mut cloud, 3).unwrap();
        let committed = service.database().point_count();
        let wal = service.wal_stats().unwrap();
        assert!(wal.frames_appended >= 9, "3 rounds × 3 datasets");
        assert!(wal.checkpoints >= 1, "checkpoint_every=2 fired");
        assert!(!wal.dead);
        drop(service);

        // A new service over the same directory recovers every point.
        let mut restarted = CollectorService::new(cloud.catalog(), durable_config(&dir)).unwrap();
        let report = restarted.recovery_report().unwrap();
        assert_eq!(report.point_count, committed);
        assert_eq!(restarted.database().point_count(), committed);
        // The restarted service's health shows it as recovering until a
        // round completes, then ready again.
        let health = restarted.health_report();
        let wal_component = health
            .components
            .iter()
            .find(|c| c.name == "store/wal")
            .unwrap();
        assert!(
            wal_component.detail.contains("recovering"),
            "{}",
            wal_component.detail
        );
        cloud.step();
        restarted.collect_once(&cloud).unwrap();
        assert!(
            restarted.database().point_count() > committed,
            "collection continues after recovery"
        );
        let health = restarted.health_report();
        let wal_component = health
            .components
            .iter()
            .find(|c| c.name == "store/wal")
            .unwrap();
        assert!(!wal_component.detail.contains("recovering"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_exports_metrics_and_a_trace_span() {
        let dir = wal_tempdir("recovery-obs");
        let mut cloud = cloud();
        let mut service = CollectorService::new(cloud.catalog(), durable_config(&dir)).unwrap();
        service.run(&mut cloud, 1).unwrap();
        drop(service);

        let restarted = CollectorService::new(cloud.catalog(), durable_config(&dir)).unwrap();
        let metrics = restarted.metrics().render();
        assert!(metrics.contains("spotlake_recovery_frames_replayed_total"));
        assert!(metrics.contains("spotlake_recovery_point_count"));
        let journal = restarted.journal().render();
        assert!(journal.contains("recovery"), "{journal}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_series_resume_quality_tracking_from_the_crash_tick() {
        let dir = wal_tempdir("quality");
        let mut cloud = cloud();
        let mut service = CollectorService::new(cloud.catalog(), durable_config(&dir)).unwrap();
        service.run(&mut cloud, 2).unwrap();
        drop(service);

        // Simulate downtime: the cloud advances while the collector is dead.
        for _ in 0..3 {
            cloud.step();
        }
        let mut restarted = CollectorService::new(cloud.catalog(), durable_config(&dir)).unwrap();
        cloud.step();
        restarted.collect_once(&cloud).unwrap();
        let report = restarted.quality_report();
        let sps = report.datasets.iter().find(|d| d.dataset == "sps").unwrap();
        assert!(
            sps.gaps > 0,
            "the outage shows up as a coverage gap, not a blank slate"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
