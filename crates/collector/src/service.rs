//! The collection service: planning, scheduling, and storage wiring.

use crate::accounts::AccountPool;
use crate::advisor_collector::AdvisorCollector;
use crate::error::CollectError;
use crate::planner::{PlanStats, PlannerStrategy, QueryPlanner};
use crate::price_collector::PriceCollector;
use crate::sps_collector::SpsCollector;
use crate::{ADVISOR_TABLE, PRICE_TABLE, SPS_TABLE};
use spotlake_cloud_sim::SimCloud;
use spotlake_timestream::{Database, TableOptions, WriteMode};
use spotlake_types::Catalog;

/// Collector configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Packing strategy for the query plan.
    pub strategy: PlannerStrategy,
    /// Size of the account pool; `None` sizes it to exactly cover the plan.
    pub accounts: Option<usize>,
    /// Target capacity used in placement-score queries.
    pub target_capacity: u32,
    /// Restrict collection to these instance type names (`None` = all).
    pub type_filter: Option<Vec<String>>,
    /// Collect the placement-score dataset.
    pub collect_sps: bool,
    /// Collect the advisor dataset.
    pub collect_advisor: bool,
    /// Collect the price dataset.
    pub collect_price: bool,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            strategy: PlannerStrategy::default(),
            accounts: None,
            target_capacity: 1,
            type_filter: None,
            collect_sps: true,
            collect_advisor: true,
            collect_price: true,
        }
    }
}

/// Counters from collection rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Placement-score records written.
    pub sps_records: usize,
    /// Advisor records written (score + savings).
    pub advisor_records: usize,
    /// Price-change records written.
    pub price_records: usize,
    /// Total records actually stored (change-point tables skip repeats).
    pub records_written: usize,
    /// Placement-score queries issued.
    pub queries_issued: usize,
    /// Collection rounds executed.
    pub rounds: usize,
}

impl CollectStats {
    fn absorb(&mut self, other: CollectStats) {
        self.sps_records += other.sps_records;
        self.advisor_records += other.advisor_records;
        self.price_records += other.price_records;
        self.records_written += other.records_written;
        self.queries_issued += other.queries_issued;
        self.rounds += other.rounds;
    }
}

/// The SpotLake collection service: owns the archive database and the three
/// dataset collectors.
#[derive(Debug)]
pub struct CollectorService {
    db: Database,
    sps: Option<SpsCollector>,
    advisor: Option<AdvisorCollector>,
    price: Option<PriceCollector>,
    plan_stats: PlanStats,
}

impl CollectorService {
    /// Plans queries for `catalog`, sizes the account pool, and creates the
    /// archive tables.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::InsufficientAccounts`] when an explicit
    /// account pool is too small for the plan.
    pub fn new(catalog: &Catalog, config: CollectorConfig) -> Result<Self, CollectError> {
        let planner = QueryPlanner::new(config.strategy);
        let (plan, plan_stats) =
            planner.plan_with_stats(catalog, config.type_filter.as_deref());

        let sps = if config.collect_sps {
            let pool_size = config
                .accounts
                .unwrap_or_else(|| AccountPool::required_accounts(plan.len()));
            let pool = AccountPool::with_size(pool_size);
            Some(SpsCollector::new(plan, &pool, config.target_capacity)?)
        } else {
            None
        };
        let advisor = config.collect_advisor.then(|| {
            let c = AdvisorCollector::new();
            match &config.type_filter {
                Some(f) => c.with_type_filter(f.clone()),
                None => c,
            }
        });
        let price = config.collect_price.then(|| {
            let c = PriceCollector::new();
            match &config.type_filter {
                Some(f) => c.with_type_filter(f.clone()),
                None => c,
            }
        });

        let mut db = Database::new();
        db.create_table(
            SPS_TABLE,
            TableOptions {
                mode: WriteMode::Dense,
                retention: None,
            },
        )
        .expect("fresh database");
        db.create_table(
            ADVISOR_TABLE,
            TableOptions {
                mode: WriteMode::ChangePoint,
                retention: None,
            },
        )
        .expect("fresh database");
        db.create_table(
            PRICE_TABLE,
            TableOptions {
                mode: WriteMode::ChangePoint,
                retention: None,
            },
        )
        .expect("fresh database");

        Ok(CollectorService {
            db,
            sps,
            advisor,
            price,
            plan_stats,
        })
    }

    /// The query plan's statistics (Figure 1's headline numbers).
    pub fn plan_stats(&self) -> PlanStats {
        self.plan_stats
    }

    /// The archive database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the archive database.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Consumes the service, returning the archive.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Runs one collection round against the cloud's current state.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] if any collector or store write fails.
    pub fn collect_once(&mut self, cloud: &SimCloud) -> Result<CollectStats, CollectError> {
        let mut stats = CollectStats {
            rounds: 1,
            ..CollectStats::default()
        };
        if let Some(sps) = &mut self.sps {
            let records = sps.collect(cloud)?;
            stats.sps_records = records.len();
            stats.queries_issued = sps.query_count();
            stats.records_written += self.db.write(SPS_TABLE, &records)?;
        }
        if let Some(advisor) = &self.advisor {
            let records = advisor.collect(cloud)?;
            stats.advisor_records = records.len();
            stats.records_written += self.db.write(ADVISOR_TABLE, &records)?;
        }
        if let Some(price) = &mut self.price {
            let records = price.collect(cloud)?;
            stats.price_records = records.len();
            stats.records_written += self.db.write(PRICE_TABLE, &records)?;
        }
        Ok(stats)
    }

    /// Steps the cloud and collects, `rounds` times — the periodic
    /// collection loop of Section 4.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] if any round fails.
    pub fn run(
        &mut self,
        cloud: &mut SimCloud,
        rounds: u64,
    ) -> Result<CollectStats, CollectError> {
        let mut total = CollectStats::default();
        for _ in 0..rounds {
            cloud.step();
            total.absorb(self.collect_once(cloud)?);
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_cloud_sim::SimConfig;
    use spotlake_timestream::Query;
    use spotlake_types::CatalogBuilder;

    fn cloud() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 3)
            .region("eu-test-1", 3)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        SimCloud::new(b.build().unwrap(), SimConfig::default())
    }

    #[test]
    fn full_round_populates_all_tables() {
        let mut cloud = cloud();
        let mut service = CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        let stats = service.run(&mut cloud, 3).unwrap();
        assert_eq!(stats.rounds, 3);
        assert!(stats.sps_records > 0);
        assert!(stats.advisor_records > 0);
        assert!(stats.price_records > 0);

        let db = service.database();
        // 2 types × 6 AZs × 3 rounds dense sps records.
        assert_eq!(db.query(SPS_TABLE, &Query::measure("sps")).unwrap().len(), 36);
        // Advisor table is change-point: repeats within a week are skipped.
        let if_rows = db.query(ADVISOR_TABLE, &Query::measure("if_score")).unwrap();
        assert_eq!(if_rows.len(), 4, "one change-point per (type, region)");
        assert!(!db.query(PRICE_TABLE, &Query::measure("spot_price")).unwrap().is_empty());
    }

    #[test]
    fn disabled_datasets_are_skipped() {
        let mut cloud = cloud();
        let config = CollectorConfig {
            collect_sps: false,
            collect_advisor: false,
            ..CollectorConfig::default()
        };
        let mut service = CollectorService::new(cloud.catalog(), config).unwrap();
        cloud.step();
        let stats = service.collect_once(&cloud).unwrap();
        assert_eq!(stats.sps_records, 0);
        assert_eq!(stats.advisor_records, 0);
        assert!(stats.price_records > 0);
    }

    #[test]
    fn explicit_small_pool_rejected() {
        let cloud = cloud();
        let config = CollectorConfig {
            accounts: Some(0),
            ..CollectorConfig::default()
        };
        assert!(matches!(
            CollectorService::new(cloud.catalog(), config),
            Err(CollectError::InsufficientAccounts { .. })
        ));
    }

    #[test]
    fn type_filter_flows_through() {
        let mut cloud = cloud();
        let config = CollectorConfig {
            type_filter: Some(vec!["m5.large".into()]),
            ..CollectorConfig::default()
        };
        let mut service = CollectorService::new(cloud.catalog(), config).unwrap();
        cloud.step();
        service.collect_once(&cloud).unwrap();
        let rows = service
            .database()
            .query(SPS_TABLE, &Query::measure("sps"))
            .unwrap();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| {
            r.dimensions
                .iter()
                .any(|(k, v)| k == "instance_type" && v == "m5.large")
        }));
    }

    #[test]
    fn plan_stats_reported() {
        let cloud = cloud();
        let service = CollectorService::new(cloud.catalog(), CollectorConfig::default()).unwrap();
        let stats = service.plan_stats();
        assert!(stats.planned_queries > 0);
        assert!(stats.improvement() >= 1.0);
    }
}
