//! Placement-score query planning via bin packing (Section 3.2).
//!
//! For each instance type, the planner builds the paper's "nested
//! dictionary" — region → number of supporting availability zones — and
//! packs regions into queries so that each query's total AZ count stays
//! within the 10-result API cap. The strategy is pluggable so the ablation
//! bench can compare the exact solver against the heuristics and the naive
//! one-region-per-query baseline.

use spotlake_binpack::{
    best_fit_decreasing, first_fit_decreasing, lower_bound_l2, BranchAndBound, Item,
};
use spotlake_cloud_api::MAX_RESULTS;
use spotlake_types::Catalog;

/// Which packing algorithm the planner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerStrategy {
    /// Exact branch-and-bound — the stand-in for the paper's CBC MIP
    /// solver.
    #[default]
    Exact,
    /// First-fit decreasing.
    Ffd,
    /// Best-fit decreasing.
    Bfd,
    /// One region per query — the unoptimized baseline whose full-catalog
    /// count is the paper's 9,299.
    Naive,
}

impl PlannerStrategy {
    /// All strategies, for ablation sweeps.
    pub const ALL: [PlannerStrategy; 4] = [
        PlannerStrategy::Exact,
        PlannerStrategy::Ffd,
        PlannerStrategy::Bfd,
        PlannerStrategy::Naive,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PlannerStrategy::Exact => "exact",
            PlannerStrategy::Ffd => "ffd",
            PlannerStrategy::Bfd => "bfd",
            PlannerStrategy::Naive => "naive",
        }
    }
}

/// One planned placement-score query: a single instance type, several
/// regions, and the expected number of per-AZ results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedQuery {
    /// Instance type name.
    pub instance_type: String,
    /// Region codes packed into this query.
    pub regions: Vec<String>,
    /// Total supporting AZ count across the packed regions (≤ 10).
    pub expected_results: u32,
}

/// Statistics of a plan, mirroring the paper's Figure 1 numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// Queries in the optimized plan.
    pub planned_queries: usize,
    /// Queries the naive per-(type, region) scan would need — counts every
    /// (type, supported region) pair.
    pub naive_queries: usize,
    /// (type, region) pairs covered.
    pub pairs_covered: usize,
}

impl PlanStats {
    /// The improvement factor over the naive scan (the paper reports
    /// ≈ 4.5×... relative to the all-pairs 9,299).
    pub fn improvement(&self) -> f64 {
        if self.planned_queries == 0 {
            return 1.0;
        }
        self.naive_queries as f64 / self.planned_queries as f64
    }
}

/// The query planner.
#[derive(Debug, Clone)]
pub struct QueryPlanner {
    strategy: PlannerStrategy,
    capacity: u32,
}

impl Default for QueryPlanner {
    fn default() -> Self {
        QueryPlanner {
            strategy: PlannerStrategy::default(),
            capacity: MAX_RESULTS as u32,
        }
    }
}

impl QueryPlanner {
    /// Creates a planner with the given strategy and the API's 10-result
    /// bin capacity.
    pub fn new(strategy: PlannerStrategy) -> Self {
        QueryPlanner {
            strategy,
            capacity: MAX_RESULTS as u32,
        }
    }

    /// Overrides the bin capacity (tests / sensitivity sweeps).
    pub fn with_capacity(mut self, capacity: u32) -> Self {
        self.capacity = capacity;
        self
    }

    /// Plans queries for every instance type in the catalog (optionally
    /// restricted to `type_filter` names).
    pub fn plan(&self, catalog: &Catalog, type_filter: Option<&[String]>) -> Vec<PlannedQuery> {
        let mut plan = Vec::new();
        for ty in catalog.type_ids() {
            let name = catalog.ty(ty).name();
            if let Some(filter) = type_filter {
                if !filter.contains(&name) {
                    continue;
                }
            }
            let support = catalog.support_map(ty);
            if support.is_empty() {
                continue;
            }
            let items: Vec<Item<String>> = support
                .iter()
                .map(|(&region, &azs)| {
                    // A region with more supporting AZs than the cap still
                    // fits in one query; extra scores are truncated.
                    Item::new(
                        catalog.region(region).code().to_owned(),
                        azs.min(self.capacity),
                    )
                })
                .collect();

            let groups: Vec<Vec<Item<String>>> = match self.strategy {
                PlannerStrategy::Naive => items.into_iter().map(|i| vec![i]).collect(),
                PlannerStrategy::Ffd => first_fit_decreasing(&items, self.capacity)
                    .expect("sizes clamped to capacity")
                    .bins()
                    .to_vec(),
                PlannerStrategy::Bfd => best_fit_decreasing(&items, self.capacity)
                    .expect("sizes clamped to capacity")
                    .bins()
                    .to_vec(),
                PlannerStrategy::Exact => BranchAndBound::new()
                    .pack(&items, self.capacity)
                    .expect("sizes clamped to capacity")
                    .bins()
                    .to_vec(),
            };
            for group in groups {
                let expected_results = group.iter().map(|i| i.size).sum();
                plan.push(PlannedQuery {
                    instance_type: name.clone(),
                    regions: group.into_iter().map(|i| i.key).collect(),
                    expected_results,
                });
            }
        }
        plan
    }

    /// Plans and summarizes.
    pub fn plan_with_stats(
        &self,
        catalog: &Catalog,
        type_filter: Option<&[String]>,
    ) -> (Vec<PlannedQuery>, PlanStats) {
        let plan = self.plan(catalog, type_filter);
        let pairs_covered = plan.iter().map(|q| q.regions.len()).sum();
        let stats = PlanStats {
            planned_queries: plan.len(),
            naive_queries: pairs_covered,
            pairs_covered,
        };
        (plan, stats)
    }

    /// The (Martello–Toth L2) lower bound on the plan size for this catalog.
    pub fn plan_lower_bound(&self, catalog: &Catalog) -> usize {
        let mut total = 0;
        for ty in catalog.type_ids() {
            let support = catalog.support_map(ty);
            let items: Vec<Item<u16>> = support
                .iter()
                .map(|(&region, &azs)| Item::new(region.0, azs.min(self.capacity)))
                .collect();
            total += lower_bound_l2(&items, self.capacity);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_types::CatalogBuilder;

    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 4)
            .region("eu-test-1", 3)
            .region("ap-test-1", 3)
            .region("sa-test-1", 2)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        b.build().unwrap()
    }

    #[test]
    fn exact_plan_packs_regions() {
        let c = catalog();
        let (plan, stats) = QueryPlanner::new(PlannerStrategy::Exact).plan_with_stats(&c, None);
        // Per type: sizes {4,3,3,2} with capacity 10 -> 2 bins.
        assert_eq!(stats.planned_queries, 4);
        assert_eq!(stats.naive_queries, 8);
        assert_eq!(stats.improvement(), 2.0);
        for q in &plan {
            assert!(q.expected_results <= 10);
            assert!(!q.regions.is_empty());
        }
    }

    #[test]
    fn naive_plan_is_one_region_per_query() {
        let c = catalog();
        let (plan, stats) = QueryPlanner::new(PlannerStrategy::Naive).plan_with_stats(&c, None);
        assert_eq!(stats.planned_queries, 8);
        assert!(plan.iter().all(|q| q.regions.len() == 1));
    }

    #[test]
    fn type_filter_restricts_plan() {
        let c = catalog();
        let plan = QueryPlanner::default().plan(&c, Some(&["m5.large".to_string()]));
        assert!(plan.iter().all(|q| q.instance_type == "m5.large"));
        assert!(!plan.is_empty());
        let none = QueryPlanner::default().plan(&c, Some(&[]));
        assert!(none.is_empty());
    }

    #[test]
    fn every_pair_covered_exactly_once() {
        let c = catalog();
        for strategy in PlannerStrategy::ALL {
            let plan = QueryPlanner::new(strategy).plan(&c, None);
            let mut pairs: Vec<(String, String)> = plan
                .iter()
                .flat_map(|q| {
                    q.regions
                        .iter()
                        .map(|r| (q.instance_type.clone(), r.clone()))
                })
                .collect();
            pairs.sort();
            let before = pairs.len();
            pairs.dedup();
            assert_eq!(pairs.len(), before, "{strategy:?} duplicated a pair");
            assert_eq!(pairs.len(), 8, "{strategy:?} missed a pair");
        }
    }

    #[test]
    fn exact_at_least_lower_bound_and_at_most_ffd() {
        let c = catalog();
        let lb = QueryPlanner::default().plan_lower_bound(&c);
        let exact = QueryPlanner::new(PlannerStrategy::Exact)
            .plan(&c, None)
            .len();
        let ffd = QueryPlanner::new(PlannerStrategy::Ffd).plan(&c, None).len();
        assert!(exact >= lb);
        assert!(exact <= ffd);
    }

    #[test]
    fn oversized_region_is_clamped_not_fatal() {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 12).instance_type("m5.large", 0.096);
        let c = b.build().unwrap();
        let plan = QueryPlanner::default().plan(&c, None);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].expected_results, 10, "clamped to the result cap");
    }
}
