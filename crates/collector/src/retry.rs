//! Retry policy and circuit breakers for the resilient collection loop.
//!
//! Transient API failures (throttling, timeouts, damaged scrape bodies)
//! are retried immediately within the round, up to a budget; queries that
//! exhaust it go to the service's dead-letter queue with an exponential,
//! deterministically jittered backoff denominated in *simulation ticks*.
//! A circuit breaker per dataset stops hammering a surface that keeps
//! failing and probes it again after a cooldown.

use spotlake_types::hash::hash01;

/// Retry budget and backoff schedule. Backoff is measured in simulation
/// ticks (one tick = one collection round), and jitter is a deterministic
/// hash of the scope — two runs with the same seed retry identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per operation within one round, including the first.
    pub max_attempts: u32,
    /// Base backoff in ticks (before a dead-lettered query is retried).
    pub base_backoff_ticks: u64,
    /// Cap on the exponential backoff, in ticks.
    pub max_backoff_ticks: u64,
    /// Seed for deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ticks: 1,
            max_backoff_ticks: 16,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before re-attempting `scope` after its `failures`-th
    /// consecutive failure (1-based): capped exponential plus a
    /// deterministic jitter of up to one base interval.
    pub fn backoff_ticks(&self, scope: &str, failures: u32) -> u64 {
        let exp = self
            .base_backoff_ticks
            .saturating_mul(1u64 << failures.saturating_sub(1).min(10))
            .min(self.max_backoff_ticks);
        let jitter = (hash01(&[
            "retry-jitter",
            scope,
            &failures.to_string(),
            &self.seed.to_string(),
        ]) * (self.base_backoff_ticks + 1) as f64) as u64;
        (exp + jitter).min(self.max_backoff_ticks).max(1)
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are short-circuited until the cooldown elapses.
    Open,
    /// One probe request is allowed through; its outcome decides.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name, used in trace journals and health reports.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// Numeric encoding for the breaker-state gauge: 0 closed, 1
    /// half-open, 2 open.
    pub fn as_gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// A per-dataset circuit breaker (closed → open → half-open).
///
/// `failure_threshold` consecutive dataset failures open the breaker;
/// after `cooldown_ticks` it half-opens and lets one round probe the
/// surface. A successful probe closes it, a failed probe re-opens it for
/// another cooldown.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    failure_threshold: u32,
    cooldown_ticks: u64,
    opened_at: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(failure_threshold: u32, cooldown_ticks: u64) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            failure_threshold: failure_threshold.max(1),
            cooldown_ticks,
            opened_at: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a request may proceed at `tick`. An open breaker whose
    /// cooldown has elapsed transitions to half-open and admits the probe.
    pub fn allow(&mut self, tick: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if tick >= self.opened_at.saturating_add(self.cooldown_ticks) {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful round: closes the breaker and clears the
    /// failure streak.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Records a failed round at `tick`. Opens the breaker when the
    /// streak reaches the threshold, or immediately when a half-open
    /// probe fails.
    pub fn record_failure(&mut self, tick: u64) {
        self.consecutive_failures += 1;
        if self.state == BreakerState::HalfOpen
            || self.consecutive_failures >= self.failure_threshold
        {
            self.state = BreakerState::Open;
            self.opened_at = tick;
        }
    }

    /// Forces the breaker open at `tick` (operator kill switch; also used
    /// by the chaos tests).
    pub fn force_open(&mut self, tick: u64) {
        self.state = BreakerState::Open;
        self.consecutive_failures = self.failure_threshold;
        self.opened_at = tick;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_backoff_ticks: 2,
            max_backoff_ticks: 12,
            seed: 9,
        };
        let b1 = p.backoff_ticks("q", 1);
        let b3 = p.backoff_ticks("q", 3);
        let b9 = p.backoff_ticks("q", 9);
        assert!(b1 >= 1);
        assert!(b3 >= b1, "backoff must not shrink: {b1} -> {b3}");
        assert_eq!(b9, 12, "deep failure streaks hit the cap");
        // Deterministic: same inputs, same backoff.
        assert_eq!(p.backoff_ticks("q", 2), p.backoff_ticks("q", 2));
    }

    #[test]
    fn breaker_walks_closed_open_halfopen() {
        let mut b = CircuitBreaker::new(3, 5);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(0);
        b.record_failure(1);
        assert!(b.allow(2), "below threshold stays closed");
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(3), "open short-circuits");
        assert!(!b.allow(6), "cooldown not yet elapsed");
        assert!(b.allow(7), "cooldown elapsed: half-open probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure(7);
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        assert!(b.allow(12));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(13));
    }

    #[test]
    fn force_open_blocks_until_cooldown() {
        let mut b = CircuitBreaker::new(3, 4);
        b.force_open(10);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(11));
        assert!(b.allow(14));
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }
}
