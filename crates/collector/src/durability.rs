//! Durable-archive wiring: startup recovery, the open WAL, checkpoint
//! cadence, and dead-letter persistence.
//!
//! The collector owns *when* durability happens (commit each round's
//! batches, checkpoint every N rounds, persist the dead-letter queue
//! alongside the log); the mechanics — frames, checksums, atomic
//! rotation, replay — live in `spotlake_timestream`.

use crate::service::DeadLetter;
use spotlake_timestream::{
    atomic_write, recover, Database, IoFaultPlan, RecoveryReport, TsError, Wal,
};
use std::path::{Path, PathBuf};

const DEAD_LETTER_MAGIC: &[u8; 4] = b"SPDL";
const DEAD_LETTER_VERSION: u8 = 1;

/// The collector's durability state: the open WAL, the directory it
/// lives in, the checkpoint cadence, and what recovery found at startup.
#[derive(Debug)]
pub(crate) struct Durability {
    pub(crate) dir: PathBuf,
    pub(crate) wal: Wal,
    pub(crate) checkpoint_every: u64,
    pub(crate) rounds_since_checkpoint: u64,
    pub(crate) recovery: RecoveryReport,
}

impl Durability {
    /// Recovers the archive from `dir` (checkpoint + WAL replay, torn
    /// tail truncated), opens the log for appending, and compacts the
    /// replayed prefix into a fresh checkpoint so the log does not grow
    /// across restarts.
    pub(crate) fn open(
        dir: &Path,
        io_faults: Option<IoFaultPlan>,
        checkpoint_every: u64,
    ) -> Result<(Database, Durability), TsError> {
        let (db, recovery) = recover(dir)?;
        let mut wal = Wal::open(dir)?;
        if let Some(plan) = io_faults.filter(|p| !p.is_zero()) {
            wal.set_faults(plan);
        }
        if recovery.frames_replayed > 0 {
            match wal.checkpoint(&db) {
                // A transient fault just postpones compaction to the
                // round cadence; the replayed frames are still on disk.
                Ok(()) | Err(TsError::WalFault { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok((
            db,
            Durability {
                dir: dir.to_owned(),
                wal,
                checkpoint_every: checkpoint_every.max(1),
                rounds_since_checkpoint: 0,
                recovery,
            },
        ))
    }
}

/// Atomically persists the dead-letter queue next to the WAL, so queries
/// deferred by the breaker/dead-letter logic survive a restart.
///
/// Format: `magic "SPDL" | u8 version | u32 count | entries | u64 fnv`,
/// each entry `u64 shard | u64 query | u32 attempts | u64 eligible_at`.
pub(crate) fn save_dead_letters(dir: &Path, letters: &[DeadLetter]) -> Result<(), TsError> {
    let mut out = Vec::with_capacity(9 + letters.len() * 28);
    out.extend_from_slice(DEAD_LETTER_MAGIC);
    out.push(DEAD_LETTER_VERSION);
    out.extend_from_slice(&(letters.len() as u32).to_le_bytes());
    for d in letters {
        out.extend_from_slice(&(d.shard as u64).to_le_bytes());
        out.extend_from_slice(&(d.query as u64).to_le_bytes());
        out.extend_from_slice(&d.attempts.to_le_bytes());
        out.extend_from_slice(&d.eligible_at.to_le_bytes());
    }
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    // Temp + fsync + rename via the shared helper: a rename without the
    // fsync (the old code here) can surface as an empty file after a
    // power loss, which is exactly what the durability lint now rejects.
    atomic_write(&dead_letter_path(dir), &out)
}

/// Loads the persisted dead-letter queue. A missing, truncated, or
/// corrupt file yields an empty queue — dead letters are an optimization
/// (deferred retries), so a damaged file must never block recovery.
pub(crate) fn load_dead_letters(dir: &Path) -> Vec<DeadLetter> {
    let Ok(bytes) = std::fs::read(dead_letter_path(dir)) else {
        return Vec::new();
    };
    parse_dead_letters(&bytes).unwrap_or_default()
}

fn parse_dead_letters(bytes: &[u8]) -> Option<Vec<DeadLetter>> {
    if bytes.len() < 17 || &bytes[..4] != DEAD_LETTER_MAGIC || bytes[4] != DEAD_LETTER_VERSION {
        return None;
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    if fnv64(body) != u64::from_le_bytes(trailer.try_into().ok()?) {
        return None;
    }
    let count = u32::from_le_bytes(body[5..9].try_into().ok()?) as usize;
    let entries = &body[9..];
    if entries.len() != count * 28 {
        return None;
    }
    let mut letters = Vec::with_capacity(count);
    for e in entries.chunks_exact(28) {
        letters.push(DeadLetter {
            shard: u64::from_le_bytes(e[..8].try_into().ok()?) as usize,
            query: u64::from_le_bytes(e[8..16].try_into().ok()?) as usize,
            attempts: u32::from_le_bytes(e[16..20].try_into().ok()?),
            eligible_at: u64::from_le_bytes(e[20..28].try_into().ok()?),
        });
    }
    Some(letters)
}

fn dead_letter_path(dir: &Path) -> PathBuf {
    dir.join("deadletters.bin")
}

/// FNV-1a, the workspace's stock dependency-free checksum.
fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spotlake-dlq-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn dead_letters_roundtrip() {
        let dir = tempdir("roundtrip");
        let letters = vec![
            DeadLetter {
                shard: 3,
                query: 17,
                attempts: 2,
                eligible_at: 9,
            },
            DeadLetter {
                shard: 0,
                query: 1,
                attempts: 4,
                eligible_at: 30,
            },
        ];
        save_dead_letters(&dir, &letters).unwrap();
        let loaded = load_dead_letters(&dir);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].shard, 3);
        assert_eq!(loaded[0].query, 17);
        assert_eq!(loaded[0].attempts, 2);
        assert_eq!(loaded[0].eligible_at, 9);
        assert_eq!(loaded[1].eligible_at, 30);
        // Saving an empty queue truncates the persisted one.
        save_dead_letters(&dir, &[]).unwrap();
        assert!(load_dead_letters(&dir).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_missing_files_yield_an_empty_queue() {
        let dir = tempdir("corrupt");
        assert!(load_dead_letters(&dir).is_empty(), "missing file");
        save_dead_letters(
            &dir,
            &[DeadLetter {
                shard: 1,
                query: 2,
                attempts: 3,
                eligible_at: 4,
            }],
        )
        .unwrap();
        let path = dead_letter_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            bytes[i] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                load_dead_letters(&dir).is_empty(),
                "flip at byte {i} must not parse"
            );
            bytes[i] ^= 0xFF;
        }
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(load_dead_letters(&dir).is_empty(), "truncated file");
        std::fs::remove_dir_all(&dir).ok();
    }
}
