//! Per-round health reporting for the collection pipeline.
//!
//! A round no longer either fully succeeds or returns `Err`: each dataset
//! is isolated, so an advisor outage must not discard the round's SPS and
//! price data. [`RoundHealth`] is the structured record of what actually
//! happened — per-dataset status, record and retry counts, and the
//! dead-letter queue depth after the round.

/// The three archived datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Spot placement scores.
    Sps,
    /// The scraped advisor page.
    Advisor,
    /// Spot price history.
    Price,
}

impl Dataset {
    /// All datasets, in reporting order.
    pub const ALL: [Dataset; 3] = [Dataset::Sps, Dataset::Advisor, Dataset::Price];

    /// Stable lowercase name, used as a metric label and table name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Sps => "sps",
            Dataset::Advisor => "advisor",
            Dataset::Price => "price",
        }
    }
}

/// Outcome of one dataset within one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DatasetStatus {
    /// Collection is disabled in the configuration.
    #[default]
    Disabled,
    /// Everything collected and stored.
    Ok,
    /// Stored, but some queries failed after retries (dead-lettered) or
    /// succeeded only on retry.
    Degraded,
    /// The circuit breaker was open; the dataset was not attempted.
    Skipped,
    /// The dataset produced nothing this round (retries exhausted).
    Failed,
}

/// One dataset's health within a round.
#[derive(Debug, Clone, Default)]
pub struct DatasetHealth {
    /// What happened.
    pub status: DatasetStatus,
    /// Records stored this round.
    pub records: usize,
    /// Retry attempts spent (API calls beyond each operation's first).
    pub retries: usize,
    /// Queries that failed even after retries.
    pub failed_queries: usize,
    /// The final error, for `Failed` (and the last one seen for
    /// `Degraded`).
    pub error: Option<String>,
}

impl DatasetStatus {
    /// Stable lowercase name, used in trace journals and `/stats` bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            DatasetStatus::Disabled => "disabled",
            DatasetStatus::Ok => "ok",
            DatasetStatus::Degraded => "degraded",
            DatasetStatus::Skipped => "skipped",
            DatasetStatus::Failed => "failed",
        }
    }
}

impl DatasetHealth {
    /// Whether the dataset delivered everything it was asked for.
    pub fn is_healthy(&self) -> bool {
        matches!(self.status, DatasetStatus::Ok | DatasetStatus::Disabled)
    }
}

/// Health record for one collection round.
#[derive(Debug, Clone, Default)]
pub struct RoundHealth {
    /// Simulation tick the round ran at.
    pub tick: u64,
    /// Placement-score dataset health.
    pub sps: DatasetHealth,
    /// Advisor dataset health.
    pub advisor: DatasetHealth,
    /// Price dataset health.
    pub price: DatasetHealth,
    /// Dead-letter queue depth after the round.
    pub dead_letter_depth: usize,
    /// Shard commits refused or failed this round (sharded archive
    /// only): each is one dataset×region batch dropped while every
    /// other shard committed normally.
    pub shards_failed: usize,
}

impl RoundHealth {
    /// Whether any dataset fell short of a clean round.
    pub fn is_degraded(&self) -> bool {
        !(self.sps.is_healthy() && self.advisor.is_healthy() && self.price.is_healthy())
    }

    /// The health entry for `dataset`.
    pub fn dataset(&self, dataset: Dataset) -> &DatasetHealth {
        match dataset {
            Dataset::Sps => &self.sps,
            Dataset::Advisor => &self.advisor,
            Dataset::Price => &self.price,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_reflects_dataset_status() {
        let mut h = RoundHealth::default();
        assert!(!h.is_degraded(), "all-disabled is not degraded");
        h.sps.status = DatasetStatus::Ok;
        h.price.status = DatasetStatus::Ok;
        assert!(!h.is_degraded());
        h.advisor.status = DatasetStatus::Failed;
        assert!(h.is_degraded());
        assert_eq!(h.dataset(Dataset::Advisor).status, DatasetStatus::Failed);
        h.advisor.status = DatasetStatus::Skipped;
        assert!(h.is_degraded(), "a skipped dataset is not a healthy round");
    }
}
