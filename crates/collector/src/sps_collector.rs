//! The placement-score collector.
//!
//! Owns the sharded query plan: each account re-issues its fixed shard of
//! packed queries every collection tick (repeats of a unique query are
//! free), in parallel across accounts.

use crate::accounts::AccountPool;
use crate::error::CollectError;
use crate::planner::PlannedQuery;
use spotlake_cloud_api::{AccountId, SpsClient, SpsRequest};
use spotlake_cloud_sim::SimCloud;
use spotlake_timestream::Record;

#[derive(Debug, Clone)]
struct Shard {
    account: AccountId,
    client: SpsClient,
    queries: Vec<PlannedQuery>,
}

/// Collects per-AZ placement scores for the whole planned catalog.
#[derive(Debug, Clone)]
pub struct SpsCollector {
    shards: Vec<Shard>,
    target_capacity: u32,
}

impl SpsCollector {
    /// Builds the collector from a query plan, sharding it across the
    /// account pool.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::InsufficientAccounts`] when the pool cannot
    /// cover the plan.
    pub fn new(
        plan: Vec<PlannedQuery>,
        pool: &AccountPool,
        target_capacity: u32,
    ) -> Result<Self, CollectError> {
        let shards = pool
            .assign(&plan)?
            .into_iter()
            .map(|(account, queries)| Shard {
                account,
                client: SpsClient::new(),
                queries: queries.to_vec(),
            })
            .collect();
        Ok(SpsCollector {
            shards,
            target_capacity,
        })
    }

    /// Total queries issued per collection round.
    pub fn query_count(&self) -> usize {
        self.shards.iter().map(|s| s.queries.len()).sum()
    }

    /// Number of account shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Runs one collection round: every shard issues its queries (in
    /// parallel across accounts) with `SingleAvailabilityZone` set, and the
    /// responses become `sps` records stamped with the cloud's current
    /// time.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Api`] if any query fails (a correctly sized
    /// pool never hits the rate limit).
    pub fn collect(&mut self, cloud: &SimCloud) -> Result<Vec<Record>, CollectError> {
        let now = cloud.now().as_secs();
        let capacity = self.target_capacity;
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| {
                    scope.spawn(move |_| -> Result<Vec<Record>, CollectError> {
                        let mut records = Vec::new();
                        for q in &shard.queries {
                            let request = SpsRequest::new(
                                vec![q.instance_type.clone()],
                                q.regions.clone(),
                                capacity,
                            )?
                            .single_availability_zone(true);
                            let scores = shard.client.get_spot_placement_scores(
                                cloud,
                                &shard.account,
                                &request,
                            )?;
                            for s in scores {
                                let az = s
                                    .availability_zone
                                    .expect("single-AZ queries return zone names");
                                records.push(
                                    Record::new(now, "sps", f64::from(s.score.value()))
                                        .dimension("instance_type", &q.instance_type)
                                        .dimension("region", &s.region)
                                        .dimension("az", az),
                                );
                            }
                        }
                        Ok(records)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("collector shard thread panicked"))
                .collect::<Result<Vec<_>, _>>()
        })
        .expect("collector scope panicked")?;
        Ok(results.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlannerStrategy, QueryPlanner};
    use spotlake_cloud_sim::SimConfig;
    use spotlake_types::CatalogBuilder;

    fn cloud() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 3)
            .region("eu-test-1", 3)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        SimCloud::new(b.build().unwrap(), SimConfig::default())
    }

    #[test]
    fn collects_one_record_per_supported_pool() {
        let cloud = cloud();
        let plan = QueryPlanner::new(PlannerStrategy::Exact).plan(cloud.catalog(), None);
        let pool = AccountPool::with_size(AccountPool::required_accounts(plan.len()));
        let mut collector = SpsCollector::new(plan, &pool, 1).unwrap();
        let records = collector.collect(&cloud).unwrap();
        // Full support: 2 types × 6 AZs.
        assert_eq!(records.len(), 12);
        for r in &records {
            assert_eq!(r.measure, "sps");
            assert!((1.0..=3.0).contains(&r.value));
            assert!(r.dimension_value("instance_type").is_some());
            assert!(r.dimension_value("region").is_some());
            assert!(r.dimension_value("az").is_some());
        }
    }

    #[test]
    fn repeat_collection_rounds_stay_within_limits() {
        let mut cloud = cloud();
        let plan = QueryPlanner::default().plan(cloud.catalog(), None);
        let pool = AccountPool::with_size(1);
        let mut collector = SpsCollector::new(plan, &pool, 1).unwrap();
        // Many rounds over a day: the same unique queries are reissued, so
        // the 50-unique limit is never hit.
        for _ in 0..30 {
            cloud.step();
            collector.collect(&cloud).unwrap();
        }
    }

    #[test]
    fn insufficient_pool_is_rejected() {
        let cloud = cloud();
        let plan = QueryPlanner::new(PlannerStrategy::Naive).plan(cloud.catalog(), None);
        assert_eq!(plan.len(), 4);
        // Zero accounts cannot run a 4-query plan.
        let pool = AccountPool::with_size(0);
        assert!(SpsCollector::new(plan, &pool, 1).is_err());
    }
}
