//! The placement-score collector.
//!
//! Owns the sharded query plan: each account re-issues its fixed shard of
//! packed queries every collection tick (repeats of a unique query are
//! free), in parallel across accounts. Transient API failures are retried
//! in-round per query; queries that exhaust the retry budget are reported
//! back so the service can dead-letter them — one flaky query must not
//! discard the rest of the round.

use crate::accounts::AccountPool;
use crate::error::CollectError;
use crate::planner::PlannedQuery;
use crate::retry::RetryPolicy;
use spotlake_cloud_api::{
    AccountId, ApiError, FaultInjector, FaultPlan, FaultSurface, SpsClient, SpsRequest,
};
use spotlake_cloud_sim::SimCloud;
use spotlake_timestream::Record;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Shard {
    account: AccountId,
    client: SpsClient,
    queries: Vec<PlannedQuery>,
}

/// A query that failed even after in-round retries. Identifies the plan
/// slot so the service can re-issue it from the dead-letter queue
/// (re-issuing the same fingerprint is free under the unique-query limit).
#[derive(Debug, Clone)]
pub struct FailedQuery {
    /// Index of the account shard that owns the query.
    pub shard: usize,
    /// Index of the query within the shard.
    pub query: usize,
    /// The error the final attempt died with.
    pub error: ApiError,
}

/// Result of one placement-score collection round: whatever was gathered,
/// plus how hard the round had to work for it.
#[derive(Debug, Clone, Default)]
pub struct SpsOutcome {
    /// Records collected (possibly from a subset of the plan).
    pub records: Vec<Record>,
    /// Retry attempts spent beyond each query's first call.
    pub retries: usize,
    /// Queries that exhausted the retry budget this round.
    pub failed: Vec<FailedQuery>,
}

/// Result of re-issuing one dead-lettered query.
#[derive(Debug, Clone, Default)]
pub struct SpsQueryOutcome {
    /// Records collected, empty on failure.
    pub records: Vec<Record>,
    /// Retry attempts spent beyond the first call.
    pub retries: usize,
    /// The error the final attempt died with, `None` on success.
    pub error: Option<ApiError>,
}

/// Collects per-AZ placement scores for the whole planned catalog.
#[derive(Debug, Clone)]
pub struct SpsCollector {
    shards: Vec<Shard>,
    target_capacity: u32,
}

impl SpsCollector {
    /// Builds the collector from a query plan, sharding it across the
    /// account pool.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::InsufficientAccounts`] when the pool cannot
    /// cover the plan.
    pub fn new(
        plan: Vec<PlannedQuery>,
        pool: &AccountPool,
        target_capacity: u32,
    ) -> Result<Self, CollectError> {
        let shards = pool
            .assign(&plan)?
            .into_iter()
            .map(|(account, queries)| Shard {
                account,
                client: SpsClient::new(),
                queries: queries.to_vec(),
            })
            .collect();
        Ok(SpsCollector {
            shards,
            target_capacity,
        })
    }

    /// Installs fault injection on every shard's client. Call before the
    /// first round: replacing a client resets its rate-limit window.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for shard in &mut self.shards {
            shard.client = SpsClient::new().with_faults(FaultInjector::new(plan));
        }
    }

    /// Total queries issued per collection round.
    pub fn query_count(&self) -> usize {
        self.shards.iter().map(|s| s.queries.len()).sum()
    }

    /// Number of account shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Unique-query budget consumption per account as of the cloud's
    /// current time, as `(account name, unique queries used)` in shard
    /// order — drives the service's budget gauge.
    pub fn budget_used(&mut self, cloud: &SimCloud) -> Vec<(String, usize)> {
        let now = cloud.now();
        self.shards
            .iter_mut()
            .map(|s| {
                let used = s.client.unique_queries_used(&s.account, now);
                (s.account.name().to_owned(), used)
            })
            .collect()
    }

    /// Fault injections across all shard clients, merged by
    /// `(surface, kind)` and sorted; empty without fault injection.
    pub fn fault_counts(&self) -> Vec<(FaultSurface, &'static str, u64)> {
        let mut merged: BTreeMap<(FaultSurface, &'static str), u64> = BTreeMap::new();
        for shard in &self.shards {
            for (surface, kind, n) in shard.client.fault_counts() {
                *merged.entry((surface, kind)).or_insert(0) += n;
            }
        }
        merged.into_iter().map(|((s, k), n)| (s, k, n)).collect()
    }

    /// Runs one collection round: every shard issues its queries (in
    /// parallel across accounts) with `SingleAvailabilityZone` set, and the
    /// responses become `sps` records stamped with the cloud's current
    /// time. Transient failures are retried per query up to
    /// `policy.max_attempts`; queries still failing land in
    /// [`SpsOutcome::failed`] instead of sinking the round.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Api`] only for non-retryable errors
    /// (invalid parameters, unknown entities, a blown query budget) —
    /// those are caller bugs, not weather.
    pub fn collect_with(
        &mut self,
        cloud: &SimCloud,
        policy: &RetryPolicy,
    ) -> Result<SpsOutcome, CollectError> {
        let now = cloud.now().as_secs();
        let capacity = self.target_capacity;
        let shard_results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(shard_idx, shard)| {
                    scope.spawn(move |_| -> Result<SpsOutcome, CollectError> {
                        let mut outcome = SpsOutcome::default();
                        for (query_idx, q) in shard.queries.iter().enumerate() {
                            let res = run_query(
                                &mut shard.client,
                                &shard.account,
                                q,
                                capacity,
                                cloud,
                                now,
                                policy,
                            );
                            outcome.retries += res.retries;
                            match res.error {
                                None => outcome.records.extend(res.records),
                                Some(e) if e.is_retryable() => {
                                    outcome.failed.push(FailedQuery {
                                        shard: shard_idx,
                                        query: query_idx,
                                        error: e,
                                    });
                                }
                                Some(e) => return Err(e.into()),
                            }
                        }
                        Ok(outcome)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("collector shard thread panicked"))
                .collect::<Result<Vec<_>, _>>()
        })
        .expect("collector scope panicked")?;

        let mut total = SpsOutcome::default();
        for o in shard_results {
            total.records.extend(o.records);
            total.retries += o.retries;
            total.failed.extend(o.failed);
        }
        Ok(total)
    }

    /// Runs one collection round with the default retry policy, failing
    /// the whole round if any query stays failed — the strict pre-fault
    /// behaviour, kept for callers that opt out of partial rounds.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::Api`] if any query fails (a correctly sized
    /// pool under a fault-free cloud never does).
    pub fn collect(&mut self, cloud: &SimCloud) -> Result<Vec<Record>, CollectError> {
        let outcome = self.collect_with(cloud, &RetryPolicy::default())?;
        if let Some(f) = outcome.failed.into_iter().next() {
            return Err(f.error.into());
        }
        Ok(outcome.records)
    }

    /// Re-issues one dead-lettered query identified by `(shard, query)`.
    /// Out-of-range indices (a plan change since the entry was queued)
    /// report an `UnknownEntity` error rather than panicking.
    pub fn retry_query(
        &mut self,
        cloud: &SimCloud,
        shard: usize,
        query: usize,
        policy: &RetryPolicy,
    ) -> SpsQueryOutcome {
        let now = cloud.now().as_secs();
        let capacity = self.target_capacity;
        let Some(s) = self.shards.get_mut(shard) else {
            return stale_slot_outcome("shard", shard);
        };
        let account = s.account.clone();
        let Some(q) = s.queries.get(query).cloned() else {
            return stale_slot_outcome("query slot", query);
        };
        run_query(&mut s.client, &account, &q, capacity, cloud, now, policy)
    }
}

fn stale_slot_outcome(kind: &'static str, index: usize) -> SpsQueryOutcome {
    SpsQueryOutcome {
        error: Some(ApiError::UnknownEntity {
            kind,
            name: index.to_string(),
        }),
        ..SpsQueryOutcome::default()
    }
}

/// Issues one planned query with in-round retries, converting the scores
/// to `sps` records.
fn run_query(
    client: &mut SpsClient,
    account: &AccountId,
    q: &PlannedQuery,
    capacity: u32,
    cloud: &SimCloud,
    now: u64,
    policy: &RetryPolicy,
) -> SpsQueryOutcome {
    let mut outcome = SpsQueryOutcome::default();
    let request = match SpsRequest::new(vec![q.instance_type.clone()], q.regions.clone(), capacity)
    {
        Ok(r) => r.single_availability_zone(true),
        Err(e) => {
            outcome.error = Some(e);
            return outcome;
        }
    };
    let mut attempt = 0;
    loop {
        attempt += 1;
        match client.get_spot_placement_scores(cloud, account, &request) {
            Ok(scores) => {
                for s in scores {
                    let az = s
                        .availability_zone
                        .expect("single-AZ queries return zone names");
                    outcome.records.push(
                        Record::new(now, "sps", f64::from(s.score.value()))
                            .dimension("instance_type", &q.instance_type)
                            .dimension("region", &s.region)
                            .dimension("az", az),
                    );
                }
                return outcome;
            }
            Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                outcome.retries += 1;
            }
            Err(e) => {
                outcome.error = Some(e);
                return outcome;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlannerStrategy, QueryPlanner};
    use spotlake_cloud_sim::SimConfig;
    use spotlake_types::CatalogBuilder;

    fn cloud() -> SimCloud {
        let mut b = CatalogBuilder::new();
        b.region("us-test-1", 3)
            .region("eu-test-1", 3)
            .instance_type("m5.large", 0.096)
            .instance_type("p3.2xlarge", 3.06);
        SimCloud::new(b.build().unwrap(), SimConfig::default())
    }

    #[test]
    fn collects_one_record_per_supported_pool() {
        let cloud = cloud();
        let plan = QueryPlanner::new(PlannerStrategy::Exact).plan(cloud.catalog(), None);
        let pool = AccountPool::with_size(AccountPool::required_accounts(plan.len()));
        let mut collector = SpsCollector::new(plan, &pool, 1).unwrap();
        let records = collector.collect(&cloud).unwrap();
        // Full support: 2 types × 6 AZs.
        assert_eq!(records.len(), 12);
        for r in &records {
            assert_eq!(r.measure, "sps");
            assert!((1.0..=3.0).contains(&r.value));
            assert!(r.dimension_value("instance_type").is_some());
            assert!(r.dimension_value("region").is_some());
            assert!(r.dimension_value("az").is_some());
        }
    }

    #[test]
    fn repeat_collection_rounds_stay_within_limits() {
        let mut cloud = cloud();
        let plan = QueryPlanner::default().plan(cloud.catalog(), None);
        let pool = AccountPool::with_size(1);
        let mut collector = SpsCollector::new(plan, &pool, 1).unwrap();
        // Many rounds over a day: the same unique queries are reissued, so
        // the 50-unique limit is never hit.
        for _ in 0..30 {
            cloud.step();
            collector.collect(&cloud).unwrap();
        }
    }

    #[test]
    fn insufficient_pool_is_rejected() {
        let cloud = cloud();
        let plan = QueryPlanner::new(PlannerStrategy::Naive).plan(cloud.catalog(), None);
        assert_eq!(plan.len(), 4);
        // Zero accounts cannot run a 4-query plan.
        let pool = AccountPool::with_size(0);
        assert!(SpsCollector::new(plan, &pool, 1).is_err());
    }

    #[test]
    fn transient_faults_degrade_instead_of_sinking_the_round() {
        let mut cloud = cloud();
        let plan = QueryPlanner::default().plan(cloud.catalog(), None);
        let pool = AccountPool::with_size(1);
        let mut collector = SpsCollector::new(plan, &pool, 1).unwrap();
        collector.set_fault_plan(FaultPlan::uniform(17, 0.5));
        let policy = RetryPolicy::default();
        let mut retries = 0;
        let mut failed = 0;
        let mut records = 0;
        for _ in 0..25 {
            cloud.step();
            let outcome = collector.collect_with(&cloud, &policy).unwrap();
            retries += outcome.retries;
            failed += outcome.failed.len();
            records += outcome.records.len();
        }
        assert!(retries > 0, "a 50% fault rate must trigger retries");
        assert!(records > 0, "partial rounds still deliver data");
        // Whatever failed is identified precisely enough to re-issue.
        let _ = failed;
    }

    #[test]
    fn retry_query_reissues_a_single_slot() {
        let mut cloud = cloud();
        cloud.step();
        let plan = QueryPlanner::default().plan(cloud.catalog(), None);
        let pool = AccountPool::with_size(1);
        let mut collector = SpsCollector::new(plan, &pool, 1).unwrap();
        let policy = RetryPolicy::default();
        let good = collector.retry_query(&cloud, 0, 0, &policy);
        assert!(good.error.is_none());
        assert!(!good.records.is_empty());
        // Stale dead-letter entries report an error instead of panicking.
        let stale = collector.retry_query(&cloud, 99, 0, &policy);
        assert!(stale.error.is_some());
        let stale = collector.retry_query(&cloud, 0, 9_999, &policy);
        assert!(stale.error.is_some());
    }
}
