//! Full-catalog query-planning check against the paper's Figure 1 numbers.

use spotlake_collector::{PlannerStrategy, QueryPlanner};
use spotlake_types::Catalog;

/// The paper: 547 types × 17 regions = 9,299 queries at most, reduced to
/// 2,226 (≈ 4.5×) by bin packing. Our support matrix is a reconstruction,
/// so we assert the *shape*: all-pairs count exactly 9,299, packed count in
/// the right ballpark, improvement near 4.5×.
#[test]
fn figure1_query_reduction_shape() {
    let catalog = Catalog::aws_2022();
    let all_pairs = catalog.instance_types().len() * catalog.regions().len();
    assert_eq!(all_pairs, 9_299, "547 × 17");

    let planner = QueryPlanner::new(PlannerStrategy::Exact);
    let (plan, stats) = planner.plan_with_stats(&catalog, None);
    eprintln!(
        "packed queries: {} (paper: 2,226), supported pairs: {}, improvement over all-pairs: {:.2}x",
        stats.planned_queries,
        stats.pairs_covered,
        all_pairs as f64 / stats.planned_queries as f64
    );
    assert!(
        (1_500..=3_200).contains(&stats.planned_queries),
        "packed query count {} far from the paper's 2,226",
        stats.planned_queries
    );
    let improvement = all_pairs as f64 / stats.planned_queries as f64;
    assert!(
        (3.0..=6.5).contains(&improvement),
        "improvement {improvement:.2}x far from the paper's 4.5x"
    );
    // No query may expect more results than the API returns.
    assert!(plan.iter().all(|q| q.expected_results <= 10));

    // The exact solver is never worse than the heuristics.
    let ffd = QueryPlanner::new(PlannerStrategy::Ffd)
        .plan(&catalog, None)
        .len();
    let naive = QueryPlanner::new(PlannerStrategy::Naive)
        .plan(&catalog, None)
        .len();
    assert!(stats.planned_queries <= ffd);
    assert!(ffd < naive);
}
