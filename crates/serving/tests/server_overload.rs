//! End-to-end tests of the TCP serving path's overload envelope: the
//! fail-closed wire surface, admission-control shedding, per-request
//! deadlines, slow-client timeouts, graceful shutdown, and the seeded
//! load generator's determinism. Every test drives a real listener over
//! loopback sockets.

use spotlake_serving::server::loadgen::{self, fetch, ActionKind, ChaosProfile, LoadConfig};
use spotlake_serving::server::{Server, ServerConfig, ServerHandle, SharedArchive};
use spotlake_timestream::{Database, Record, TableOptions};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A small archive with realistic tables so the query mix hits data.
fn archive() -> Database {
    let mut db = Database::new();
    for table in ["sps", "price", "advisor"] {
        db.create_table(table, TableOptions::default()).unwrap();
        let mut records = Vec::new();
        for t in 0..40u64 {
            for (instance, region) in [
                ("m5.large", "us-east-1"),
                ("c5.large", "us-west-2"),
                ("r5.xlarge", "eu-west-1"),
            ] {
                records.push(
                    Record::new(t * 100, table, (t % 7) as f64)
                        .dimension("instance_type", instance)
                        .dimension("region", region),
                );
            }
        }
        db.write(table, &records).unwrap();
    }
    db
}

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(SharedArchive::new(archive()), config).expect("bind loopback")
}

fn quick() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 8,
        ..ServerConfig::default()
    }
}

/// Sends raw bytes and returns the full response text ("" if the server
/// just closed the connection).
fn send_raw(handle: &ServerHandle, payload: &[u8]) -> String {
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.write_all(payload).expect("write");
    let mut response = Vec::new();
    let _ = conn.read_to_end(&mut response);
    String::from_utf8_lossy(&response).into_owned()
}

#[test]
fn hostile_wire_input_fails_closed_and_the_server_keeps_serving() {
    let handle = start(quick());

    // Malformed request line -> 400.
    let response = send_raw(&handle, b"GET no-leading-slash\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
    // Binary garbage -> 400.
    let response = send_raw(&handle, b"\x00\x01\x02\x03\r\n\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
    // Non-GET -> 405.
    let response = send_raw(&handle, b"DELETE /tables HTTP/1.1\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 405 "), "{response}");
    // Unsupported version -> 505.
    let response = send_raw(&handle, b"GET / HTTP/2.0\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 505 "), "{response}");
    // A request body -> 413 (the archive is read-only).
    let response = send_raw(&handle, b"POST / HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc");
    assert!(response.starts_with("HTTP/1.1 40"), "{response}");
    // An oversized head -> 431.
    let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64 * 1024));
    let response = send_raw(&handle, huge.as_bytes());
    assert!(response.starts_with("HTTP/1.1 431 "), "{response}");
    // A truncated request (client hangs up mid-head) is survived silently.
    {
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        conn.write_all(b"GET /hea").unwrap();
    }

    // After all of that, a clean request still gets a clean answer.
    let (status, body) = fetch(handle.addr(), "/tables", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("sps"), "{body}");

    let report = handle.shutdown();
    assert_eq!(report.totals.worker_panics, 0);
    assert!(report.totals.bad_requests >= 5, "{:?}", report.totals);
}

#[test]
fn a_worker_panic_does_not_break_later_requests() {
    // Poison-recovery drill: a handler panic crosses the worker's
    // catch_unwind boundary; shared state must keep serving afterwards.
    let handle = start(ServerConfig {
        panic_route: Some("/boom".to_owned()),
        ..quick()
    });

    // The panicking request itself gets a clean 500 with its id echoed.
    let response = send_raw(&handle, b"GET /boom HTTP/1.1\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 500 "), "{response}");
    assert!(response.contains("x-spotlake-request-id:"), "{response}");

    // The post-panic regression: later requests still get 200s.
    let (status, body) = fetch(handle.addr(), "/tables", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("sps"), "{body}");
    // The metrics surface (Mutex-backed registries) survived too, and
    // recorded the panic.
    let (status, metrics) = fetch(handle.addr(), "/metrics", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("spotlake_server_worker_panics_total 1"),
        "{metrics}"
    );

    let report = handle.shutdown();
    assert_eq!(report.totals.worker_panics, 1, "{:?}", report.totals);
    assert!(report.totals.served >= 2, "{:?}", report.totals);
}

#[test]
fn full_admission_queue_sheds_503_with_retry_after() {
    // One worker, a queue of one: the third idle connection must be shed.
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });

    // Occupy the worker: a connection that sends nothing pins it until
    // the read timeout.
    let busy = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    // Fill the queue.
    let queued = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // This one has nowhere to go: 503 + Retry-After, connection closed.
    let mut shed = TcpStream::connect(handle.addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut response = Vec::new();
    shed.read_to_end(&mut response).unwrap();
    let response = String::from_utf8_lossy(&response);
    assert!(response.starts_with("HTTP/1.1 503 "), "{response}");
    assert!(response.contains("retry-after: 1\r\n"), "{response}");
    assert!(response.contains("admission queue full"), "{response}");

    // Release the pinned connections so shutdown drains immediately.
    drop(busy);
    drop(queued);
    let report = handle.shutdown();
    assert!(report.totals.shed >= 1, "{:?}", report.totals);
    assert_eq!(report.totals.worker_panics, 0);
}

#[test]
fn exhausted_deadline_answers_504() {
    let handle = start(ServerConfig {
        deadline: Duration::ZERO,
        ..quick()
    });
    let (status, body) = fetch(handle.addr(), "/tables", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 504);
    assert!(body.contains("deadline"), "{body}");
    let report = handle.shutdown();
    assert!(report.totals.deadline_exceeded >= 1);
}

#[test]
fn slow_clients_are_timed_out_with_408() {
    let handle = start(ServerConfig {
        read_timeout: Duration::from_millis(60),
        ..quick()
    });
    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.write_all(b"GET /tables HT").unwrap();
    // Stall far past the server's read timeout.
    std::thread::sleep(Duration::from_millis(400));
    let mut response = Vec::new();
    let _ = conn.read_to_end(&mut response);
    let response = String::from_utf8_lossy(&response);
    assert!(response.starts_with("HTTP/1.1 408 "), "{response}");
    let report = handle.shutdown();
    assert!(
        report.totals.slow_clients_closed >= 1,
        "{:?}",
        report.totals
    );
}

#[test]
fn graceful_shutdown_drains_in_flight_and_refuses_new_connections() {
    let handle = start(quick());
    let addr = handle.addr();

    // A client that is mid-request when shutdown begins.
    let inflight = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(b"GET /tables HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(250));
        conn.write_all(b"host: x\r\n\r\n").unwrap();
        let mut response = Vec::new();
        conn.read_to_end(&mut response).unwrap();
        String::from_utf8_lossy(&response).into_owned()
    });

    // Let the worker pick the connection up, then drain.
    std::thread::sleep(Duration::from_millis(100));
    let report = handle.shutdown();

    // The in-flight request completed normally during the drain.
    let response = inflight.join().unwrap();
    assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
    assert!(response.contains("sps"), "{response}");
    assert!(report.totals.served >= 1);

    // The listener is gone: new connections are refused (or reset
    // without a response on the rare accept-backlog race).
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut conn) => {
            conn.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let _ = conn.write_all(b"GET / HTTP/1.1\r\n\r\n");
            let mut buf = Vec::new();
            let n = conn.read_to_end(&mut buf).unwrap_or(0);
            assert_eq!(n, 0, "shutdown server answered: {buf:?}");
        }
    }

    // The shutdown report carries the flushed metrics document.
    assert!(report
        .metrics_text
        .contains("spotlake_server_requests_total"));
    assert!(report.metrics_text.contains("spotlake_http_requests_total"));
}

#[test]
fn metrics_endpoint_merges_server_families() {
    let handle = start(quick());
    let (status, _) = fetch(handle.addr(), "/health", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    let (status, body) = fetch(handle.addr(), "/metrics", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    // Server, gateway, and store families in one document.
    assert!(body.contains("spotlake_server_connections_total"), "{body}");
    assert!(body.contains("spotlake_server_inflight"), "{body}");
    assert!(body.contains("spotlake_http_requests_total"), "{body}");
    handle.shutdown();
}

#[test]
fn seeded_loadgen_runs_are_deterministic_and_panic_free() {
    let config = LoadConfig {
        seed: 20_220_901,
        clients: 4,
        requests_per_client: 30,
        chaos: ChaosProfile::Light,
        ..LoadConfig::default()
    };

    // The plan is a pure function of the seed: same seed, same actions.
    let planned = loadgen::plan(&config);
    assert_eq!(planned, loadgen::plan(&config));
    let dropped_by_design = planned
        .iter()
        .flatten()
        .filter(|a| matches!(a.kind, ActionKind::Churn | ActionKind::MidDisconnect))
        .count() as u64;
    let malformed_planned = planned
        .iter()
        .flatten()
        .filter(|a| a.kind == ActionKind::Malformed)
        .count() as u64;

    let handle = start(ServerConfig {
        workers: 4,
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let report = loadgen::run(handle.addr(), &config);
    let server = handle.shutdown();

    assert_eq!(report.planned, 120);
    // Every action that expects a response got one; hangups are the
    // only planned non-responses.
    assert_eq!(report.completed + dropped_by_design, report.planned);
    assert_eq!(report.io_errors, 0);
    // Planned malformed requests came back as the planned 400s.
    assert_eq!(
        report.statuses.get(&400).copied().unwrap_or(0),
        malformed_planned
    );
    // No worker panic ever surfaced as a 5xx.
    assert_eq!(server.totals.worker_panics, 0);
    assert_eq!(report.statuses.get(&500).copied().unwrap_or(0), 0);
    // Latency quantiles are real measurements.
    assert!(report.p50_micros > 0.0);
    assert!(report.p50_micros <= report.p90_micros);
    assert!(report.p90_micros <= report.p99_micros);
    assert!(report.throughput_rps > 0.0);

    // The scoreboard document carries the acceptance keys.
    let json = report.to_json(Some(&server.totals), &server.phases, server.slo.as_ref());
    for key in [
        "\"bench\":\"serving\"",
        "\"version\":3",
        "\"seed\":20220901",
        "\"p50\":",
        "\"p90\":",
        "\"p99\":",
        "\"throughput_rps\":",
        "\"worker_panics\":0",
        "\"queue_wait_p99\":",
        "\"handle_p99\":",
        "\"write_p99\":",
    ] {
        assert!(json.contains(key), "{key} missing from {json}");
    }
}

#[test]
fn collection_keeps_publishing_while_the_server_reads() {
    // Snapshot semantics: a query never blocks a publish, and a publish
    // never corrupts a running query's view.
    let handle = start(quick());
    let before = handle.archive().epoch();

    let (status, body) = fetch(handle.addr(), "/tables", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("advisor"), "{body}");

    // Publish a new epoch with an extra table while the server runs.
    let mut next = archive();
    next.create_table("ondemand", TableOptions::default())
        .unwrap();
    handle.archive().replace(next);
    assert_eq!(handle.archive().epoch(), before + 1);

    let (status, body) = fetch(handle.addr(), "/tables", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("ondemand"), "{body}");
    handle.shutdown();
}
