//! End-to-end tests of the request-lifecycle observability surface:
//! request-id echo on success and error paths, per-phase timelines via
//! `/debug/requests`, the telemetry ring buffer via `/debug/telemetry`,
//! and the client↔server correlation in the v2 bench document — all
//! driven over real loopback sockets.

use spotlake_serving::server::loadgen::{self, fetch, fetch_with_id, ChaosProfile, LoadConfig};
use spotlake_serving::server::{Server, ServerConfig, ServerHandle, SharedArchive};
use spotlake_timestream::{Database, Record, TableOptions};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn archive() -> Database {
    let mut db = Database::new();
    db.create_table("sps", TableOptions::default()).unwrap();
    let records: Vec<Record> = (0..50u64)
        .map(|t| {
            Record::new(t * 100, "sps", (t % 9) as f64)
                .dimension("instance_type", "m5.large")
                .dimension("region", "us-east-1")
        })
        .collect();
    db.write("sps", &records).unwrap();
    db
}

fn start(config: ServerConfig) -> ServerHandle {
    Server::start(SharedArchive::new(archive()), config).expect("bind loopback")
}

/// Sends raw bytes and returns the full response text.
fn send_raw(handle: &ServerHandle, payload: &[u8]) -> String {
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.write_all(payload).expect("write");
    let mut response = Vec::new();
    let _ = conn.read_to_end(&mut response);
    String::from_utf8_lossy(&response).into_owned()
}

#[test]
fn request_ids_are_echoed_on_success_and_431_paths() {
    let handle = start(ServerConfig::default());

    // Clean 200: the header is present and parseable.
    let (status, _, id) = fetch_with_id(handle.addr(), "/tables", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    let first = id.expect("200 response must echo x-spotlake-request-id");
    assert!(first >= 1, "ids start at 1, got {first}");

    // Ids are unique and increase across requests.
    let (_, _, second) = fetch_with_id(handle.addr(), "/health", Duration::from_secs(5)).unwrap();
    let second = second.expect("second response must echo an id");
    assert!(second > first, "expected {second} > {first}");

    // The 431 error path (oversized head) carries the header too.
    let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64 * 1024));
    let response = send_raw(&handle, huge.as_bytes());
    assert!(response.starts_with("HTTP/1.1 431 "), "{response}");
    assert!(response.contains("x-spotlake-request-id: "), "{response}");

    handle.shutdown();
}

#[test]
fn shed_503_responses_carry_request_ids() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });

    // Pin the only worker and fill the queue with idle connections.
    let busy = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let queued = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The next connection is shed at the listener — before any worker
    // touches it — and still gets an id.
    let mut shed = TcpStream::connect(handle.addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut response = Vec::new();
    shed.read_to_end(&mut response).unwrap();
    let response = String::from_utf8_lossy(&response);
    assert!(response.starts_with("HTTP/1.1 503 "), "{response}");
    assert!(response.contains("retry-after: 1\r\n"), "{response}");
    assert!(response.contains("x-spotlake-request-id: "), "{response}");

    drop(busy);
    drop(queued);
    let report = handle.shutdown();
    assert!(report.totals.shed >= 1, "{:?}", report.totals);
}

#[test]
fn phase_timelines_are_monotonic_and_served_at_debug_requests() {
    let handle = start(ServerConfig::default());
    for path in ["/tables", "/query?table=sps&limit=5", "/metrics", "/health"] {
        let (status, _) = fetch(handle.addr(), path, Duration::from_secs(5)).unwrap();
        assert_eq!(status, 200, "{path}");
    }

    // Structural invariants, straight from the recorder: four phases in
    // wire order, contiguous, monotonic, never overlapping.
    let records = handle.requests().snapshot();
    assert!(!records.is_empty(), "no request timelines recorded");
    for record in &records {
        assert!(record.request_id >= 1);
        let names: Vec<&str> = record.phases.iter().map(|p| p.phase).collect();
        assert_eq!(names, ["queue_wait", "parse", "handle", "write"]);
        let mut cursor = 0u64;
        for phase in &record.phases {
            assert_eq!(
                phase.start_micros, cursor,
                "phase {} of request {} does not start where the previous ended",
                phase.phase, record.request_id
            );
            assert!(
                phase.end_micros >= phase.start_micros,
                "phase {} of request {} runs backwards",
                phase.phase,
                record.request_id
            );
            cursor = phase.end_micros;
        }
        assert!(
            record.total_micros >= cursor,
            "request {} total {} < last phase end {}",
            record.request_id,
            record.total_micros,
            cursor
        );
    }

    // The same timelines are served over the wire as JSON.
    let (status, body) = fetch(handle.addr(), "/debug/requests", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    for key in [
        "\"capacity\":",
        "\"observed\":",
        "\"request_id\":",
        "\"queue_wait\"",
        "\"handle\"",
        "\"write\"",
        "\"total_micros\":",
    ] {
        assert!(body.contains(key), "{key} missing from {body}");
    }

    // /debug/queries joins on the same request id.
    let (status, body) = fetch(handle.addr(), "/debug/queries", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"request_id\":"), "{body}");

    let report = handle.shutdown();
    // Every phase summarized, with as many observations as requests.
    let phases: Vec<&str> = report.phases.iter().map(|p| p.phase).collect();
    assert_eq!(phases, ["queue_wait", "parse", "handle", "write"]);
    for phase in &report.phases {
        assert!(phase.count >= 4, "{phase:?}");
        assert!(phase.p50_micros <= phase.p99_micros, "{phase:?}");
    }
}

#[test]
fn telemetry_endpoint_serves_jsonl_and_404s_when_disabled() {
    // Without a sampler interval the endpoint fails closed.
    let disabled = start(ServerConfig::default());
    let (status, body) =
        fetch(disabled.addr(), "/debug/telemetry", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 404);
    assert!(body.contains("telemetry disabled"), "{body}");
    let report = disabled.shutdown();
    assert!(report.telemetry_jsonl.is_none());

    // With one, the ring buffer is served as one JSON object per line.
    let handle = start(ServerConfig {
        telemetry_interval: Some(Duration::from_millis(2)),
        ..ServerConfig::default()
    });
    let (status, _) = fetch(handle.addr(), "/tables", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    std::thread::sleep(Duration::from_millis(30));
    let (status, body) = fetch(handle.addr(), "/debug/telemetry", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    let first = body.lines().next().unwrap_or_default();
    assert!(first.starts_with("{\"seq\":0,\"at_micros\":"), "{first}");
    assert!(body.contains("spotlake_server_requests_total"), "{body}");
    assert!(body.contains("spotlake_telemetry_samples_total"), "{body}");

    let report = handle.shutdown();
    // The shutdown report carries the final buffer (plus a last sample).
    let jsonl = report.telemetry_jsonl.expect("telemetry was enabled");
    assert!(jsonl.lines().count() >= 2, "{jsonl}");
    assert!(jsonl.contains("spotlake_http_requests_total"), "{jsonl}");
}

/// The acceptance scenario: a seeded loadgen run against an overloaded
/// server produces the v2 bench document with client *and* server phase
/// quantiles, plus a telemetry series whose samples show a visibly
/// nonzero queue depth during the shedding window.
#[test]
fn overloaded_run_correlates_bench_v2_and_telemetry() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_millis(700),
        telemetry_interval: Some(Duration::from_millis(2)),
        ..ServerConfig::default()
    });

    // Pin the worker and the queue so everything else is shed while the
    // sampler watches the queue sit full.
    let busy = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let queued = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let config = LoadConfig {
        seed: 42,
        clients: 3,
        requests_per_client: 6,
        chaos: ChaosProfile::None,
        ..LoadConfig::default()
    };
    let report = loadgen::run(handle.addr(), &config);

    // Release the pinned connections; let the worker drain, then land one
    // clean request so every phase has at least one fast observation.
    drop(busy);
    drop(queued);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match fetch(handle.addr(), "/tables", Duration::from_secs(5)) {
            Ok((200, _)) => break,
            _ if std::time::Instant::now() > deadline => panic!("server never drained"),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }

    let server = handle.shutdown();
    assert!(server.totals.shed >= 1, "{:?}", server.totals);
    // Every shed 503 still carried a request id the client recorded.
    assert!(report.responses_with_id >= 1, "{report:?}");
    assert_eq!(report.responses_with_id, report.completed, "{report:?}");
    assert!(report.statuses.get(&503).copied().unwrap_or(0) >= 1);

    // The v3 document correlates both sides and carries the SLO verdict
    // block (telemetry was enabled, so the engine evaluated objectives).
    let slo = server.slo.as_ref().expect("slo report with telemetry on");
    let json = report.to_json(Some(&server.totals), &server.phases, Some(slo));
    for key in [
        "\"version\":3",
        "\"queue_wait_p99\":",
        "\"handle_p99\":",
        "\"write_p99\":",
        "\"responses_with_id\":",
        "\"shed\":",
        "\"slo\":{\"healthy\":",
        "\"name\":\"shed_rate\"",
        "\"page_transitions\":",
        "\"exemplar_request_ids\":",
    ] {
        assert!(json.contains(key), "{key} missing from {json}");
    }
    // Shedding most of the run's connections must exhaust the shed-rate
    // error budget: the verdict cannot be healthy.
    assert!(!slo.healthy, "{slo:?}");

    // The telemetry series saw the queue sitting nonzero while load was
    // being shed.
    let jsonl = server.telemetry_jsonl.expect("telemetry was enabled");
    let saw_queue_depth = jsonl.lines().any(|line| {
        line.contains("\"spotlake_server_queue_depth\":")
            && !line.contains("\"spotlake_server_queue_depth\":0")
    });
    assert!(
        saw_queue_depth,
        "no nonzero spotlake_server_queue_depth sample in:\n{jsonl}"
    );
}

/// Every error path the wire and deadline layers can produce — 400, 404,
/// 405, 408, and 504 — must echo `x-spotlake-request-id` like the
/// success paths do, or the exemplar join from SLO alerts back to
/// `/debug/requests` breaks exactly when it matters.
#[test]
fn error_paths_400_404_405_408_504_echo_request_ids() {
    let handle = start(ServerConfig {
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });

    // 400: a syntactically broken request line.
    let response = send_raw(&handle, b"GET badpath-without-a-slash\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
    assert!(response.contains("x-spotlake-request-id: "), "{response}");

    // 404: a well-formed request for a path nobody serves.
    let response = send_raw(&handle, b"GET /nope HTTP/1.1\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 404 "), "{response}");
    assert!(response.contains("x-spotlake-request-id: "), "{response}");

    // 405: a method the wire layer refuses.
    let response = send_raw(&handle, b"POST /tables HTTP/1.1\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 405 "), "{response}");
    assert!(response.contains("x-spotlake-request-id: "), "{response}");

    // 408: a head that never finishes arriving (slowloris bound).
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.write_all(b"GET /hea").expect("partial head");
    let mut response = Vec::new();
    let _ = conn.read_to_end(&mut response);
    let response = String::from_utf8_lossy(&response);
    assert!(response.starts_with("HTTP/1.1 408 "), "{response}");
    assert!(response.contains("x-spotlake-request-id: "), "{response}");
    handle.shutdown();

    // 504: a zero deadline answers every request past-deadline.
    let handle = start(ServerConfig {
        deadline: Duration::ZERO,
        ..ServerConfig::default()
    });
    let response = send_raw(&handle, b"GET /tables HTTP/1.1\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 504 "), "{response}");
    assert!(response.contains("x-spotlake-request-id: "), "{response}");
    handle.shutdown();
}

/// The SLO loop end to end, deterministically: an objective whose
/// ceiling no real request can meet pages on the first evaluated
/// sample, `/health` degrades to 503-unhealthy, `/debug/slo` serves the
/// verdict with exemplars, and every exemplar id resolves at
/// `/debug/requests`.
#[test]
fn page_level_burn_degrades_health_and_links_exemplars() {
    use spotlake_obs::{BurnPolicy, SloSet, SloSignal, SloSpec};

    let handle = start(ServerConfig {
        telemetry_interval: Some(Duration::from_millis(2)),
        slo: SloSet {
            // An impossible ceiling: any observed handle p99 exceeds it,
            // so every sample after the first request is a bad unit and
            // the burn pages deterministically.
            objectives: vec![SloSpec::new(
                "handle_latency",
                0.95,
                SloSignal::PhaseLatency {
                    phase: "handle".to_owned(),
                    p99_micros_max: -1.0,
                },
            )],
            policy: BurnPolicy::default(),
        },
        ..ServerConfig::default()
    });

    // Before any request the phase histogram is empty: no units, no
    // alert, healthy /health.
    let (status, body) = fetch(handle.addr(), "/health", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"slo\""), "{body}");

    // One real request populates the handle p99; the next samples all
    // judge it over the ceiling and the burn pages.
    let (status, _) = fetch(handle.addr(), "/tables", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let slo_body = loop {
        let (status, body) = fetch(handle.addr(), "/debug/slo", Duration::from_secs(5)).unwrap();
        assert_eq!(status, 200, "{body}");
        if body.contains("\"state\":\"page\"") {
            break body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "never paged; last /debug/slo: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };

    // A page-level burn makes /health answer 503-unhealthy, naming the
    // slo component.
    let (status, body) = fetch(handle.addr(), "/health", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"status\":\"unhealthy\""), "{body}");
    assert!(body.contains("\"name\":\"slo\""), "{body}");
    assert!(body.contains("handle_latency page"), "{body}");

    // The paging objective carries exemplar request ids, and every one
    // of them resolves in /debug/requests.
    let ids = extract_exemplar_ids(&slo_body);
    assert!(!ids.is_empty(), "no exemplars in {slo_body}");
    let (status, requests_body) =
        fetch(handle.addr(), "/debug/requests", Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    for id in &ids {
        assert!(
            requests_body.contains(&format!("\"request_id\":{id},")),
            "exemplar {id} not resolvable in {requests_body}"
        );
    }

    // The shutdown report agrees with the wire view: still paging, same
    // objective, exemplars attached.
    let report = handle.shutdown();
    let slo = report.slo.expect("slo report with telemetry on");
    assert!(!slo.healthy);
    assert_eq!(slo.objectives.len(), 1);
    assert_eq!(slo.objectives[0].name, "handle_latency");
    assert!(!slo.objectives[0].exemplar_request_ids.is_empty());
    assert!(!slo.objectives[0].transitions.is_empty());
    // The alert transition also landed in the trace journal.
    // (The journal is rendered through the gateway's trace endpoint at
    // runtime; here the report's metrics text proves the counter side.)
    assert!(
        report.metrics_text.contains(
            "spotlake_slo_alert_transitions_total{objective=\"handle_latency\",to=\"page\"} 1"
        ),
        "{}",
        report.metrics_text
    );
}

/// Pulls the ids out of the first `"exemplar_request_ids":[...]` array.
fn extract_exemplar_ids(body: &str) -> Vec<u64> {
    let start = body.find("\"exemplar_request_ids\":[").map(|i| i + 24);
    let Some(start) = start else {
        return Vec::new();
    };
    let end = body[start..].find(']').map(|i| start + i).unwrap_or(start);
    body[start..end]
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}
