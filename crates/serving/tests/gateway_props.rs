//! Property tests for the serving layer: the JSON encoder's output is
//! well-formed, the gateway never panics on arbitrary requests, and CSV
//! stays rectangular.

use proptest::prelude::*;
use spotlake_serving::json::Json;
use spotlake_serving::{rows_to_csv, ArchiveService, HttpRequest};
use spotlake_timestream::{Database, Record, Row, TableOptions};

/// A permissive structural validator: balanced quoting and bracket depth
/// for the subset of JSON our encoder emits.
fn is_structurally_valid_json(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            } else if (c as u32) < 0x20 {
                return false; // raw control character inside a string
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string
}

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1e12f64..1e12).prop_map(Json::Number),
        ".{0,30}".prop_map(Json::string),
    ];
    leaf.prop_recursive(3, 32, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            prop::collection::vec((".{0,10}", inner), 0..6).prop_map(Json::object),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encoder_output_is_structurally_valid(value in arb_json()) {
        prop_assert!(is_structurally_valid_json(&value.render()));
    }

    /// Whatever the query string, the gateway answers with a status — it
    /// never panics — and every 200 JSON body is structurally valid.
    #[test]
    fn gateway_total_on_arbitrary_requests(query in "[ -~]{0,80}") {
        let mut db = Database::new();
        db.create_table("sps", TableOptions::default()).unwrap();
        db.write(
            "sps",
            &[Record::new(0, "sps", 3.0).dimension("instance_type", "m5.large")],
        )
        .unwrap();
        let Ok(request) = HttpRequest::get(&format!("/query?{query}")) else {
            return Ok(()); // parse rejection is a fine outcome
        };
        let response = ArchiveService::handle(&db, &request);
        prop_assert!((200..=599).contains(&response.status));
        if response.status == 200 && response.content_type == "application/json" {
            prop_assert!(is_structurally_valid_json(&response.body_text()));
        }
    }

    /// CSV output always has the same number of commas on every line.
    #[test]
    fn csv_is_rectangular(
        rows in prop::collection::vec(
            (0u64..1000, -10.0f64..10.0, "[a-z,\"\n]{0,12}"),
            0..30,
        )
    ) {
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|(time, value, dim)| Row {
                time,
                value,
                dimensions: vec![("k".to_owned(), dim)],
            })
            .collect();
        let csv = rows_to_csv(&rows);
        // Count unquoted commas per record (a record may span lines when a
        // field contains newlines, so parse quote-aware).
        let mut commas_per_record = Vec::new();
        let mut commas = 0;
        let mut in_quotes = false;
        for c in csv.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => commas += 1,
                '\n' if !in_quotes => {
                    commas_per_record.push(commas);
                    commas = 0;
                }
                _ => {}
            }
        }
        prop_assert!(!in_quotes, "unbalanced quotes");
        if let Some(&first) = commas_per_record.first() {
            for &n in &commas_per_record {
                prop_assert_eq!(n, first, "ragged CSV: {}", csv);
            }
        }
    }
}
