//! The SpotLake archive web service.
//!
//! Section 4 of the paper describes a serverless front end: static files
//! from object storage, an API Gateway routing user queries to Lambda
//! handlers, and the Timestream database behind them. This crate reproduces
//! that slice in-process:
//!
//! * [`HttpRequest`] / [`HttpResponse`] — a minimal HTTP model (the
//!   "API Gateway" wire format).
//! * [`ArchiveService`] — the router plus the "Lambda" handlers:
//!   `/query`, `/latest`, `/at`, `/window`, `/correlate` (Section 5.3 as a
//!   service feature), `/stats`, `/tables`, `/health`, and the
//!   static front-end page.
//! * [`Gateway`] — the same router, plus observability: per-endpoint
//!   request metrics, a merged Prometheus `/metrics` document, a `/health`
//!   that reflects real readiness (store state plus whatever the operator
//!   lends through an [`OpsContext`]), and a `/stats` extended with
//!   collection totals.
//! * [`json`] — a small JSON encoder (the workspace deliberately avoids a
//!   JSON dependency), and CSV export for bulk downloads.
//! * [`server`] — the real thing: a dependency-light multithreaded TCP
//!   listener with admission control, deadlines, panic isolation, and
//!   graceful shutdown, plus the seeded load/chaos generator that writes
//!   `BENCH_serving.json`.
//!
//! Users "can query specifying the timestamp, regions, availability zones,
//! and instance types" — those are exactly the supported query parameters.
//!
//! # Example
//!
//! ```
//! use spotlake_serving::{ArchiveService, HttpRequest};
//! use spotlake_timestream::{Database, Record, TableOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut db = Database::new();
//! db.create_table("sps", TableOptions::default())?;
//! db.write("sps", &[Record::new(600, "sps", 3.0)
//!     .dimension("instance_type", "m5.large")
//!     .dimension("region", "us-east-1")])?;
//!
//! let request = HttpRequest::get("/query?table=sps&instance_type=m5.large")?;
//! let response = ArchiveService::handle(&db, &request);
//! assert_eq!(response.status, 200);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Request handlers fail closed, never fail loud: the native lint carries
// part of what `spotlake-lint`'s fail-closed rule enforces. Test modules
// are exempt — an assertion that unwraps is the point of a test.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod csv;
mod gateway;
mod http;
mod insights;
pub mod json;
mod ops;
pub mod server;

pub use csv::rows_to_csv;
pub use gateway::{ArchiveService, Gateway};
pub use http::{HttpRequest, HttpResponse, ServeError};
pub use ops::OpsContext;
pub use server::{Server, ServerConfig, ServerHandle, SharedArchive};
