//! The serving engine: listener, bounded worker pool, and the overload
//! envelope.
//!
//! The design goal is that *no client behaviour can take the server
//! down*, and overload degrades service predictably instead of
//! collapsing it:
//!
//! * **Admission control** — accepted connections enter a bounded queue
//!   (`queue_depth`); when it is full the listener answers `503` with a
//!   `Retry-After` header and closes, shedding load at the cheapest
//!   possible point instead of queueing unboundedly.
//! * **Concurrency cap** — `workers` threads bound in-flight handling,
//!   so at most `workers + queue_depth + 1` connections are ever open.
//! * **Deadlines** — each request gets `deadline` of wall time; requests
//!   that blow it are answered `504` rather than holding a worker
//!   indefinitely from the client's point of view.
//! * **Slowloris protection** — socket read/write timeouts bound how
//!   long a slow client can pin a worker; a head that does not arrive in
//!   time is answered `408` and the connection closed.
//! * **Panic isolation** — handler panics are caught per request,
//!   answered `500`, counted, and the worker keeps serving.
//! * **Graceful shutdown** — [`ServerHandle::shutdown`] stops accepting,
//!   drains queued and in-flight requests, joins every thread, and
//!   returns a [`ServerReport`] with flushed metrics.

use super::metrics::{ServerMetrics, ServerTotals};
use super::shared::SharedArchive;
use super::wire::{self, WireLimits};
use crate::gateway::Gateway;
use crate::http::HttpResponse;
use crate::ops::OpsContext;
use spotlake_obs::Registry;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks `m`, recovering the guard from a poisoned lock (workers share
/// the receiver; a panicking worker must not wedge the pool).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded admission-queue depth; beyond it connections are shed.
    pub queue_depth: usize,
    /// Per-request wall-time budget before a `504`.
    pub deadline: Duration,
    /// Socket read timeout (slow-client bound for the request head).
    pub read_timeout: Duration,
    /// Socket write timeout (slow-client bound for the response).
    pub write_timeout: Duration,
    /// Seconds advertised in the `Retry-After` header of shed responses.
    pub retry_after_secs: u32,
    /// Wire-parser byte/count limits.
    pub limits: WireLimits,
    /// Simulation tick stamped into query traces (0 when unclocked).
    pub tick: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(2),
            read_timeout: Duration::from_secs(1),
            write_timeout: Duration::from_secs(1),
            retry_after_secs: 1,
            limits: WireLimits::default(),
            tick: 0,
        }
    }
}

/// What the server did over its lifetime, returned by
/// [`ServerHandle::shutdown`].
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Monotonic totals from the serving path.
    pub totals: ServerTotals,
    /// The final merged Prometheus exposition (server + gateway +
    /// archive-snapshot families), flushed at shutdown.
    pub metrics_text: String,
}

/// The serving engine. Construct with [`Server::start`].
#[derive(Debug)]
pub struct Server;

/// Shared state every listener/worker thread holds an `Arc` to.
#[derive(Debug)]
struct ServerState {
    archive: SharedArchive,
    gateway: Gateway,
    metrics: ServerMetrics,
    deadline: Duration,
    read_timeout: Duration,
    write_timeout: Duration,
    limits: WireLimits,
    tick: u64,
}

impl Server {
    /// Binds `config.addr`, spawns the listener and worker pool, and
    /// returns a handle to the running server.
    pub fn start(archive: SharedArchive, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            archive,
            gateway: Gateway::new(),
            metrics: ServerMetrics::new(),
            deadline: config.deadline,
            read_timeout: config.read_timeout.max(Duration::from_millis(1)),
            write_timeout: config.write_timeout.max(Duration::from_millis(1)),
            limits: config.limits,
            tick: config.tick,
        });
        let stop = Arc::new(AtomicBool::new(false));

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let state = Arc::clone(&state);
            let rx = Arc::clone(&rx);
            let handle = std::thread::Builder::new()
                .name(format!("spotlake-worker-{i}"))
                .spawn(move || worker_loop(&state, &rx))?;
            workers.push(handle);
        }

        let accept_state = Arc::clone(&state);
        let accept_stop = Arc::clone(&stop);
        let retry_after = config.retry_after_secs;
        let acceptor = std::thread::Builder::new()
            .name("spotlake-listener".to_owned())
            .spawn(move || accept_loop(&listener, &accept_state, &accept_stop, tx, retry_after))?;

        Ok(ServerHandle {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
            state,
        })
    }
}

/// A running server. Dropping the handle shuts the server down
/// (discarding the report); call [`ServerHandle::shutdown`] to get one.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway serving this listener (for trace/flight inspection).
    pub fn gateway(&self) -> &Gateway {
        &self.state.gateway
    }

    /// The shared archive this server queries.
    pub fn archive(&self) -> &SharedArchive {
        &self.state.archive
    }

    /// Point-in-time serving totals.
    pub fn totals(&self) -> ServerTotals {
        self.state.metrics.totals()
    }

    /// Stops accepting, drains queued and in-flight requests, joins all
    /// threads, and returns the final report with flushed metrics.
    pub fn shutdown(mut self) -> ServerReport {
        self.stop_and_join();
        let snapshot = self.state.archive.snapshot();
        let registries: [&Registry; 3] = [
            self.state.metrics.registry(),
            self.state.gateway.http_metrics(),
            snapshot.metrics(),
        ];
        ServerReport {
            totals: self.state.metrics.totals(),
            metrics_text: Registry::render_merged(registries),
        }
    }

    /// Idempotent: signals stop, wakes the blocked `accept`, and joins
    /// the listener (which closes the admission queue) then the workers
    /// (which drain it).
    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            // accept() has no native timeout; nudge it with a throwaway
            // connection so it observes the stop flag.
            for _ in 0..4 {
                if acceptor.is_finished() {
                    break;
                }
                let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
                std::thread::sleep(Duration::from_millis(5));
            }
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &ServerState,
    stop: &AtomicBool,
    tx: SyncSender<TcpStream>,
    retry_after_secs: u32,
) {
    loop {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if stop.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client): refuse by close.
            drop(conn);
            break;
        }
        state.metrics.connection_accepted();
        // Count the admission before the send: the receiving worker's
        // matching `dequeued` is ordered after it by the channel.
        state.metrics.enqueued();
        match tx.try_send(conn) {
            Ok(()) => {}
            Err(TrySendError::Full(mut conn)) => {
                state.metrics.dequeued();
                state.metrics.shed();
                let _ = conn.set_write_timeout(Some(state.write_timeout));
                let response = HttpResponse::error(503, "admission queue full; retry shortly");
                let _ = wire::write_response(
                    &mut conn,
                    &response,
                    &[("retry-after", retry_after_secs.to_string())],
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` closes the queue: workers drain what is left, then
    // their `recv` errors out and they exit.
}

fn worker_loop(state: &ServerState, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the receiver lock only for the dequeue, not the handling,
        // so the pool keeps pulling work while this thread serves.
        let conn = match lock(rx).recv() {
            Ok(conn) => conn,
            Err(_) => break,
        };
        state.metrics.dequeued();
        let mut conn = conn;
        serve_connection(state, &mut conn);
    }
}

/// Handles one connection end to end. Never panics outward: the handler
/// is wrapped in `catch_unwind`, and every wire error maps to a status
/// or a silent close.
fn serve_connection(state: &ServerState, conn: &mut TcpStream) {
    let start = Instant::now();
    state.metrics.request_started();
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(state.read_timeout));
    let _ = conn.set_write_timeout(Some(state.write_timeout));

    let parsed = wire::read_head(conn, &state.limits)
        .and_then(|head| wire::parse_head(&head, &state.limits));
    // An oversized head leaves unread bytes in the socket buffer; closing
    // over them would RST the 431 out of the client's hands, so that path
    // drains (bounded) before the connection drops.
    let drain_excess = matches!(parsed, Err(wire::WireError::TooLarge));

    let (response, status_label): (Option<HttpResponse>, String) = match parsed {
        Err(err) => match err.status() {
            Some(408) => {
                state.metrics.slow_client_closed();
                (Some(HttpResponse::error(408, &err.reason())), "408".into())
            }
            Some(status) => {
                state.metrics.bad_request(status);
                (
                    Some(HttpResponse::error(status, &err.reason())),
                    status.to_string(),
                )
            }
            None => (None, "aborted".into()),
        },
        Ok(request) => {
            if start.elapsed() >= state.deadline {
                state.metrics.deadline_exceeded();
                (
                    Some(HttpResponse::error(
                        504,
                        "deadline exceeded before handling",
                    )),
                    "504".into(),
                )
            } else {
                let snapshot = state.archive.snapshot();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let registries: [&Registry; 1] = [state.metrics.registry()];
                    let ops = OpsContext {
                        registries: &registries,
                        tick: state.tick,
                        ..OpsContext::default()
                    };
                    state.gateway.handle(&snapshot, &request, &ops)
                }));
                match outcome {
                    Ok(_) if start.elapsed() > state.deadline => {
                        // Computed too late to be useful: the client-visible
                        // contract is the deadline, so answer 504.
                        state.metrics.deadline_exceeded();
                        (
                            Some(HttpResponse::error(504, "deadline exceeded")),
                            "504".into(),
                        )
                    }
                    Ok(resp) => {
                        let label = resp.status.to_string();
                        (Some(resp), label)
                    }
                    Err(_) => {
                        state.metrics.worker_panic();
                        (
                            Some(HttpResponse::error(500, "internal error")),
                            "500".into(),
                        )
                    }
                }
            }
        }
    };

    if let Some(response) = &response {
        if let Err(e) = wire::write_response(conn, response, &[]) {
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
                state.metrics.slow_client_closed();
            }
        }
    }
    if drain_excess {
        let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
        let mut scratch = [0u8; 4096];
        for _ in 0..32 {
            match io::Read::read(conn, &mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
    let micros = start.elapsed().as_secs_f64() * 1_000_000.0;
    state.metrics.request_finished(&status_label, micros);
}
