//! The serving engine: listener, bounded worker pool, and the overload
//! envelope.
//!
//! The design goal is that *no client behaviour can take the server
//! down*, and overload degrades service predictably instead of
//! collapsing it:
//!
//! * **Admission control** — accepted connections enter a bounded queue
//!   (`queue_depth`); when it is full the listener answers `503` with a
//!   `Retry-After` header and closes, shedding load at the cheapest
//!   possible point instead of queueing unboundedly.
//! * **Concurrency cap** — `workers` threads bound in-flight handling,
//!   so at most `workers + queue_depth + 1` connections are ever open.
//! * **Deadlines** — each request gets `deadline` of wall time; requests
//!   that blow it are answered `504` rather than holding a worker
//!   indefinitely from the client's point of view.
//! * **Slowloris protection** — socket read/write timeouts bound how
//!   long a slow client can pin a worker; a head that does not arrive in
//!   time is answered `408` and the connection closed.
//! * **Panic isolation** — handler panics are caught per request,
//!   answered `500`, counted, and the worker keeps serving.
//! * **Graceful shutdown** — [`ServerHandle::shutdown`] stops accepting,
//!   drains queued and in-flight requests, joins every thread, and
//!   returns a [`ServerReport`] with flushed metrics.
//!
//! The engine is also where the request lifecycle is observed: every
//! connection gets a request id at accept (echoed back in the
//! `x-spotlake-request-id` header on every response, including shed
//! 503s) and a phase timeline — queue wait, parse, handle, write —
//! recorded into the `spotlake_server_phase_micros` histogram and the
//! slow-request recorder behind `/debug/requests`. When telemetry is
//! enabled, a dedicated sampler thread snapshots every registry into a
//! ring buffer served at `/debug/telemetry` as JSONL.

use super::metrics::{PhaseStats, ServerMetrics, ServerTotals};
use super::shared::SharedArchive;
use super::wire::{self, WireLimits};
use crate::gateway::Gateway;
use crate::http::HttpResponse;
use crate::json::Json;
use crate::ops::OpsContext;
use spotlake_obs::{
    AlertState, HealthReport, PhaseSpan, Readiness, Registry, RequestRecord, RequestRecorder,
    SloReport, SloSet, SloTracker, TelemetryRecorder,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks `m`, recovering the guard from a poisoned lock (workers share
/// the receiver; a panicking worker must not wedge the pool).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded admission-queue depth; beyond it connections are shed.
    pub queue_depth: usize,
    /// Per-request wall-time budget before a `504`.
    pub deadline: Duration,
    /// Socket read timeout (slow-client bound for the request head).
    pub read_timeout: Duration,
    /// Socket write timeout (slow-client bound for the response).
    pub write_timeout: Duration,
    /// Seconds advertised in the `Retry-After` header of shed responses.
    pub retry_after_secs: u32,
    /// Wire-parser byte/count limits.
    pub limits: WireLimits,
    /// Simulation tick stamped into query traces (0 when unclocked).
    pub tick: u64,
    /// When set, a dedicated sampler thread snapshots every registry at
    /// this interval into the telemetry ring buffer (`/debug/telemetry`).
    pub telemetry_interval: Option<Duration>,
    /// Telemetry ring-buffer capacity in samples (oldest evicted beyond it).
    pub telemetry_capacity: usize,
    /// How many of the slowest requests `/debug/requests` retains.
    pub request_log: usize,
    /// Fault-injection hook: a request for exactly this path panics
    /// inside the worker's `catch_unwind` boundary, exercising the same
    /// poison-recovery path a real handler bug would. `None` (the
    /// default) disables the hook; tests and drills set it.
    pub panic_route: Option<String>,
    /// The SLO objectives evaluated over the telemetry stream. Active
    /// only when `telemetry_interval` is set (the engine has no sample
    /// stream to judge otherwise); served at `/debug/slo`, folded into
    /// `/health`, and reported at shutdown.
    pub slo: SloSet,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(2),
            read_timeout: Duration::from_secs(1),
            write_timeout: Duration::from_secs(1),
            retry_after_secs: 1,
            limits: WireLimits::default(),
            tick: 0,
            telemetry_interval: None,
            telemetry_capacity: 1024,
            request_log: 64,
            panic_route: None,
            slo: SloSet::serving_defaults(),
        }
    }
}

/// What the server did over its lifetime, returned by
/// [`ServerHandle::shutdown`].
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Monotonic totals from the serving path.
    pub totals: ServerTotals,
    /// The final merged Prometheus exposition (server + gateway +
    /// archive-snapshot families), flushed at shutdown.
    pub metrics_text: String,
    /// Per-phase latency summaries (`queue_wait`/`parse`/`handle`/`write`)
    /// over every request the server finished.
    pub phases: Vec<PhaseStats>,
    /// The telemetry ring buffer rendered as JSONL, when telemetry was
    /// enabled (one final sample is taken at shutdown).
    pub telemetry_jsonl: Option<String>,
    /// The final SLO verdicts (covering the shutdown flush sample), with
    /// exemplar request ids attached — present iff telemetry was enabled.
    pub slo: Option<SloReport>,
}

/// The serving engine. Construct with [`Server::start`].
#[derive(Debug)]
pub struct Server;

/// Shared state every listener/worker thread holds an `Arc` to.
#[derive(Debug)]
struct ServerState {
    archive: SharedArchive,
    gateway: Gateway,
    metrics: ServerMetrics,
    deadline: Duration,
    read_timeout: Duration,
    write_timeout: Duration,
    limits: WireLimits,
    tick: u64,
    /// Slowest-request timeline recorder behind `/debug/requests`.
    requests: RequestRecorder,
    /// Telemetry ring buffer behind `/debug/telemetry` (None = disabled).
    telemetry: Option<TelemetryRecorder>,
    /// SLO tracker fed one sample at a time by [`take_sample`] (None
    /// when telemetry is disabled — no stream, no verdicts).
    slo: Option<Mutex<SloTracker>>,
    /// Fault-injection path that panics inside the worker (see
    /// [`ServerConfig::panic_route`]).
    panic_route: Option<String>,
    /// Wire-level request ids, assigned at accept starting from 1.
    next_request_id: AtomicU64,
    /// Epoch for telemetry sample timestamps (micros since start).
    started: Instant,
}

/// One admitted connection in flight from the listener to a worker.
#[derive(Debug)]
struct Admitted {
    conn: TcpStream,
    /// Request id assigned at accept, echoed as `x-spotlake-request-id`.
    request_id: u64,
    /// When the listener accepted the connection — the epoch every phase
    /// timestamp of this request is an offset from.
    accepted: Instant,
}

impl Server {
    /// Binds `config.addr`, spawns the listener and worker pool, and
    /// returns a handle to the running server.
    pub fn start(archive: SharedArchive, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            archive,
            gateway: Gateway::new(),
            metrics: ServerMetrics::new(),
            deadline: config.deadline,
            read_timeout: config.read_timeout.max(Duration::from_millis(1)),
            write_timeout: config.write_timeout.max(Duration::from_millis(1)),
            limits: config.limits,
            tick: config.tick,
            requests: RequestRecorder::new(config.request_log),
            telemetry: config
                .telemetry_interval
                .map(|_| TelemetryRecorder::new(config.telemetry_capacity)),
            slo: config
                .telemetry_interval
                .map(|_| Mutex::new(SloTracker::new(config.slo.clone()))),
            panic_route: config.panic_route.clone(),
            next_request_id: AtomicU64::new(1),
            started: Instant::now(),
        });
        let stop = Arc::new(AtomicBool::new(false));

        let (tx, rx) = std::sync::mpsc::sync_channel::<Admitted>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let state = Arc::clone(&state);
            let rx = Arc::clone(&rx);
            let handle = std::thread::Builder::new()
                .name(format!("spotlake-worker-{i}"))
                .spawn(move || worker_loop(&state, &rx))?;
            workers.push(handle);
        }

        let accept_state = Arc::clone(&state);
        let accept_stop = Arc::clone(&stop);
        let retry_after = config.retry_after_secs;
        let acceptor = std::thread::Builder::new()
            .name("spotlake-listener".to_owned())
            .spawn(move || accept_loop(&listener, &accept_state, &accept_stop, tx, retry_after))?;

        let sampler = match config.telemetry_interval {
            Some(interval) => {
                let sampler_state = Arc::clone(&state);
                let sampler_stop = Arc::clone(&stop);
                Some(
                    std::thread::Builder::new()
                        .name("spotlake-telemetry".to_owned())
                        .spawn(move || sampler_loop(&sampler_state, &sampler_stop, interval))?,
                )
            }
            None => None,
        };

        Ok(ServerHandle {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
            sampler,
            state,
        })
    }
}

/// A running server. Dropping the handle shuts the server down
/// (discarding the report); call [`ServerHandle::shutdown`] to get one.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway serving this listener (for trace/flight inspection).
    pub fn gateway(&self) -> &Gateway {
        &self.state.gateway
    }

    /// The shared archive this server queries.
    pub fn archive(&self) -> &SharedArchive {
        &self.state.archive
    }

    /// Point-in-time serving totals.
    pub fn totals(&self) -> ServerTotals {
        self.state.metrics.totals()
    }

    /// The slowest-request timeline recorder (`/debug/requests`).
    pub fn requests(&self) -> &RequestRecorder {
        &self.state.requests
    }

    /// The telemetry ring buffer, when telemetry is enabled.
    pub fn telemetry(&self) -> Option<&TelemetryRecorder> {
        self.state.telemetry.as_ref()
    }

    /// Stops accepting, drains queued and in-flight requests, joins all
    /// threads, and returns the final report with flushed metrics.
    pub fn shutdown(mut self) -> ServerReport {
        self.stop_and_join();
        // One last sample so the archived time series covers the full run
        // even when the interval is longer than the server's lifetime.
        if let Some(telemetry) = &self.state.telemetry {
            take_sample(&self.state, telemetry);
        }
        let snapshot = self.state.archive.snapshot();
        let registries: [&Registry; 3] = [
            self.state.metrics.registry(),
            self.state.gateway.http_metrics(),
            snapshot.metrics(),
        ];
        ServerReport {
            totals: self.state.metrics.totals(),
            metrics_text: Registry::render_merged(registries),
            phases: self.state.metrics.phase_stats(),
            telemetry_jsonl: self.state.telemetry.as_ref().map(|t| t.render_jsonl()),
            slo: self.state.slo.as_ref().map(|slo| {
                let mut report = lock(slo).report();
                report.attach_exemplars(&self.state.requests.snapshot());
                report
            }),
        }
    }

    /// Idempotent: signals stop, wakes the blocked `accept`, and joins
    /// the listener (which closes the admission queue) then the workers
    /// (which drain it).
    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            // accept() has no native timeout; nudge it with a throwaway
            // connection so it observes the stop flag.
            for _ in 0..4 {
                if acceptor.is_finished() {
                    break;
                }
                let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
                std::thread::sleep(Duration::from_millis(5));
            }
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &ServerState,
    stop: &AtomicBool,
    tx: SyncSender<Admitted>,
    retry_after_secs: u32,
) {
    loop {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if stop.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client): refuse by close.
            drop(conn);
            break;
        }
        let request_id = state.next_request_id.fetch_add(1, Ordering::Relaxed);
        state.metrics.connection_accepted();
        // Count the admission before the send: the receiving worker's
        // matching `dequeued` is ordered after it by the channel.
        state.metrics.enqueued();
        let admitted = Admitted {
            conn,
            request_id,
            accepted: Instant::now(),
        };
        match tx.try_send(admitted) {
            Ok(()) => {}
            Err(TrySendError::Full(admitted)) => {
                state.metrics.dequeued();
                state.metrics.shed();
                let mut conn = admitted.conn;
                let _ = conn.set_write_timeout(Some(state.write_timeout));
                let response = HttpResponse::error(503, "admission queue full; retry shortly");
                let _ = wire::write_response(
                    &mut conn,
                    &response,
                    &[
                        ("retry-after", retry_after_secs.to_string()),
                        ("x-spotlake-request-id", admitted.request_id.to_string()),
                    ],
                );
                // The client's request head may still be in flight; close
                // half-open and drain briefly so it does not RST the 503
                // out of the client's receive buffer.
                let _ = conn.shutdown(std::net::Shutdown::Write);
                let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
                let mut scratch = [0u8; 4096];
                for _ in 0..8 {
                    match io::Read::read(&mut conn, &mut scratch) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` closes the queue: workers drain what is left, then
    // their `recv` errors out and they exit.
}

fn worker_loop(state: &ServerState, rx: &Mutex<Receiver<Admitted>>) {
    loop {
        // Hold the receiver lock only for the dequeue, not the handling,
        // so the pool keeps pulling work while this thread serves.
        let admitted = match lock(rx).recv() {
            Ok(admitted) => admitted,
            Err(_) => break,
        };
        state.metrics.dequeued();
        let mut admitted = admitted;
        let dequeued_micros = elapsed_micros(admitted.accepted);
        serve_connection(
            state,
            &mut admitted.conn,
            admitted.request_id,
            admitted.accepted,
            dequeued_micros,
        );
    }
}

/// Microseconds elapsed since `epoch`, saturating into `u64`.
fn elapsed_micros(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Handles one connection end to end. Never panics outward: the handler
/// is wrapped in `catch_unwind`, and every wire error maps to a status
/// or a silent close.
///
/// Every phase timestamp is an offset in microseconds from `accepted`,
/// sampled through a single forward-moving cursor so the recorded spans
/// are contiguous and can never overlap or run backwards:
/// `queue_wait` ends where `parse` starts, `parse` where `handle`
/// starts, `handle` where `write` starts.
fn serve_connection(
    state: &ServerState,
    conn: &mut TcpStream,
    request_id: u64,
    accepted: Instant,
    dequeued_micros: u64,
) {
    let start = Instant::now();
    state.metrics.request_started();
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(state.read_timeout));
    let _ = conn.set_write_timeout(Some(state.write_timeout));

    let parsed = wire::read_head(conn, &state.limits)
        .and_then(|head| wire::parse_head(&head, &state.limits));
    let parse_end = elapsed_micros(accepted).max(dequeued_micros);
    let target = match &parsed {
        Ok(request) => request.path_and_query(),
        Err(_) => "-".to_owned(),
    };
    // An oversized head leaves unread bytes in the socket buffer; closing
    // over them would RST the 431 out of the client's hands, so that path
    // drains (bounded) before the connection drops.
    let drain_excess = matches!(parsed, Err(wire::WireError::TooLarge));

    let (response, status_label): (Option<HttpResponse>, String) = match parsed {
        Err(err) => match err.status() {
            Some(408) => {
                state.metrics.slow_client_closed();
                (Some(HttpResponse::error(408, &err.reason())), "408".into())
            }
            Some(status) => {
                state.metrics.bad_request(status);
                (
                    Some(HttpResponse::error(status, &err.reason())),
                    status.to_string(),
                )
            }
            None => (None, "aborted".into()),
        },
        Ok(request) => {
            // The debug surfaces are exempt from the request deadline:
            // an operator diagnosing an overloaded server needs them
            // most exactly when the data plane is timing out.
            if request.path() == "/debug/requests" {
                let resp = debug_requests_json(state);
                let label = resp.status.to_string();
                (Some(resp), label)
            } else if request.path() == "/debug/telemetry" {
                let resp = debug_telemetry(state);
                let label = resp.status.to_string();
                (Some(resp), label)
            } else if request.path() == "/debug/slo" {
                let resp = debug_slo(state);
                let label = resp.status.to_string();
                (Some(resp), label)
            } else if start.elapsed() >= state.deadline {
                state.metrics.deadline_exceeded();
                (
                    Some(HttpResponse::error(
                        504,
                        "deadline exceeded before handling",
                    )),
                    "504".into(),
                )
            } else {
                let snapshot = state.archive.snapshot();
                let slo_health = slo_health_report(state);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    // Deliberate fault hook: the injected panic crosses
                    // the same unwind boundary a real handler bug would,
                    // so the poison-recovery drill below tests the
                    // genuine article.
                    assert!(
                        state.panic_route.as_deref() != Some(request.path()),
                        "injected worker panic (panic_route)"
                    );
                    let registries: [&Registry; 1] = [state.metrics.registry()];
                    let ops = OpsContext {
                        registries: &registries,
                        health: slo_health.as_ref(),
                        tick: state.tick,
                        request_id,
                        ..OpsContext::default()
                    };
                    state.gateway.handle(&snapshot, &request, &ops)
                }));
                match outcome {
                    Ok(_) if start.elapsed() > state.deadline => {
                        // Computed too late to be useful: the client-visible
                        // contract is the deadline, so answer 504.
                        state.metrics.deadline_exceeded();
                        (
                            Some(HttpResponse::error(504, "deadline exceeded")),
                            "504".into(),
                        )
                    }
                    Ok(resp) => {
                        let label = resp.status.to_string();
                        (Some(resp), label)
                    }
                    Err(_) => {
                        state.metrics.worker_panic();
                        (
                            Some(HttpResponse::error(500, "internal error")),
                            "500".into(),
                        )
                    }
                }
            }
        }
    };
    let handle_end = elapsed_micros(accepted).max(parse_end);

    if let Some(response) = &response {
        let extras = [("x-spotlake-request-id", request_id.to_string())];
        if let Err(e) = wire::write_response(conn, response, &extras) {
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
                state.metrics.slow_client_closed();
            }
        }
    }
    let write_end = elapsed_micros(accepted).max(handle_end);
    if drain_excess {
        let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
        let mut scratch = [0u8; 4096];
        for _ in 0..32 {
            match io::Read::read(conn, &mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
    let micros = start.elapsed().as_secs_f64() * 1_000_000.0;
    state.metrics.request_finished(&status_label, micros);

    let phases = vec![
        span("queue_wait", 0, dequeued_micros),
        span("parse", dequeued_micros, parse_end),
        span("handle", parse_end, handle_end),
        span("write", handle_end, write_end),
    ];
    for phase in &phases {
        state
            .metrics
            .phase(phase.phase, phase.duration_micros() as f64);
    }
    state.requests.record(RequestRecord {
        request_id,
        target,
        status: status_label,
        total_micros: elapsed_micros(accepted),
        phases,
    });
}

/// Builds one phase span from cursor offsets.
fn span(phase: &'static str, start_micros: u64, end_micros: u64) -> PhaseSpan {
    PhaseSpan {
        phase,
        start_micros,
        end_micros,
    }
}

/// `/debug/requests`: the slowest request timelines as JSON.
fn debug_requests_json(state: &ServerState) -> HttpResponse {
    let entries: Vec<Json> = state
        .requests
        .snapshot()
        .iter()
        .map(|r| {
            let phases: Vec<Json> = r
                .phases
                .iter()
                .map(|p| {
                    Json::object([
                        ("phase", Json::from(p.phase)),
                        ("start_micros", Json::from(p.start_micros)),
                        ("end_micros", Json::from(p.end_micros)),
                        ("duration_micros", Json::from(p.duration_micros())),
                    ])
                })
                .collect();
            Json::object([
                ("request_id", Json::from(r.request_id)),
                ("target", Json::from(r.target.as_str())),
                ("status", Json::from(r.status.as_str())),
                ("total_micros", Json::from(r.total_micros)),
                ("phases", Json::Array(phases)),
            ])
        })
        .collect();
    HttpResponse::json(
        Json::object([
            ("capacity", Json::from(state.requests.capacity() as u64)),
            ("observed", Json::from(state.requests.observed())),
            ("requests", Json::Array(entries)),
        ])
        .render(),
    )
}

/// `/debug/telemetry`: the telemetry ring buffer as JSONL (404 when the
/// server runs without a sampler).
fn debug_telemetry(state: &ServerState) -> HttpResponse {
    match &state.telemetry {
        Some(telemetry) => HttpResponse::plain(telemetry.render_jsonl()),
        None => HttpResponse::error(404, "telemetry disabled; start with a telemetry interval"),
    }
}

/// `/debug/slo`: the current SLO report as deterministic JSON, with
/// exemplar request ids (joinable at `/debug/requests`) attached to
/// alerting objectives. 404 when telemetry — and with it the SLO
/// engine — is disabled.
fn debug_slo(state: &ServerState) -> HttpResponse {
    match &state.slo {
        Some(slo) => {
            let mut report = lock(slo).report();
            report.attach_exemplars(&state.requests.snapshot());
            HttpResponse::json(report.render_json())
        }
        None => HttpResponse::error(404, "slo engine disabled; start with a telemetry interval"),
    }
}

/// The SLO engine's contribution to `/health`: worst alert state mapped
/// onto readiness — a page-level burn makes the server report unhealthy
/// (503) so orchestrators stop routing to it before users feel it.
fn slo_health_report(state: &ServerState) -> Option<HealthReport> {
    let slo = state.slo.as_ref()?;
    let (alert, detail) = lock(slo).health_component();
    let readiness = match alert {
        AlertState::Ok => Readiness::Ready,
        AlertState::Warning => Readiness::Degraded,
        AlertState::Page => Readiness::Unhealthy,
    };
    let mut report = HealthReport::new();
    report.push("slo", readiness, detail);
    Some(report)
}

/// One telemetry sample: progress counters first so the sample sees its
/// own sequence number, then a snapshot of every registry the server
/// owns (server, gateway HTTP, archive store).
fn take_sample(state: &ServerState, telemetry: &TelemetryRecorder) {
    state
        .metrics
        .telemetry_progress(telemetry.samples_taken() + 1, telemetry.evicted());
    let snapshot = state.archive.snapshot();
    let at_micros = elapsed_micros(state.started);
    telemetry.sample(
        at_micros,
        [
            state.metrics.registry(),
            state.gateway.http_metrics(),
            snapshot.metrics(),
        ],
    );
    // Feed the sample just taken to the SLO tracker. The verdict gauges
    // written back here land in the *next* sample, so the evaluated
    // stream itself stays a pure function of the serving signals.
    if let Some(slo) = &state.slo {
        let Some(sample) = telemetry.latest() else {
            return;
        };
        // Narrow the tracker guard to the pure observe/report work:
        // recording the progress gauges takes the registry lock, and
        // nesting that under the SLO lock would order the two.
        let mut tracker = lock(slo);
        let transitions = tracker.observe(&sample);
        let report = tracker.report();
        drop(tracker);
        state.metrics.slo_progress(&report);
        for (objective, transition) in &transitions {
            state
                .metrics
                .slo_transition(objective, transition.to.as_str());
            state.gateway.record_event(
                state.tick,
                "slo_alert",
                &[
                    ("at_micros", transition.at_micros.to_string()),
                    ("fast_burn", format!("{:.4}", transition.fast_burn)),
                    ("from", transition.from.as_str().to_owned()),
                    ("objective", objective.clone()),
                    ("sample_seq", transition.seq.to_string()),
                    ("slow_burn", format!("{:.4}", transition.slow_burn)),
                    ("to", transition.to.as_str().to_owned()),
                ],
            );
        }
    }
}

/// The dedicated telemetry sampler thread: samples every `interval`,
/// sleeping in short slices so shutdown is honored promptly.
fn sampler_loop(state: &ServerState, stop: &AtomicBool, interval: Duration) {
    let interval = interval.max(Duration::from_millis(1));
    let Some(telemetry) = &state.telemetry else {
        return;
    };
    while !stop.load(Ordering::SeqCst) {
        take_sample(state, telemetry);
        let mut slept = Duration::ZERO;
        while slept < interval {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let slice = (interval - slept).min(Duration::from_millis(10));
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}
