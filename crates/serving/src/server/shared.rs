//! Snapshot-based shared-archive access.
//!
//! The server's worker threads must query the archive while a collector
//! keeps writing new rounds into it. Rather than hold a lock across a
//! query (which would let one slow query block collection, and vice
//! versa), the archive is published as an immutable snapshot behind an
//! `RwLock<Arc<Database>>`: readers take the read lock only long enough
//! to clone the `Arc`, then run the whole query lock-free against that
//! snapshot; the collector builds the next epoch off to the side and
//! swaps it in with one short write lock. Queries therefore never block
//! collection and never observe a half-written archive.

use spotlake_timestream::Database;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// A shared, swappable archive snapshot.
///
/// Cloning the handle is cheap and shares the same underlying slot, so
/// the listener, every worker, and the collector can all hold one.
#[derive(Debug, Clone)]
pub struct SharedArchive {
    slot: Arc<Slot>,
}

#[derive(Debug)]
struct Slot {
    current: RwLock<Arc<Database>>,
    epoch: AtomicU64,
}

impl SharedArchive {
    /// Publishes `db` as epoch 0.
    pub fn new(db: Database) -> Self {
        SharedArchive {
            slot: Arc::new(Slot {
                current: RwLock::new(Arc::new(db)),
                epoch: AtomicU64::new(0),
            }),
        }
    }

    /// The current snapshot. The read lock is held only for the `Arc`
    /// clone; the caller queries the returned snapshot lock-free.
    pub fn snapshot(&self) -> Arc<Database> {
        // A poisoned lock is recovered: `replace` swaps a fully built
        // Arc in one assignment, so the slot is never half-written.
        self.slot
            .current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Publishes a new snapshot, bumping the epoch. In-flight queries
    /// keep the snapshot they started with.
    pub fn replace(&self, db: Database) {
        let next = Arc::new(db);
        *self
            .slot
            .current
            .write()
            .unwrap_or_else(PoisonError::into_inner) = next;
        self.slot.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// How many times the snapshot has been replaced.
    pub fn epoch(&self) -> u64 {
        self.slot.epoch.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotlake_timestream::{Record, TableOptions};

    #[test]
    fn snapshots_are_stable_across_replace() {
        let archive = SharedArchive::new(Database::new());
        let before = archive.snapshot();
        assert_eq!(archive.epoch(), 0);

        let mut next = Database::new();
        next.create_table("sps", TableOptions::default()).unwrap();
        next.write("sps", &[Record::new(1, "sps", 3.0)]).unwrap();
        archive.replace(next);

        // The old snapshot is unchanged; the new one sees the table.
        assert!(before.table_names().is_empty());
        let after = archive.snapshot();
        assert_eq!(after.table_names(), vec!["sps"]);
        assert_eq!(archive.epoch(), 1);
    }

    #[test]
    fn clones_share_the_slot() {
        let a = SharedArchive::new(Database::new());
        let b = a.clone();
        let mut next = Database::new();
        next.create_table("price", TableOptions::default()).unwrap();
        a.replace(next);
        assert_eq!(b.epoch(), 1);
        let snap = b.snapshot();
        assert_eq!(snap.table_names(), vec!["price"]);
    }
}
