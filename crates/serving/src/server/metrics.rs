//! Server-side metrics: the `spotlake_server_*` families.
//!
//! Every family lives in one shared [`Registry`] (merged into `/metrics`
//! through the gateway's [`OpsContext`](crate::OpsContext)), and the
//! counters the shutdown report needs are mirrored in atomics so the
//! engine can read totals without parsing the exposition text.

use spotlake_obs::{Registry, SloReport, REQUEST_PHASES};
use std::sync::atomic::{AtomicU64, Ordering};

const CONNECTIONS_TOTAL: &str = "spotlake_server_connections_total";
const REQUESTS_TOTAL: &str = "spotlake_server_requests_total";
const SHED_TOTAL: &str = "spotlake_server_shed_total";
const DEADLINE_TOTAL: &str = "spotlake_server_deadline_exceeded_total";
const SLOW_CLIENTS_TOTAL: &str = "spotlake_server_slow_clients_closed_total";
const BAD_REQUESTS_TOTAL: &str = "spotlake_server_bad_requests_total";
const PANICS_TOTAL: &str = "spotlake_server_worker_panics_total";
const INFLIGHT: &str = "spotlake_server_inflight";
const QUEUE_DEPTH: &str = "spotlake_server_queue_depth";
const REQUEST_MICROS: &str = "spotlake_server_request_micros";
const PHASE_MICROS: &str = "spotlake_server_phase_micros";
const TELEMETRY_SAMPLES_TOTAL: &str = "spotlake_telemetry_samples_total";
const TELEMETRY_EVICTED_TOTAL: &str = "spotlake_telemetry_evicted_total";
const SLO_STATE: &str = "spotlake_slo_alert_state";
const SLO_TRANSITIONS_TOTAL: &str = "spotlake_slo_alert_transitions_total";
const SLO_BUDGET_REMAINING: &str = "spotlake_slo_budget_remaining_ratio";
const SLO_EVALUATIONS_TOTAL: &str = "spotlake_slo_evaluations_total";

/// Shared counters and gauges for the TCP serving path.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    registry: Registry,
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    slow_clients: AtomicU64,
    bad_requests: AtomicU64,
    panics: AtomicU64,
    inflight: AtomicU64,
    queued: AtomicU64,
}

impl ServerMetrics {
    /// Creates an empty metrics surface.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    /// The registry holding the `spotlake_server_*` families, for merging
    /// into `/metrics` and the shutdown report.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A connection was accepted by the listener.
    pub fn connection_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.registry
            .counter_add(CONNECTIONS_TOTAL, "TCP connections accepted", &[], 1);
    }

    /// A connection is entering the admission queue. Called *before* the
    /// channel send, so a fast worker's [`dequeued`](Self::dequeued)
    /// always observes the increment first.
    pub fn enqueued(&self) {
        let depth = self.queued.fetch_add(1, Ordering::SeqCst).saturating_add(1);
        self.registry.gauge_set(
            QUEUE_DEPTH,
            "Connections waiting in the admission queue",
            &[],
            depth as f64,
        );
    }

    /// A connection left the admission queue (a worker picked it up, or
    /// a full-queue send was rolled back). Saturating: a stray extra
    /// call must not wrap the gauge.
    pub fn dequeued(&self) {
        let depth = self
            .queued
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(1))
            })
            .map_or(0, |prev| prev.saturating_sub(1));
        self.registry.gauge_set(
            QUEUE_DEPTH,
            "Connections waiting in the admission queue",
            &[],
            depth as f64,
        );
    }

    /// A connection was answered 503 because the queue was full.
    pub fn shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.registry.counter_add(
            SHED_TOTAL,
            "Connections answered 503 because the admission queue was full",
            &[],
            1,
        );
    }

    /// A worker started handling a request.
    pub fn request_started(&self) {
        let inflight = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.registry.gauge_set(
            INFLIGHT,
            "Requests currently being handled",
            &[],
            inflight as f64,
        );
    }

    /// A worker finished a request: records the status-labelled counter
    /// and the wall-time histogram, and drops the in-flight gauge.
    pub fn request_finished(&self, status_label: &str, micros: f64) {
        self.served.fetch_add(1, Ordering::Relaxed);
        let inflight = self
            .inflight
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        self.registry.gauge_set(
            INFLIGHT,
            "Requests currently being handled",
            &[],
            inflight as f64,
        );
        self.registry.counter_add(
            REQUESTS_TOTAL,
            "Requests answered on the TCP path, by status",
            &[("status", status_label)],
            1,
        );
        self.registry.histogram_record(
            REQUEST_MICROS,
            "Server-side request wall time in microseconds",
            &[],
            micros,
        );
    }

    /// One lifecycle phase of a request completed, taking `micros`.
    /// `phase` must be one of [`REQUEST_PHASES`].
    pub fn phase(&self, phase: &'static str, micros: f64) {
        debug_assert!(REQUEST_PHASES.contains(&phase), "unknown phase {phase:?}");
        self.registry.histogram_record(
            PHASE_MICROS,
            "Per-request lifecycle phase durations in microseconds",
            &[("phase", phase)],
            micros,
        );
    }

    /// Mirrors the telemetry recorder's running totals into counters, so
    /// the sampling progress is visible in `/metrics` and inside the
    /// samples themselves. Called by the sampler thread before each
    /// sample with the totals *including* the sample being taken.
    pub fn telemetry_progress(&self, samples_taken: u64, evicted: u64) {
        self.registry.counter_set(
            TELEMETRY_SAMPLES_TOTAL,
            "Telemetry samples taken since server start",
            &[],
            samples_taken,
        );
        self.registry.counter_set(
            TELEMETRY_EVICTED_TOTAL,
            "Telemetry ring-buffer samples evicted to stay within capacity",
            &[],
            evicted,
        );
    }

    /// Mirrors the SLO tracker's latest verdicts into the registry after
    /// each evaluated sample: one evaluation counter plus per-objective
    /// alert-state and budget gauges, so `/metrics` (and the telemetry
    /// samples themselves) carry the scoreboard.
    pub fn slo_progress(&self, report: &SloReport) {
        self.registry.counter_set(
            SLO_EVALUATIONS_TOTAL,
            "Telemetry samples evaluated by the SLO tracker",
            &[],
            report.samples,
        );
        for objective in &report.objectives {
            self.registry.gauge_set(
                SLO_STATE,
                "Current alert state per objective (0 ok, 1 warning, 2 page)",
                &[("objective", objective.name.as_str())],
                objective.state.severity() as f64,
            );
            self.registry.gauge_set(
                SLO_BUDGET_REMAINING,
                "Unspent error budget per objective, 0 through 1",
                &[("objective", objective.name.as_str())],
                objective.budget_remaining,
            );
        }
    }

    /// An objective's alert state machine moved to `to`.
    pub fn slo_transition(&self, objective: &str, to: &str) {
        self.registry.counter_add(
            SLO_TRANSITIONS_TOTAL,
            "Alert state transitions, by objective and destination state",
            &[("objective", objective), ("to", to)],
            1,
        );
    }

    /// Per-phase quantile summaries of the phase histogram, one entry per
    /// [`REQUEST_PHASES`] name that has observations, in wire order.
    /// Quantiles are rounded to whole microseconds — these feed the
    /// integer-quantile BENCH_serving.json v2 schema.
    pub fn phase_stats(&self) -> Vec<PhaseStats> {
        let summaries = self.registry.histogram_summaries(PHASE_MICROS);
        REQUEST_PHASES
            .iter()
            .filter_map(|phase| {
                let summary = summaries
                    .iter()
                    .find(|s| s.labels.iter().any(|(k, v)| k == "phase" && v == *phase))?;
                Some(PhaseStats {
                    phase,
                    count: summary.count,
                    p50_micros: summary.p50.round() as u64,
                    p90_micros: summary.p90.round() as u64,
                    p99_micros: summary.p99.round() as u64,
                })
            })
            .collect()
    }

    /// A request was answered 504 after its deadline elapsed.
    pub fn deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        self.registry.counter_add(
            DEADLINE_TOTAL,
            "Requests answered 504 past their deadline",
            &[],
            1,
        );
    }

    /// A connection was closed for blowing a read/write timeout.
    pub fn slow_client_closed(&self) {
        self.slow_clients.fetch_add(1, Ordering::Relaxed);
        self.registry.counter_add(
            SLOW_CLIENTS_TOTAL,
            "Connections closed for exceeding read/write timeouts",
            &[],
            1,
        );
    }

    /// The wire parser rejected a request with `status`.
    pub fn bad_request(&self, status: u16) {
        self.bad_requests.fetch_add(1, Ordering::Relaxed);
        let status = status.to_string();
        self.registry.counter_add(
            BAD_REQUESTS_TOTAL,
            "Requests rejected by the fail-closed wire parser",
            &[("status", status.as_str())],
            1,
        );
    }

    /// A handler panic was caught and converted to a 500.
    pub fn worker_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        self.registry.counter_add(
            PANICS_TOTAL,
            "Handler panics caught by worker isolation",
            &[],
            1,
        );
    }

    /// Point-in-time totals for the shutdown report.
    pub fn totals(&self) -> ServerTotals {
        ServerTotals {
            accepted: self.accepted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            slow_clients_closed: self.slow_clients.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            worker_panics: self.panics.load(Ordering::Relaxed),
        }
    }
}

/// One lifecycle phase's latency summary, rounded to whole microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// Phase name (one of [`REQUEST_PHASES`]).
    pub phase: &'static str,
    /// Requests that recorded this phase.
    pub count: u64,
    /// Estimated median duration.
    pub p50_micros: u64,
    /// Estimated 90th percentile duration.
    pub p90_micros: u64,
    /// Estimated 99th percentile duration.
    pub p99_micros: u64,
}

/// Monotonic totals mirrored out of [`ServerMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerTotals {
    /// Connections accepted by the listener.
    pub accepted: u64,
    /// Requests a worker finished (any status).
    pub served: u64,
    /// Connections answered 503 at admission.
    pub shed: u64,
    /// Requests answered 504 past their deadline.
    pub deadline_exceeded: u64,
    /// Connections closed for blowing a timeout.
    pub slow_clients_closed: u64,
    /// Requests the wire parser rejected.
    pub bad_requests: u64,
    /// Handler panics caught by worker isolation.
    pub worker_panics: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_mirror_the_registry() {
        let m = ServerMetrics::new();
        m.connection_accepted();
        m.enqueued();
        m.dequeued();
        m.request_started();
        m.request_finished("200", 1500.0);
        m.shed();
        m.deadline_exceeded();
        m.slow_client_closed();
        m.bad_request(400);
        m.worker_panic();

        let totals = m.totals();
        assert_eq!(totals.accepted, 1);
        assert_eq!(totals.served, 1);
        assert_eq!(totals.shed, 1);
        assert_eq!(totals.deadline_exceeded, 1);
        assert_eq!(totals.slow_clients_closed, 1);
        assert_eq!(totals.bad_requests, 1);
        assert_eq!(totals.worker_panics, 1);

        let text = m.registry().render();
        assert!(text.contains("spotlake_server_connections_total 1"));
        assert!(text.contains("spotlake_server_requests_total{status=\"200\"} 1"));
        assert!(text.contains("spotlake_server_shed_total 1"));
        assert!(text.contains("spotlake_server_deadline_exceeded_total 1"));
        assert!(text.contains("spotlake_server_slow_clients_closed_total 1"));
        assert!(text.contains("spotlake_server_bad_requests_total{status=\"400\"} 1"));
        assert!(text.contains("spotlake_server_worker_panics_total 1"));
        assert!(text.contains("spotlake_server_inflight 0"));
        assert!(text.contains("spotlake_server_queue_depth 0"));
        assert!(text.contains("spotlake_server_request_micros_count 1"));
    }

    #[test]
    fn phase_histogram_and_stats_round_trip() {
        let m = ServerMetrics::new();
        for micros in [100.0, 200.0, 400.0] {
            m.phase("queue_wait", micros);
        }
        m.phase("handle", 5_000.0);
        let text = m.registry().render();
        assert!(text.contains("spotlake_server_phase_micros_count{phase=\"queue_wait\"} 3"));
        assert!(text.contains("spotlake_server_phase_micros_count{phase=\"handle\"} 1"));

        let stats = m.phase_stats();
        // Wire order, only observed phases present.
        let phases: Vec<&str> = stats.iter().map(|s| s.phase).collect();
        assert_eq!(phases, ["queue_wait", "handle"]);
        let qw = stats[0];
        assert_eq!(qw.count, 3);
        assert!(qw.p50_micros <= qw.p90_micros && qw.p90_micros <= qw.p99_micros);
        assert!(qw.p50_micros > 0);
    }

    #[test]
    fn slo_progress_mirrors_verdicts_into_the_registry() {
        use spotlake_obs::{SloSet, SloTracker};
        let m = ServerMetrics::new();
        let tracker = SloTracker::new(SloSet::serving_defaults());
        m.slo_progress(&tracker.report());
        m.slo_transition("availability", "page");
        let text = m.registry().render();
        assert!(text.contains("spotlake_slo_evaluations_total 0"), "{text}");
        assert!(
            text.contains("spotlake_slo_alert_state{objective=\"availability\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("spotlake_slo_budget_remaining_ratio{objective=\"handle_latency\"} 1"),
            "{text}"
        );
        assert!(
            text.contains(
                "spotlake_slo_alert_transitions_total{objective=\"availability\",to=\"page\"} 1"
            ),
            "{text}"
        );
    }

    #[test]
    fn telemetry_progress_mirrors_monotonic_counters() {
        let m = ServerMetrics::new();
        m.telemetry_progress(3, 0);
        m.telemetry_progress(5, 2);
        let text = m.registry().render();
        assert!(text.contains("spotlake_telemetry_samples_total 5"));
        assert!(text.contains("spotlake_telemetry_evicted_total 2"));
    }
}
